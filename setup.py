"""Shim so `python setup.py develop` works on environments without the
`wheel` package (PEP 517 editable installs need it; this path does not).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
