"""HAC — a Hierarchy-And-Content file system.

A from-scratch Python reproduction of *Integrating Content-Based Access
Mechanisms with Hierarchical File Systems* (Gopal & Manber, OSDI 1999):
a file system offering path-name access and content-based (query) access at
the same time, with user-editable query results kept scope-consistent.

Quick start::

    from repro import HacFileSystem

    hac = HacFileSystem()
    hac.makedirs("/notes")
    hac.write_file("/notes/a.txt", b"fingerprint matching ideas")
    hac.ssync("/")                       # index the name space
    hac.smkdir("/fp", "fingerprint")     # a semantic directory
    hac.listdir("/fp")                   # -> ["a.txt"] (a symbolic link)

Public surface:

* :class:`HacFileSystem` — the whole system (``repro.core``);
* :class:`HacShell` — cwd-relative command layer (``repro.shell``);
* :class:`FileSystem` — the POSIX-like substrate (``repro.vfs``);
* :class:`CBAEngine` and :func:`parse_query` — the Glimpse-style content
  engine and query language (``repro.cba``);
* :class:`SimulatedSearchService`, :class:`RemoteHacFileSystem`,
  :class:`SharedDirectoryRegistry` — mountable remote name spaces
  (``repro.remote``);
* baselines (Jade, Pseudo, SFS) under ``repro.baselines`` and workload
  generators under ``repro.workloads``.
"""

from repro.core.hacfs import HacFileSystem
from repro.cba.engine import CBAEngine
from repro.cba.queryparser import parse_query
from repro.remote.registry import SharedDirectoryRegistry
from repro.remote.remotefs import RemoteHacFileSystem
from repro.remote.searchsvc import SimulatedSearchService
from repro.shell.session import HacShell
from repro.vfs.filesystem import FileSystem

__version__ = "1.0.0"

__all__ = [
    "HacFileSystem",
    "CBAEngine",
    "parse_query",
    "SharedDirectoryRegistry",
    "RemoteHacFileSystem",
    "SimulatedSearchService",
    "HacShell",
    "FileSystem",
    "__version__",
]
