"""Exception hierarchy for the HAC reproduction.

Two families of errors exist:

* :class:`VfsError` and its subclasses mirror POSIX ``errno`` conditions
  raised by the hierarchical file-system substrate (:mod:`repro.vfs`).
* :class:`HacError` and its subclasses cover the semantic layer — query
  parsing, scope consistency, dependency cycles, mounts, and remote access.

Every error carries the offending path (or query) where that is meaningful,
so shell-level callers can render ``<path>: <message>`` diagnostics the way
UNIX tools do.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# VFS (POSIX-like) errors
# ---------------------------------------------------------------------------


class VfsError(ReproError):
    """Base class for file-system errors.

    :param path: the path involved, if any.
    :param message: optional human-readable detail.
    """

    #: short errno-style mnemonic, overridden by subclasses.
    code = "EVFS"

    def __init__(self, path: str = "", message: str = ""):
        self.path = path
        self.message = message
        detail = f"{self.code}: {path}" if path else self.code
        if message:
            detail = f"{detail} ({message})"
        super().__init__(detail)


class FileNotFound(VfsError):
    """A path component does not exist (ENOENT)."""

    code = "ENOENT"


class FileExists(VfsError):
    """Target already exists (EEXIST)."""

    code = "EEXIST"


class NotADirectory(VfsError):
    """A non-final path component is not a directory (ENOTDIR)."""

    code = "ENOTDIR"


class IsADirectory(VfsError):
    """File operation applied to a directory (EISDIR)."""

    code = "EISDIR"


class DirectoryNotEmpty(VfsError):
    """rmdir / rename over a non-empty directory (ENOTEMPTY)."""

    code = "ENOTEMPTY"


class SymlinkLoop(VfsError):
    """Too many levels of symbolic links (ELOOP)."""

    code = "ELOOP"


class InvalidArgument(VfsError):
    """Bad argument to a file-system call (EINVAL)."""

    code = "EINVAL"


class BadFileDescriptor(VfsError):
    """Operation on a closed or wrong-mode descriptor (EBADF)."""

    code = "EBADF"


class CrossDevice(VfsError):
    """Rename across mount points (EXDEV)."""

    code = "EXDEV"


class DeviceBusy(VfsError):
    """Unmounting a busy mount point (EBUSY)."""

    code = "EBUSY"


class PermissionError_(VfsError):
    """Operation not permitted (EPERM)."""

    code = "EPERM"


class NoSpace(VfsError):
    """Simulated block device is full (ENOSPC)."""

    code = "ENOSPC"


class DeviceCrashed(VfsError):
    """The simulated device lost power (fault injection).

    Once raised, every further write to the device fails the same way until
    :meth:`repro.vfs.blockdev.BlockDevice.clear_faults` simulates the reboot.
    """

    code = "EIO"


class CorruptRecord(VfsError):
    """A persisted record failed its checksum (torn or bit-rotted write).

    Carries the record key in :attr:`path`.  Raised instead of letting the
    deserializer crash (or worse, silently succeed on garbage) so callers can
    distinguish "record absent" from "record unreadable".
    """

    code = "EBADRECORD"


# ---------------------------------------------------------------------------
# HAC semantic-layer errors
# ---------------------------------------------------------------------------


class HacError(ReproError):
    """Base class for semantic-layer errors."""


class QuerySyntaxError(HacError):
    """The query text could not be parsed.

    :param query: the offending query string.
    :param position: character offset where parsing failed.
    :param message: what was expected.
    """

    def __init__(self, query: str, position: int, message: str):
        self.query = query
        self.position = position
        self.message = message
        super().__init__(f"query syntax error at {position}: {message} in {query!r}")


class NotASemanticDirectory(HacError):
    """A semantic-directory operation was applied to an ordinary directory."""

    def __init__(self, path: str):
        self.path = path
        super().__init__(f"not a semantic directory: {path}")


class DependencyCycle(HacError):
    """Adding a query reference would create a cycle in the dependency DAG."""

    def __init__(self, path: str, cycle: list):
        self.path = path
        self.cycle = list(cycle)
        pretty = " -> ".join(str(p) for p in self.cycle)
        super().__init__(f"dependency cycle via {path}: {pretty}")


class UnknownDirectoryReference(HacError):
    """A query references a directory path that does not exist."""

    def __init__(self, path: str):
        self.path = path
        super().__init__(f"query references unknown directory: {path}")


class MountError(HacError):
    """Invalid syntactic/semantic mount operation."""

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"mount error at {path}: {message}")


class QueryLanguageMismatch(MountError):
    """Name spaces on a multiple semantic mount must share a query language."""

    def __init__(self, path: str, expected: str, got: str):
        super().__init__(
            path,
            f"all name spaces on a semantic mount point must share one query "
            f"language (mounted: {expected!r}, new: {got!r})",
        )


class BackendUnavailable(HacError):
    """A search back-end could not be reached.

    The root of the unified failure taxonomy: remote name spaces
    (:class:`RemoteUnavailable`), search-cluster shards
    (:class:`ShardUnavailable`), and breaker rejections
    (:class:`CircuitOpen`) all subclass this, so every HAC degradation
    path — the consistency cascade, the cluster's scatter-gather, RPC
    retry loops — catches exactly one exception type.

    :param backend: the name of the unreachable back-end (a namespace id,
        a transport name, a shard id).
    """

    #: what kind of back-end failed, overridden by subclasses for display
    kind = "back-end"

    def __init__(self, backend: str, message: str = ""):
        self.backend = backend
        detail = f"{self.kind} unavailable: {backend}"
        if message:
            detail = f"{detail} ({message})"
        super().__init__(detail)


class RemoteUnavailable(BackendUnavailable):
    """A simulated remote name space failed or timed out."""

    kind = "remote name space"

    def __init__(self, namespace: str, message: str = ""):
        super().__init__(namespace, message)
        self.namespace = namespace


class ShardUnavailable(BackendUnavailable):
    """A local search-cluster shard failed or timed out."""

    kind = "search shard"

    def __init__(self, shard: str, message: str = ""):
        super().__init__(shard, message)
        self.shard = shard


class CircuitOpen(BackendUnavailable):
    """The per-backend circuit breaker is open: the call was rejected
    locally without issuing an RPC.  Subclasses BackendUnavailable
    directly — the breaker does not know (or care) whether it guards a
    remote name space or a shard, only that the back-end is down."""

    kind = "back-end"

    def __init__(self, backend: str, retry_at: float):
        self.retry_at = retry_at
        super().__init__(backend, f"circuit open until t={retry_at:g}")
        # compatibility with the RemoteUnavailable attribute surface
        self.namespace = backend


class AdmissionRejected(BackendUnavailable):
    """The admission controller shed this operation.

    Raised *before* any state is touched when load shedding is enabled,
    back-ends are degraded, and the maintenance queue is at its bound —
    degradation as a serving policy rather than a partial result.
    Subclasses :class:`BackendUnavailable` so every existing degradation
    handler treats a shed write exactly like an unreachable back-end.
    """

    kind = "admission gate"


class StaleHandle(HacError):
    """A link target no longer resolves to a live file (data inconsistency)."""

    def __init__(self, target: str):
        self.target = target
        super().__init__(f"stale link target: {target}")


class UnknownTenant(HacError):
    """No tenant registered under this name."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"unknown tenant: {name!r}")


class QuotaExceeded(HacError):
    """A tenant operation would overrun one of its resource budgets.

    Raised *before* the operation touches any structure — no bytes land,
    no inode is allocated, no index entry is reserved — so a rejected
    request needs no rollback.  Carries the full accounting picture so
    callers (and tests) can assert exactly which budget tripped.
    """

    def __init__(self, tenant: str, resource: str, used: int, limit: int,
                 requested: int = 0):
        self.tenant = tenant
        #: "inodes" | "bytes" | "docs"
        self.resource = resource
        self.used = used
        self.limit = limit
        self.requested = requested
        super().__init__(
            f"tenant {tenant!r} over {resource} quota: "
            f"used {used} + requested {requested} > limit {limit}")
