"""Chaos orchestration plane (robustness soak harness).

Composes every fault surface the earlier layers grew — device crash /
torn-write / ENOSPC plans, RPC failure schedules and circuit breakers,
shard kill/restore, replica lag, mid-drain crash points — into seeded,
fully deterministic soak scenarios, and checks a fixed invariant list at
every convergence window.  The same machinery backs the ``chaos`` shell
commands, the chaos tests, and ``benchmarks/bench_chaos_soak.py``.

* :mod:`repro.chaos.schedule` — :class:`ChaosSchedule`: the timed fault
  events a seed expands into;
* :mod:`repro.chaos.orchestrator` — :class:`ChaosRun`: twin worlds (one
  under chaos, one fault-free oracle) driven by one workload stream;
* :mod:`repro.chaos.invariants` — heal, check, and the canonical state
  digest the oracle comparison uses.
"""

from repro.chaos.invariants import check_invariants, heal, state_digest
from repro.chaos.orchestrator import PROBE_QUERIES, ChaosRun, ChaosWorld
from repro.chaos.schedule import ChaosEvent, ChaosSchedule, generate

__all__ = [
    "ChaosEvent",
    "ChaosRun",
    "ChaosSchedule",
    "ChaosWorld",
    "PROBE_QUERIES",
    "check_invariants",
    "generate",
    "heal",
    "state_digest",
]
