"""Tenant-isolation soak: chaos aimed at tenant A must not touch tenant B.

The multi-tenant contract is stronger than the PR 7 convergence story: it
is not enough for the *whole world* to converge after faults — a tenant
that never saw a fault must end **bit-identical** to a twin world in
which the noisy neighbour does not exist at all.  This soak proves that:

* one shared :class:`~repro.core.hacfs.HacFileSystem` hosts two tenants —
  ``alpha`` runs the high-churn code-repo workload
  (:mod:`repro.workloads.coderepo`) with device faults (tears, ENOSPC
  bursts, crashes) armed *only around alpha's operations*;
* ``beta`` runs the digital-library workload
  (:mod:`repro.workloads.digilib`) with every fault injector lifted
  before each of its operations;
* a separate **oracle world** contains only ``beta`` and replays exactly
  beta's operation stream, fault-free;
* after healing, ``tenant_digest`` — a SHA-256 over beta's
  tenant-relative tree, its semantic-directory links, and its strong
  query answers — must match the oracle's digest exactly.

Crashes recover through :meth:`HacFileSystem.restore`, which re-attaches
the tenant table from its persisted record; the soak re-fetches the
facades afterwards, as a real client would.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Dict, List, Optional

from repro.errors import DeviceCrashed, ReproError
from repro.vfs.blockdev import FaultPlan
from repro.util.stats import Counters
from repro.util.clock import VirtualClock
from repro.core.hacfs import HacFileSystem
from repro.core.quota import QuotaSpec
from repro.vfs.filesystem import FileSystem
from repro.workloads.coderepo import CodeRepoGenerator
from repro.workloads.digilib import DigitalLibraryGenerator

#: strong-read panel hashed into the tenant digest (beta's subjects)
PROBE_TERMS = ("fingerprint", "retrieval", "indexing")


def tenant_digest(tenant) -> str:
    """SHA-256 of one tenant's canonical observable state.

    Everything is tenant-relative — paths come out of the facade, so two
    instances of the same namespace hosted in different worlds (or a
    world with different co-tenants) hash identically when and only when
    the tenant's own state matches.
    """
    tenant.barrier()
    tree: Dict[str, str] = {}
    stack = ["/"]
    while stack:
        path = stack.pop()
        for name in sorted(tenant.listdir(path)):
            child = (path.rstrip("/") or "") + "/" + name
            st = tenant.lstat(child)
            if st.is_dir:
                tree[child] = "dir"
                stack.append(child)
            elif st.is_symlink:
                tree[child] = "link:" + tenant.readlink(child)
            else:
                tree[child] = "file:" + hashlib.sha256(
                    tenant.read_file(child)).hexdigest()
    semdirs = {}
    for path in [p for p in tree if tree[p] == "dir"] + ["/"]:
        if tenant.is_semantic(path):
            semdirs[path] = sorted(tenant.links(path))
    obj = {
        "tree": tree,
        "semdirs": semdirs,
        "queries": {t: tenant.glimpse(t) for t in PROBE_TERMS},
    }
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class _World:
    """One HAC deployment hosting the soak's tenant(s)."""

    def __init__(self, k: int, with_alpha: bool, fsid: str):
        from repro.cba.backend import open_backend

        self.k = k
        self.clock = VirtualClock()
        self.counters = Counters()
        self.backend = (open_backend({"kind": "cluster", "shards": k,
                                      "latency": 0.0}) if k > 0 else None)
        fs = FileSystem(name="hac", clock=self.clock,
                        counters=self.counters, fsid=fsid)
        self.hac = HacFileSystem(fs=fs, clock=self.clock,
                                 counters=self.counters,
                                 backend=self.backend)
        self.hac.maintenance.set_mode("batched")
        if with_alpha:
            self.hac.tenants.create("alpha", quota=QuotaSpec(weight=4))
        self.hac.tenants.create("beta", quota=QuotaSpec(weight=1))

    @property
    def device(self):
        return self.hac.fs.device

    def tenant(self, name: str):
        return self.hac.tenants.get(name)

    def recover(self) -> None:
        self.hac = HacFileSystem.restore(self.hac.fs, clock=self.clock,
                                         counters=self.counters,
                                         backend=self.backend)
        self.hac.maintenance.set_mode("batched")

    def heal(self) -> None:
        self.device.clear_faults()
        if self.k > 0:
            for sid in sorted(self.hac.engine.shards):
                self.hac.engine.revive_shard(sid)
        self.hac.maintenance.drain(reason="heal")
        self.hac.ssync("/")
        self.hac.maintenance.publish()


class TenantIsolationSoak:
    """One seeded run of the two-tenant isolation soak."""

    def __init__(self, seed: int = 0, k: int = 0, steps: int = 30):
        self.seed = seed
        self.k = k
        self.steps = steps
        self.world = _World(k=k, with_alpha=True, fsid="hac#tsoak")
        self.oracle = _World(k=0, with_alpha=False, fsid="hac#tsoak")
        self._rng = random.Random(seed * 7919 + 29)
        self._stats = self.world.counters.scoped("tenantsoak")
        self.violations: List[str] = []
        self._alpha_gen = CodeRepoGenerator(seed=seed + 1)
        self._beta_gen = DigitalLibraryGenerator(seed=seed + 2)
        self._alpha_paths: List[str] = []
        self._beta_count = 0
        self._beta_queries = 0

    # -- fault arming (alpha-only windows) ----------------------------------

    def _arm_fault(self) -> None:
        device = self.world.device
        base = device.record_write_index
        kind = self._rng.choice(("tear", "enospc", "crash", "none", "none"))
        self._stats.add(f"faults.{kind}")
        if kind == "tear":
            device.set_fault_plan(FaultPlan(
                tear_at=base + self._rng.randrange(1, 6)))
        elif kind == "enospc":
            start = base + self._rng.randrange(1, 4)
            device.set_fault_plan(FaultPlan(
                enospc_at=set(range(start, start + self._rng.randrange(1, 4)))))
        elif kind == "crash":
            device.set_fault_plan(FaultPlan(
                crash_at=base + self._rng.randrange(1, 8)))
        if self.k > 0 and self._rng.random() < 0.3:
            victim = self._rng.choice(sorted(self.world.hac.engine.shards))
            self.world.hac.engine.kill_shard(victim)

    # -- per-tenant op streams ----------------------------------------------

    def _alpha_burst(self) -> None:
        """A few churn ops against alpha under armed faults."""
        alpha = self.world.tenant("alpha")
        if not self._alpha_paths:
            try:
                self._alpha_paths = self._alpha_gen.populate(alpha, count=12)
            except DeviceCrashed:
                self._recover()
                return
            except ReproError:
                self._stats.add("alpha_failed")
                return
        for _ in range(self._rng.randrange(1, 4)):
            try:
                self._alpha_gen.churn(alpha, self._alpha_paths, steps=1)
                self._stats.add("alpha_applied")
            except DeviceCrashed:
                self._recover()
                return
            except ReproError:
                # sheds / ENOSPC / degraded evaluation: alpha may lose work,
                # the churn path list can drift from the tree — irrelevant,
                # only beta's fate is under test
                self._stats.add("alpha_failed")

    def _beta_op(self, step: int) -> None:
        """One fault-free library op, mirrored into the oracle.

        Every injector is lifted first — device fault plans and killed
        shards alike: the contract under test is isolation from the noisy
        *tenant*, so shared-infrastructure faults must not be in play
        when beta acts."""
        self.world.device.clear_faults()
        if self.k > 0:
            for sid in sorted(self.world.hac.engine.shards):
                self.world.hac.engine.revive_shard(sid)
        beta = self.world.tenant("beta")
        twin = self.oracle.tenant("beta")
        if step == 0:
            for t in (beta, twin):
                t.smkdir("/q", "retrieval")
        if self._rng.random() < 0.5 or self._beta_count == 0:
            index = self._beta_count
            self._beta_count += 1
            path = f"/stacks/vol{index:04d}.txt"
            data = self._beta_gen.render(index).encode("utf-8")
            for t in (beta, twin):
                if not t.isdir("/stacks"):
                    t.makedirs("/stacks")
                t.write_file(path, data)
        else:
            term = self._beta_gen.query_stream(1, offset=self._beta_queries)[0]
            self._beta_queries += 1
            ours = beta.glimpse(term)
            theirs = twin.glimpse(term)
            if ours != theirs:
                self.violations.append(
                    f"step {step}: beta query {term!r} diverged: "
                    f"{ours} != {theirs}")
        self._stats.add("beta_applied")
        self.oracle.clock.advance(1.0)
        self.world.clock.advance(1.0)

    def _recover(self) -> None:
        self._stats.add("crashes_hit")
        self.world.recover()
        self._stats.add("recoveries")
        # the facade list survives on the manager; churn path hints may
        # now name rolled-back files, which churn treats as failures

    # -- the loop ------------------------------------------------------------

    def run(self) -> Dict[str, object]:
        for step in range(self.steps):
            self._arm_fault()
            self._alpha_burst()
            try:
                self._beta_op(step)
            except DeviceCrashed:  # must be impossible: faults were lifted
                self._recover()
                self.violations.append(
                    f"step {step}: beta op hit a device fault")
            except ReproError as exc:
                self.violations.append(
                    f"step {step}: beta op failed: {exc!r}")
            self._stats.add("steps")
        self.world.heal()
        self.oracle.heal()
        ours = tenant_digest(self.world.tenant("beta"))
        theirs = tenant_digest(self.oracle.tenant("beta"))
        if ours != theirs:
            self.violations.append(
                f"beta digest diverged from solo oracle: {ours[:16]} != "
                f"{theirs[:16]}")
        return self.report(ours, theirs)

    def report(self, ours: Optional[str] = None,
               theirs: Optional[str] = None) -> Dict[str, object]:
        get = self._stats.get
        return {
            "seed": self.seed,
            "k": self.k,
            "steps": int(get("steps")),
            "alpha_applied": int(get("alpha_applied")),
            "alpha_failed": int(get("alpha_failed")),
            "beta_applied": int(get("beta_applied")),
            "crashes_hit": int(get("crashes_hit")),
            "recoveries": int(get("recoveries")),
            "beta_digest": ours,
            "oracle_digest": theirs,
            "violations": list(self.violations),
            "ok": not self.violations,
        }


def run_soak(seed: int = 0, k: int = 0, steps: int = 30) -> Dict[str, object]:
    """Convenience entry point (the CI tenant-sweep calls this)."""
    return TenantIsolationSoak(seed=seed, k=k, steps=steps).run()
