"""Seeded chaos schedules: which fault fires at which workload step.

A :class:`ChaosSchedule` is data, not behaviour — a sorted list of
:class:`ChaosEvent` rows the orchestrator interprets against a live
world.  Keeping the schedule pure makes a soak reproducible from nothing
but ``(seed, steps, topology)``: the same seed always expands to the
same faults at the same steps, and a failing run can be replayed (or
bisected) by re-generating its schedule.

Event kinds and their arguments:

``kill_shard`` / ``revive_shard``
    ``{"shard": id}`` — partition one search shard off / bring it back.
``remote_down`` / ``remote_up``
    ``{"remote": ns_id}`` — fail every RPC to a mounted name space
    (breakers trip after their threshold) / stop failing them.
``lag``
    ``{"shard": id_or_None, "publishes": n}`` — replica staleness
    injection; shard ``None`` targets a monolithic engine's replicas.
``enospc``
    ``{"burst": n}`` — arm *n* consecutive transient no-space faults at
    the device's current record-write index.
``tear``
    ``{"offset": n}`` — arm a torn write *n* record writes ahead: the
    device persists a truncated payload, then freezes exactly as with
    ``crash``; recovery heals the corrupt record from the journal.
``crash``
    ``{"offset": n}`` — arm a device crash *n* record writes ahead; the
    device freezes when it fires and the orchestrator recovers.

Within one step, events apply in a fixed kind order (kills before
revivals, faults armed before anything that might consume them) so a
schedule never depends on generation order for its meaning.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

#: all kinds a schedule may contain, in their within-step apply order
KIND_ORDER = ("kill_shard", "remote_down", "lag", "enospc", "tear",
              "crash", "revive_shard", "remote_up")


class ChaosEvent:
    """One timed fault: fire *kind* with *args* before workload step *step*."""

    __slots__ = ("step", "kind", "args")

    def __init__(self, step: int, kind: str, args: Optional[Dict] = None):
        if kind not in KIND_ORDER:
            raise ValueError(f"unknown chaos event kind: {kind!r}")
        self.step = step
        self.kind = kind
        self.args: Dict = dict(args or {})

    def to_obj(self) -> Dict:
        return {"step": self.step, "kind": self.kind, "args": dict(self.args)}

    def __repr__(self) -> str:
        return f"ChaosEvent(step={self.step}, kind={self.kind!r}, args={self.args})"


class ChaosSchedule:
    """An immutable, step-ordered fault script."""

    def __init__(self, events: Iterable[ChaosEvent], steps: int, seed: int):
        self.steps = steps
        self.seed = seed
        self._events: List[ChaosEvent] = sorted(
            events, key=lambda e: (e.step, KIND_ORDER.index(e.kind)))
        self._by_step: Dict[int, List[ChaosEvent]] = {}
        for event in self._events:
            self._by_step.setdefault(event.step, []).append(event)

    @property
    def events(self) -> List[ChaosEvent]:
        return list(self._events)

    def at(self, step: int) -> List[ChaosEvent]:
        """Events to apply before workload step *step* (already ordered)."""
        return list(self._by_step.get(step, []))

    def to_obj(self) -> Dict:
        return {"seed": self.seed, "steps": self.steps,
                "events": [e.to_obj() for e in self._events]}

    def __len__(self) -> int:
        return len(self._events)


def generate(seed: int, steps: int = 80,
             shard_ids: Sequence[str] = (),
             remote_ids: Sequence[str] = ("digilib",),
             crashes: int = 1,
             tears: int = 1,
             enospc_bursts: int = 1,
             lag_events: int = 1) -> ChaosSchedule:
    """Expand *seed* into a soak schedule over *steps* workload steps.

    Every outage (shard kill, remote down) schedules its own recovery a
    bounded number of steps later, so faults overlap but none is
    permanent — the convergence windows between faults are where the
    invariant checker runs.  The rng is local to this function; the same
    arguments always produce the same schedule.
    """
    if steps < 10:
        raise ValueError("a soak needs at least 10 steps")
    rng = random.Random(seed * 2654435761 % (2 ** 31) + steps)
    events: List[ChaosEvent] = []

    def outage(kind_down: str, kind_up: str, key: str, value: str) -> None:
        start = rng.randrange(1, max(2, steps - 6))
        length = rng.randrange(3, 9)
        events.append(ChaosEvent(start, kind_down, {key: value}))
        events.append(ChaosEvent(min(steps - 1, start + length), kind_up,
                                 {key: value}))

    for shard in shard_ids:
        outage("kill_shard", "revive_shard", "shard", shard)
    for remote in remote_ids:
        outage("remote_down", "remote_up", "remote", remote)
    for _ in range(lag_events):
        shard = rng.choice(list(shard_ids)) if shard_ids else None
        events.append(ChaosEvent(rng.randrange(1, steps),
                                 "lag", {"shard": shard,
                                         "publishes": rng.randrange(1, 4)}))
    for _ in range(enospc_bursts):
        events.append(ChaosEvent(rng.randrange(1, steps),
                                 "enospc", {"burst": rng.randrange(1, 4)}))
    for _ in range(tears):
        events.append(ChaosEvent(rng.randrange(1, steps),
                                 "tear", {"offset": rng.randrange(0, 4)}))
    for _ in range(crashes):
        events.append(ChaosEvent(rng.randrange(1, steps),
                                 "crash", {"offset": rng.randrange(0, 4)}))
    return ChaosSchedule(events, steps=steps, seed=seed)
