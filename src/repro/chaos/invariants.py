"""Convergence-window invariants for the chaos soak.

After every window the orchestrator *heals* the chaos world (lifts every
armed fault, revives shards, un-lags replicas, waits out breaker
cooldowns, drains and republishes) and then *checks* a fixed list of
invariants.  Healing is part of the contract being tested: the system
must converge to a clean state under its own mechanisms — breakers
re-close by probing, stale directories re-sync, the fsck audit comes
back clean — once the faults stop, with no state surgery beyond turning
the fault injectors off.

The cross-world invariant is a canonical **state digest**: a SHA-256
over everything two correct worlds must agree on — the file tree (paths,
content hashes, symlink targets), semantic-directory link
classifications, prohibitions, and the strong answers to the probe-query
panel.  Doc ids, mtimes, snapshot versions, and clock values are
excluded by construction: faults legitimately burn reserved ids and
skew virtual time without making either world wrong.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence

from repro.cluster.coordinator import BREAKER_COOLDOWN

#: virtual seconds heal() waits out — past every breaker cooldown in play
HEAL_WAIT = BREAKER_COOLDOWN + 1.0


def heal(world) -> None:
    """Lift every fault injector and let the world reconverge.

    Two sync rounds on purpose: the first runs with breakers half-open
    (its successes re-close them and clear staleness marks), the second
    runs against an all-closed world and republishes, so snapshot reads
    answer from converged state.
    """
    world.device.clear_faults()
    hac = world.hac
    if world.k > 0:
        for sid in sorted(hac.engine.shards):
            hac.engine.revive_shard(sid)
            hac.engine.set_replica_lag(sid, 0)
    else:
        for replica in hac.engine.snapshot_info()["replicas"]:
            hac.engine.set_replica_lag(str(replica["id"]), 0)
    transport = world.service.transport
    transport.fail_on = None
    transport.failure_rate = 0.0
    world.clock.advance(HEAL_WAIT)
    for _ in range(2):
        hac.maintenance.drain(reason="heal")
        world.shell.ssync("/")
    hac.maintenance.publish()


# ---------------------------------------------------------------------------
# the canonical state digest
# ---------------------------------------------------------------------------


def _tree(world) -> Dict[str, str]:
    fs = world.hac.fs
    out: Dict[str, str] = {}
    stack = ["/"]
    while stack:
        path = stack.pop()
        for name in sorted(fs.listdir(path)):
            child = (path.rstrip("/") or "") + "/" + name
            st = fs.lstat(child)
            if st.is_dir:
                out[child] = "dir"
                stack.append(child)
            elif st.is_symlink:
                out[child] = "link:" + fs.readlink(child)
            else:
                digest = hashlib.sha256(fs.read_file(child)).hexdigest()
                out[child] = "file:" + digest
    return out


def resolve_display(world, display: str) -> str:
    """Normalise a link-target display for cross-world comparison.

    Local targets display as ``<fsid>:ino<N>`` — an identity that
    legitimately differs between two worlds (fs ids are per-instance,
    and rolled-back creates burn inode numbers) — so they are resolved
    to the file's *current path*.  Remote displays
    (``namespace://doc``) are already world-independent.
    """
    fs = world.hac.fs
    prefix = f"{fs.fsid}:ino"
    if display.startswith(prefix):
        path = fs.path_of_ino(int(display[len(prefix):]))
        if path is not None:
            return path
    return display


def _semdirs(world,
             paths: Optional[Sequence[str]] = None
             ) -> Dict[str, Dict[str, object]]:
    hac = world.hac
    out: Dict[str, Dict[str, object]] = {}
    if paths is None:
        paths = sorted(hac.semantic_dirs())
    for path in paths:
        out[path] = {
            "links": {name: [cls, resolve_display(world, display)]
                      for name, (cls, display)
                      in sorted(hac.links(path).items())},
            "prohibited": [resolve_display(world, d)
                           for d in hac.prohibited(path)],
        }
    return out


def state_digest(world, queries: Sequence[str] = ()) -> str:
    """SHA-256 of the world's canonical observable state."""
    obj = {
        "tree": _tree(world),
        "semdirs": _semdirs(world),
        "queries": {q: world.shell.glimpse(q, consistency="strong")
                    for q in queries},
    }
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# the invariant list
# ---------------------------------------------------------------------------


def check_invariants(world, oracle=None,
                     queries: Sequence[str] = ()) -> List[str]:
    """Run the full invariant list against a *healed* world; returns
    human-readable violations (empty = all hold).

    1. ``hac.health()`` converges: no directory carries staleness.
    2. Every circuit breaker re-closed.
    3. No shard is down or breaker-open.
    4. The fsck audit reports no error-severity finding.
    5. Strong and snapshot answers agree on the probe panel.
    6. The admission gate reports ``healthy`` (when enabled).
    7. The state digest matches the fault-free oracle's (when given).
    """
    violations: List[str] = []
    health = world.hac.health()
    for path, info in sorted(health["directories"].items()):
        violations.append(f"directory {path} still degraded: {info}")
    for name, desc in sorted(health["breakers"].items()):
        if desc["state"] != "closed":
            violations.append(f"breaker {name} stuck {desc['state']}")
    for sid, state in sorted(health["shards"].items()):
        if state in ("down", "open", "half_open"):
            violations.append(f"shard {sid} unhealthy: {state}")
    for finding in world.hac.fsck(repair=False):
        if finding.severity == "error":
            violations.append(f"fsck error: {finding}")
    for query in queries:
        strong = world.shell.glimpse(query, consistency="strong")
        snapshot = world.shell.glimpse(query, consistency="snapshot")
        if strong != snapshot:
            violations.append(
                f"probe {query!r}: strong {strong} != snapshot {snapshot}")
    admission = world.hac.admission
    if admission.enabled and admission.state() != "healthy":
        violations.append(
            f"admission still {admission.state()} after heal: "
            f"{admission.degraded_backends()}")
    if oracle is not None:
        ours = state_digest(world, queries=queries)
        theirs = state_digest(oracle, queries=queries)
        if ours != theirs:
            violations.append(
                f"state digest diverged from oracle: {ours[:16]} != "
                f"{theirs[:16]}")
    return violations
