"""Twin-world chaos soak: one world under fault injection, one oracle.

The orchestrator drives two :class:`ChaosWorld` instances — identical
corpus, semantic directories, remote mount, and watch set — through one
seeded workload stream.  The *chaos* world additionally executes a
:class:`~repro.chaos.schedule.ChaosSchedule`; the *oracle* world never
sees a fault and runs the eager maintenance path.  Every operation is
generated from a **model** of the file population (never from live world
state), applied to the chaos world first, and mirrored to the oracle
only when it demonstrably took effect — so at every convergence window
the two worlds must agree on the canonical state digest, whatever faults
fired in between.

The mirror decision is the subtle part.  A chaos-world operation can end
three ways:

* it returns — applied; mirror it;
* it raises with **no** effect (admission shed, breaker rejection,
  ENOSPC rolled back in process) — count it shed, do not mirror;
* it raises with **partial** effect (a crash froze the device mid-op, a
  threshold drain failed *after* the file write landed) — undecidable
  from the exception alone, so the runner recovers (when the device is
  frozen) and then **probes the post-state**: the op is mirrored exactly
  when its observable effect survived.

Because every probe reads only post-recovery state, the chaos world and
the oracle track the same file population deterministically; clocks,
doc-id burn, and mtimes are allowed to diverge and are excluded from the
digest by construction (see :mod:`repro.chaos.invariants`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.chaos.schedule import ChaosSchedule, generate
from repro.core.hacfs import HacFileSystem
from repro.errors import (AdmissionRejected, BackendUnavailable,
                          DeviceCrashed, ReproError)
from repro.remote.rpc import CircuitBreaker, RpcTransport
from repro.remote.searchsvc import SimulatedSearchService
from repro.shell.session import HacShell
from repro.util.clock import VirtualClock
from repro.util.stats import Counters
from repro.vfs.blockdev import FaultPlan
from repro.vfs.filesystem import FileSystem
from repro.workloads.mailgen import MailGenerator

#: the fixed query panel every invariant check and digest evaluates
PROBE_QUERIES = ("fingerprint", "project", "fingerprint AND project",
                 "budget OR deadline")

#: breaker settings for the soak's remote name space (matches the
#: cluster's defaults so one cooldown heals everything)
REMOTE_BREAKER_THRESHOLD = 3
REMOTE_BREAKER_COOLDOWN = 30.0

_NOTES = {
    "/notes/fp-design.txt": "design notes for the fingerprint matcher "
                            "minutiae extraction and ridge counting",
    "/notes/budget.txt": "project budget draft numbers for the deadline",
    "/notes/recipe.txt": "banana bread recipe with walnuts",
}

_REMOTE_DOCS = {
    "fp-survey": "survey of fingerprint recognition methods",
    "fp-sensors": "capacitive fingerprint sensors in practice",
    "nn-paper": "convolutional networks for images",
}

#: workload op mix (weights); reads dominate like a mail/Andrew day would
_OP_MIX = (("write", 5), ("rewrite", 4), ("delete", 2), ("rename", 2),
           ("pin", 1), ("read_strong", 5), ("read_snapshot", 4), ("tick", 3))


class ChaosWorld:
    """One complete HAC deployment the soak can fault or leave pristine.

    :param k: search-cluster shards (0 = monolithic engine).
    :param batched: run the maintenance scheduler in batched mode.
    :param admission: enable the admission gate (chaos world only).
    """

    def __init__(self, k: int = 0, batched: bool = False,
                 admission: bool = False, max_queue_depth: int = 64,
                 mail_count: int = 8):
        self.k = k
        self.batched = batched
        self.admission = admission
        self.max_queue_depth = max_queue_depth
        self.clock = VirtualClock()
        self.counters = Counters()
        from repro.cba.backend import open_backend

        self.backend = (open_backend({"kind": "cluster", "shards": k,
                                      "latency": 0.0})
                        if k > 0 else None)
        # a pinned fsid makes the soak reproducible across processes:
        # doc keys embed the fsid, and the cluster hashes keys onto
        # shards, so a process-unique id would reshuffle placement
        fs = FileSystem(name="hac", clock=self.clock,
                        counters=self.counters, fsid="hac#soak")
        self.hac = HacFileSystem(fs=fs, clock=self.clock,
                                 counters=self.counters,
                                 backend=self.backend)
        self.shell = HacShell(self.hac)
        self.hac.makedirs("/notes")
        for path, text in sorted(_NOTES.items()):
            self.hac.write_file(path, text.encode("utf-8"))
        MailGenerator().populate(self.hac, "/mail", count=mail_count)
        self.hac.makedirs("/lib")
        self.service = SimulatedSearchService(
            "digilib", documents=dict(_REMOTE_DOCS),
            transport=RpcTransport(
                "digilib", clock=self.clock, latency=0.0,
                counters=self.counters,
                breaker=CircuitBreaker(
                    failure_threshold=REMOTE_BREAKER_THRESHOLD,
                    cooldown=REMOTE_BREAKER_COOLDOWN,
                    counters=self.counters, name="digilib")))
        self._wire()
        self.hac.smkdir("/q-fp", "fingerprint")
        self.hac.smkdir("/q-proj", "project")
        self.shell.ssync("/")
        self.hac.maintenance.publish()

    def _wire(self) -> None:
        """In-memory service wiring — everything :meth:`recover` must redo
        because a restore deliberately drops it."""
        self.shell.smount("/lib", self.service)
        self.hac.watch("/mail")
        self.hac.watch("/notes")
        if self.batched:
            self.hac.maintenance.set_mode("batched")
        if self.admission:
            self.hac.admission.max_queue_depth = self.max_queue_depth
            self.hac.admission.enable()

    @property
    def device(self):
        return self.hac.fs.device

    def recover(self) -> None:
        """The reboot: restore from the device records, then re-wire the
        in-memory state (mounts, watches, mode, admission) and reconverge."""
        self.hac = HacFileSystem.restore(self.hac.fs, clock=self.clock,
                                         counters=self.counters,
                                         backend=self.backend)
        self.shell = HacShell(self.hac)
        self._wire()
        self.shell.ssync("/")
        self.hac.maintenance.publish()

    def remote_breaker(self) -> CircuitBreaker:
        return self.service.transport.breaker

    def shard_ids(self) -> List[str]:
        if self.k == 0:
            return []
        return sorted(self.hac.engine.shards)


class ChaosRun:
    """One seeded soak: schedule + twin worlds + invariant windows.

    All outcome counters land in the chaos world's ``chaos.*`` counter
    scope, so a report is reproducible bit-for-bit from ``(seed, k,
    steps, admission)``.
    """

    def __init__(self, seed: int = 0, k: int = 0, steps: int = 60,
                 windows: int = 3, admission: bool = True,
                 batched: bool = True, max_queue_depth: int = 64,
                 schedule: Optional[ChaosSchedule] = None):
        self.seed = seed
        self.k = k
        self.steps = steps
        self.windows = max(1, windows)
        self.chaos = ChaosWorld(k=k, batched=batched, admission=admission,
                                max_queue_depth=max_queue_depth)
        self.oracle = ChaosWorld(k=0, batched=False, admission=False)
        self.schedule = schedule if schedule is not None else generate(
            seed, steps=steps, shard_ids=self.chaos.shard_ids())
        self._rng = random.Random(seed * 7919 + 17)
        self._stats = self.chaos.counters.scoped("chaos")
        #: model of the mutable file population — the single source every
        #: workload op draws from; updated only on confirmed application
        self._model: Dict[str, str] = {}
        self._pinned: set = set()
        self._name_counter = 0
        self.violations: List[str] = []
        self._ops = [op for op, weight in _OP_MIX for _ in range(weight)]

    # ------------------------------------------------------------------
    # schedule interpretation
    # ------------------------------------------------------------------

    def _apply_event(self, event) -> None:
        world = self.chaos
        kind, args = event.kind, event.args
        self._stats.add(f"events.{kind}")
        if kind == "kill_shard" and world.k > 0:
            world.hac.engine.kill_shard(args["shard"])
        elif kind == "revive_shard" and world.k > 0:
            world.hac.engine.revive_shard(args["shard"])
        elif kind == "remote_down":
            world.service.transport.fail_on = None
            world.service.transport.failure_rate = 1.0
        elif kind == "remote_up":
            world.service.transport.failure_rate = 0.0
        elif kind == "lag":
            publishes = args["publishes"]
            if world.k > 0 and args.get("shard"):
                world.hac.engine.set_replica_lag(args["shard"], publishes)
            else:
                for replica in world.hac.engine.snapshot_info()["replicas"]:
                    self._set_monolith_lag(world, str(replica["id"]),
                                           publishes)
        elif kind == "enospc":
            device = world.device
            base = device.record_write_index
            self._arm(device, enospc_at=set(range(base,
                                                  base + args["burst"])))
        elif kind == "tear":
            device = world.device
            self._arm(device,
                      tear_at=device.record_write_index + args["offset"])
        elif kind == "crash":
            device = world.device
            self._arm(device,
                      crash_at=device.record_write_index + args["offset"])

    def _set_monolith_lag(self, world: ChaosWorld, replica_id: str,
                          publishes: int) -> None:
        if world.k > 0:
            shard = replica_id.split(":", 1)[0]
            world.hac.engine.set_replica_lag(shard, publishes,
                                             replica_id=replica_id)
        else:
            world.hac.engine.set_replica_lag(replica_id, publishes)

    @staticmethod
    def _arm(device, crash_at=None, tear_at=None, enospc_at=()):
        """Merge new fault indices into whatever plan is already armed."""
        plan = device.fault_plan
        device.set_fault_plan(FaultPlan(
            crash_at=crash_at if crash_at is not None
            else (plan.crash_at if plan else None),
            tear_at=tear_at if tear_at is not None
            else (plan.tear_at if plan else None),
            enospc_at=(set(plan.enospc_at) if plan else set()) | set(enospc_at),
        ))

    # ------------------------------------------------------------------
    # workload generation (model-driven, world-independent)
    # ------------------------------------------------------------------

    def _new_path(self) -> str:
        self._name_counter += 1
        root = self._rng.choice(("/mail", "/notes"))
        return f"{root}/w{self._name_counter:04d}.txt"

    def _content(self) -> str:
        topics = ("fingerprint", "project", "budget", "deadline", "lunch")
        words = [self._rng.choice(topics) for _ in range(3)]
        return ("From: chaos\nSubject: %s soak\n\nupdate about the %s\n"
                % (words[0], " and the ".join(words)))

    def _pick_op(self) -> Dict[str, object]:
        """One workload op, decided entirely by the rng and the model."""
        op = self._rng.choice(self._ops)
        unpinned = sorted(set(self._model) - self._pinned)
        if op == "rewrite" and not self._model:
            op = "write"
        if op in ("delete", "rename", "pin") and not unpinned:
            op = "write"
        if op == "write":
            return {"op": "write", "path": self._new_path(),
                    "text": self._content()}
        if op == "rewrite":
            path = self._rng.choice(sorted(self._model))
            return {"op": "write", "path": path, "text": self._content()}
        if op == "delete":
            return {"op": "delete", "path": self._rng.choice(unpinned)}
        if op == "rename":
            path = self._rng.choice(unpinned)
            self._name_counter += 1
            new = "%s/r%04d.txt" % (path.rsplit("/", 1)[0],
                                    self._name_counter)
            return {"op": "rename", "path": path, "new": new}
        if op == "pin":
            return {"op": "pin", "path": self._rng.choice(unpinned)}
        if op == "read_strong":
            return {"op": "read", "consistency": "strong",
                    "query": self._rng.choice(PROBE_QUERIES)}
        if op == "read_snapshot":
            return {"op": "read", "consistency": "snapshot",
                    "query": self._rng.choice(PROBE_QUERIES)}
        return {"op": "tick"}

    # ------------------------------------------------------------------
    # application + probing
    # ------------------------------------------------------------------

    def _apply(self, world: ChaosWorld, op: Dict[str, object]) -> bool:
        """Run *op* against *world*; returns whether it had its intended
        effect (a pin can miss when degraded evaluation left the target
        out of the directory — that is a no-op, not a failure)."""
        kind = op["op"]
        if kind == "write":
            world.hac.write_file(op["path"], op["text"].encode("utf-8"))
        elif kind == "delete":
            world.hac.unlink(op["path"])
        elif kind == "rename":
            world.hac.rename(op["path"], op["new"])
        elif kind == "pin":
            world.shell.ssync("/q-fp")
            link = self._link_for(world, op["path"])
            if link is None:
                return False
            world.hac.make_permanent(link)
        elif kind == "read":
            world.shell.glimpse(op["query"],
                                consistency=op["consistency"])
        elif kind == "tick":
            world.clock.advance(1.0)
            world.hac.maintenance.drain(reason="chaos_tick")
        return True

    @staticmethod
    def _link_for(world: ChaosWorld, target: str) -> Optional[str]:
        """Path of the /q-fp link pointing at *target*, if membership
        currently includes it (deterministic: both worlds ssync first)."""
        from repro.chaos.invariants import resolve_display

        for name, (_cls, display) in sorted(world.hac.links("/q-fp").items()):
            if resolve_display(world, display) == target:
                return f"/q-fp/{name}"
        return None

    def _probe_applied(self, world: ChaosWorld, op: Dict[str, object]) -> bool:
        """Did *op*'s observable effect survive into the post-state?"""
        fs = world.hac.fs
        kind = op["op"]
        if kind == "write":
            return fs.isfile(op["path"]) and \
                fs.read_file(op["path"]) == op["text"].encode("utf-8")
        if kind == "delete":
            return not fs.exists(op["path"], follow=False)
        if kind == "rename":
            return fs.exists(op["new"], follow=False) and \
                not fs.exists(op["path"], follow=False)
        if kind == "pin":
            link = self._link_for(world, op["path"])
            return link is not None and \
                world.hac.links("/q-fp")[link.rsplit("/", 1)[1]][0] \
                == "permanent"
        return False  # reads / ticks have no mirrored effect

    def _note_applied(self, op: Dict[str, object]) -> None:
        kind = op["op"]
        if kind == "write":
            self._model[op["path"]] = op["text"]
        elif kind == "delete":
            self._model.pop(op["path"], None)
        elif kind == "rename":
            self._model[op["new"]] = self._model.pop(op["path"])
            if op["path"] in self._pinned:
                # the semantic link now tracks the new path; keep the pin
                self._pinned.discard(op["path"])
                self._pinned.add(op["new"])
        elif kind == "pin":
            self._pinned.add(op["path"])

    def _step(self, op: Dict[str, object]) -> None:
        mutates = op["op"] in ("write", "delete", "rename", "pin")
        applied = False
        raised = False
        try:
            applied = self._apply(self.chaos, op)
            self._stats.add("applied" if applied else "missed")
        except DeviceCrashed:
            raised = True
            self._stats.add("crashes_hit")
            self.chaos.recover()
            self._stats.add("recoveries")
            applied = mutates and self._probe_applied(self.chaos, op)
            self._stats.add("applied" if applied else "lost_to_crash")
        except AdmissionRejected:
            raised = True
            self._stats.add("shed")
            applied = mutates and self._probe_applied(self.chaos, op)
        except (BackendUnavailable, ReproError):
            raised = True
            self._stats.add("failed")
            applied = mutates and self._probe_applied(self.chaos, op)
        if op["op"] == "read":
            self._stats.add(f"reads_{op['consistency']}")
            if raised:
                # the serving-tier promise under test: snapshot reads are
                # in-process and must never fail, whatever is on fire
                self._stats.add(f"reads_{op['consistency']}_failed")
        if op["op"] == "tick":
            # the oracle's clock moves in lockstep even when the chaos
            # tick died mid-drain (virtual time is not transactional)
            self.oracle.clock.advance(1.0)
            self.oracle.hac.maintenance.drain(reason="chaos_tick")
            return
        if not mutates:
            return
        if applied:
            self._apply(self.oracle, op)
            self._note_applied(op)
        else:
            self._stats.add("dropped_mutations")

    # ------------------------------------------------------------------
    # the soak loop
    # ------------------------------------------------------------------

    def run(self) -> Dict[str, object]:
        """Execute the full soak; returns the structured report."""
        from repro.chaos.invariants import check_invariants, heal

        window = max(1, self.steps // self.windows)
        for step in range(self.steps):
            for event in self.schedule.at(step):
                self._apply_event(event)
            self._step(self._pick_op())
            self._stats.add("steps")
            if (step + 1) % window == 0 or step == self.steps - 1:
                heal(self.chaos)
                heal(self.oracle)
                self._stats.add("windows")
                found = check_invariants(self.chaos, oracle=self.oracle,
                                         queries=PROBE_QUERIES)
                self.violations.extend(
                    f"step {step + 1}: {v}" for v in found)
        return self.report()

    def report(self) -> Dict[str, object]:
        get = self._stats.get
        return {
            "seed": self.seed,
            "k": self.k,
            "steps": int(get("steps")),
            "events": len(self.schedule),
            "windows": int(get("windows")),
            "applied": int(get("applied")),
            "shed": int(get("shed")),
            "failed": int(get("failed")),
            "crashes_hit": int(get("crashes_hit")),
            "recoveries": int(get("recoveries")),
            "dropped_mutations": int(get("dropped_mutations")),
            "reads_strong": int(get("reads_strong")),
            "reads_snapshot": int(get("reads_snapshot")),
            "admission": self.chaos.hac.admission.status(),
            "violations": list(self.violations),
            "ok": not self.violations,
        }
