"""Metrics — counters plus virtual-clock histograms.

The repo already accounts scalar facts through :class:`repro.util.stats.
Counters` (``blockdev.read_blocks``, ``engine.docs_scanned``, ``breaker.*``
transitions, ...).  The registry builds on that rather than competing with
it: ``inc()`` lands in the *shared* counter bag, so one ``hacstat`` snapshot
shows component counters and observability metrics side by side, while
histograms add the piece counters cannot express — distributions (blocks
nominated per query, docs verified per scan, RPC latency on the virtual
clock, span durations).

Like tracing, the registry is free when disabled: ``observe()``/``time()``
bail on one attribute check.  ``inc()`` is intentionally *not* gated — it
writes plain counters, which this codebase treats as always-on accounting.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.stats import Counters

#: generic duration buckets (milliseconds-ish scale; values are unitless)
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)


class Histogram:
    """Fixed-bucket histogram with min/max/sum tracking."""

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min_value", "max_value")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BOUNDS):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        #: counts[i] counts values <= bounds[i]; the last slot is overflow
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_obj(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "mean": round(self.mean, 9),
            "min": self.min_value,
            "max": self.max_value,
            "buckets": {
                **{f"le_{b:g}": c
                   for b, c in zip(self.bounds, self.counts)},
                "overflow": self.counts[-1],
            },
        }

    def __repr__(self):
        return f"Histogram({self.name!r}, count={self.count})"


class _Timer:
    """Context manager feeding one histogram; virtual clock when bound."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        clock = self._registry.clock
        self._start = clock.now if clock is not None else time.perf_counter()
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> bool:
        clock = self._registry.clock
        now = clock.now if clock is not None else time.perf_counter()
        self._registry.observe(self._name, now - self._start)
        return False


class _NoopTimer:
    __slots__ = ()

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> bool:
        return False


_NOOP_TIMER = _NoopTimer()


class MetricsRegistry:
    """Counters (shared bag) + named histograms for one file system."""

    def __init__(self, counters: Optional[Counters] = None, clock=None,
                 enabled: bool = False):
        self.counters = counters if counters is not None else Counters()
        self.clock = clock
        self.enabled = enabled
        self._hists: Dict[str, Histogram] = {}

    # -- switches -------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- recording ------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Bump a counter in the shared bag (always on, like all counters)."""
        self.counters.add(name, amount)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        if not self.enabled:
            return
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = Histogram(name, bounds)
        hist.observe(value)

    def time(self, name: str):
        """Context manager observing elapsed time into histogram *name* —
        virtual-clock seconds when a clock is bound, wall seconds otherwise."""
        if not self.enabled:
            return _NOOP_TIMER
        return _Timer(self, name)

    # -- inspection ------------------------------------------------------------

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._hists.get(name)

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._hists)

    def snapshot(self) -> Dict[str, object]:
        """Everything at once: the shared counter bag + histogram summaries."""
        return {
            "counters": self.counters.snapshot(),
            "histograms": {name: h.to_obj()
                           for name, h in sorted(self._hists.items())},
        }

    def clear_histograms(self) -> None:
        self._hists.clear()


#: shared always-disabled registry — the default for components constructed
#: without explicit wiring.  Never enable this instance.
NULL_METRICS = MetricsRegistry()
