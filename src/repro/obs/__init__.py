"""The observability plane: op-level tracing + metrics, zero dependencies.

One :class:`Observability` object travels with a
:class:`~repro.core.hacfs.HacFileSystem` and is threaded (as a plain
attribute) through every layer the paper defines — VFS, block device,
journal, dependency graph, CBA engine, Glimpse index, RPC transport — so a
single switch turns the whole stack's instrumentation on or off:

* :class:`~repro.obs.trace.TraceContext` — nested spans per operation
  (syscall → maintenance drain (``sched.drain``/``sched.apply``) →
  re-evaluation → query plan → postings kernel / block scan →
  record I/O → journal intent/commit → RPC attempt), JSONL-exportable;
* :class:`~repro.obs.metrics.MetricsRegistry` — the shared counter bag
  plus virtual-clock histograms.

Disabled is the default and costs one attribute check per hook; DESIGN.md
§3d records the measured overhead budget.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, MetricsRegistry
from repro.obs.trace import NOOP_SPAN, NULL_TRACER, Span, TraceContext

__all__ = [
    "DEFAULT_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NULL_TRACER",
    "Observability",
    "Span",
    "TraceContext",
]


class Observability:
    """Trace + metrics under one switch, sharing one clock and counter bag."""

    def __init__(self, clock=None, counters=None, enabled: bool = False,
                 trace_capacity: int = 8192):
        self.trace = TraceContext(clock=clock, capacity=trace_capacity,
                                  enabled=enabled)
        self.metrics = MetricsRegistry(counters=counters, clock=clock,
                                       enabled=enabled)

    @property
    def enabled(self) -> bool:
        return self.trace.enabled

    def enable(self) -> None:
        self.trace.enable()
        self.metrics.enable()

    def disable(self) -> None:
        self.trace.disable()
        self.metrics.disable()

    def clear(self) -> None:
        self.trace.clear()
        self.metrics.clear_histograms()

    def snapshot(self) -> dict:
        """Counters + histograms + span breakdown in one report-ready dict."""
        snap = self.metrics.snapshot()
        snap["spans"] = self.trace.breakdown()
        snap["spans_dropped"] = self.trace.dropped
        return snap
