"""Operation-level tracing — nested spans, exportable as JSONL.

A :class:`TraceContext` records what one logical operation *did*: the
syscall at the top, the semantic-directory re-evaluations it triggered,
the query plan and whether the postings kernel or a block scan answered
it, the device records it touched, the journal intent protecting it, and
any RPC attempts along the way.  Spans nest by call structure and carry a
virtual-clock interval next to the wall-clock one, so breakdowns stay
meaningful under the simulated cost model.

Tracing is off by default and built to be free when off: ``span()``
returns a shared no-op context manager after a single attribute check, and
``event()``/``set_op_id()`` return immediately.  Nothing here imports
outside the standard library.

The ``op_id`` field exists for journal correlation: when a journaled
operation opens its intent, :class:`repro.core.journal.Journal` stamps the
intent's sequence number onto the enclosing root span (and onto its own
``journal.*`` events), so a recovered intent can always be matched to the
trace of the operation that wrote it.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Deque, Dict, List, Optional


class Span:
    """One timed, attributed interval inside an operation."""

    __slots__ = ("span_id", "parent_id", "op_id", "name", "attrs",
                 "t_start", "t_end", "wall_start", "wall_end", "error",
                 "_trace")

    def __init__(self, trace: "TraceContext", span_id: int,
                 parent_id: Optional[int], name: str,
                 op_id: Optional[int], attrs: Dict[str, object]):
        self._trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.op_id = op_id
        self.name = name
        self.attrs = attrs
        self.t_start = 0.0
        self.t_end: Optional[float] = None
        self.wall_start = 0.0
        self.wall_end: Optional[float] = None
        self.error: Optional[str] = None

    # -- context manager protocol (used via TraceContext.span) ---------------

    def __enter__(self) -> "Span":
        self._trace._push(self)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        self._trace._pop(self)
        return False

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (e.g. result sizes)."""
        self.attrs.update(attrs)
        return self

    @property
    def wall_seconds(self) -> float:
        end = self.wall_end if self.wall_end is not None else self.wall_start
        return end - self.wall_start

    @property
    def virtual_seconds(self) -> float:
        end = self.t_end if self.t_end is not None else self.t_start
        return end - self.t_start

    def to_obj(self) -> Dict[str, object]:
        obj: Dict[str, object] = {
            "span": self.span_id,
            "parent": self.parent_id,
            "op": self.op_id,
            "name": self.name,
            "t0": self.t_start,
            "t1": self.t_end,
            "wall_ms": round(self.wall_seconds * 1000.0, 6),
        }
        if self.attrs:
            obj["attrs"] = self.attrs
        if self.error is not None:
            obj["error"] = self.error
        return obj

    def __repr__(self):
        return (f"Span({self.span_id}, {self.name!r}, op={self.op_id}, "
                f"parent={self.parent_id})")


class _NoopSpan:
    """The shared disabled-mode span: every method is a cheap no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> bool:
        return False

    def set(self, **_attrs) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class TraceContext:
    """Collects spans for one file-system instance.

    :param clock: optional virtual clock; spans then carry virtual-time
        intervals next to wall-clock ones.
    :param capacity: finished-span ring buffer size — tracing a long
        benchmark keeps the most recent spans rather than growing without
        bound (drops are counted in :attr:`dropped`).
    """

    def __init__(self, clock=None, capacity: int = 8192,
                 enabled: bool = False):
        self.enabled = enabled
        self.clock = clock
        self.capacity = capacity
        self._finished: Deque[Span] = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._next_id = 1
        self.dropped = 0

    # -- switches -------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._finished.clear()
        self._stack.clear()
        self.dropped = 0

    # -- span production -------------------------------------------------------

    def span(self, name: str, op_id: Optional[int] = None, **attrs):
        """A context manager timing one nested interval; no-op when off."""
        if not self.enabled:
            return NOOP_SPAN
        span = Span(self, self._next_id,
                    self._stack[-1].span_id if self._stack else None,
                    name, op_id, attrs)
        self._next_id += 1
        return span

    def event(self, name: str, op_id: Optional[int] = None, **attrs) -> None:
        """A zero-duration span (record writes, journal begin/commit...)."""
        if not self.enabled:
            return
        span = Span(self, self._next_id,
                    self._stack[-1].span_id if self._stack else None,
                    name, op_id, attrs)
        self._next_id += 1
        now_wall = time.perf_counter()
        now_virtual = self.clock.now if self.clock is not None else 0.0
        span.wall_start = span.wall_end = now_wall
        span.t_start = span.t_end = now_virtual
        self._retire(span)

    def set_op_id(self, op_id: int) -> None:
        """Stamp the journal sequence onto the operation's root span."""
        if not self.enabled or not self._stack:
            return
        self._stack[0].op_id = op_id

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- stack plumbing (driven by Span.__enter__/__exit__) --------------------

    def _push(self, span: Span) -> None:
        span.wall_start = time.perf_counter()
        span.t_start = self.clock.now if self.clock is not None else 0.0
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.wall_end = time.perf_counter()
        span.t_end = self.clock.now if self.clock is not None else 0.0
        # tolerate exception-skewed exits: unwind to (and including) span
        while self._stack:
            top = self._stack.pop()
            self._retire(top)
            if top is span:
                break

    def _retire(self, span: Span) -> None:
        if len(self._finished) == self.capacity:
            self.dropped += 1
        self._finished.append(span)

    # -- inspection / export ---------------------------------------------------

    def spans(self, name: Optional[str] = None,
              op_id: Optional[int] = None) -> List[Span]:
        """Finished spans, oldest first, optionally filtered."""
        out = list(self._finished)
        if name is not None:
            out = [s for s in out if s.name == name]
        if op_id is not None:
            out = [s for s in out if s.op_id == op_id]
        return out

    def __len__(self) -> int:
        return len(self._finished)

    def export_jsonl(self) -> str:
        """One JSON object per finished span, oldest first."""
        return "\n".join(json.dumps(span.to_obj(), sort_keys=True,
                                    default=str)
                         for span in self._finished)

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Aggregate finished spans by name: count and *self* wall time
        (a span's interval minus its direct children's, so the totals of a
        breakdown are additive rather than double-counted)."""
        child_time: Dict[int, float] = {}
        for span in self._finished:
            if span.parent_id is not None:
                child_time[span.parent_id] = \
                    child_time.get(span.parent_id, 0.0) + span.wall_seconds
        out: Dict[str, Dict[str, float]] = {}
        for span in self._finished:
            row = out.setdefault(span.name, {"count": 0, "wall_ms": 0.0,
                                             "self_ms": 0.0})
            row["count"] += 1
            row["wall_ms"] += span.wall_seconds * 1000.0
            self_s = span.wall_seconds - child_time.get(span.span_id, 0.0)
            row["self_ms"] += max(0.0, self_s) * 1000.0
        for row in out.values():
            row["wall_ms"] = round(row["wall_ms"], 6)
            row["self_ms"] = round(row["self_ms"], 6)
        return out


#: shared always-disabled context — the default for components constructed
#: without explicit wiring.  Never enable this instance.
NULL_TRACER = TraceContext()
