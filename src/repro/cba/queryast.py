"""Abstract syntax trees for the HAC query language.

A query combines *content predicates* (words, phrases, approximate words)
with boolean operators and — the HAC twist — *directory references*:
a path name inside a query stands for "the existing query-result of that
directory" (paper §2.5).  Directory references are stored as stable UIDs
from the global directory map, never as raw paths, so renames cannot break
queries; ``to_text`` renders them back through the map.

Nodes are immutable and hashable; ``children`` lists are tuples.  Each node
serialises to plain dict/list primitives (``to_obj``/``from_obj``) for the
MetaStore.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple


class Node:
    """Base class for query AST nodes."""

    __slots__ = ()

    def terms(self) -> Iterator[str]:
        """Every content word mentioned (for index lookups)."""
        return iter(())

    def dir_refs(self) -> Iterator[int]:
        """Every directory UID referenced."""
        return iter(())

    def to_obj(self):
        raise NotImplementedError

    def to_text(self, path_of_uid: Optional[Callable[[int], str]] = None) -> str:
        """Render back to query-language text."""
        raise NotImplementedError

    # structural equality/hashing provided by subclasses via _key()

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other):
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self):
        return hash((type(self).__name__,) + self._key())

    def __repr__(self):
        return self.to_text(lambda uid: f"<dir:{uid}>")


class MatchAll(Node):
    """Matches every document in scope (the empty query)."""

    __slots__ = ()

    def to_obj(self):
        return {"op": "all"}

    def to_text(self, path_of_uid=None) -> str:
        return "*"

    def _key(self):
        return ()


class Term(Node):
    """A single word must appear in the document."""

    __slots__ = ("word",)

    def __init__(self, word: str):
        object.__setattr__(self, "word", word.lower())

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("Term is immutable")

    def terms(self):
        yield self.word

    def to_obj(self):
        return {"op": "term", "word": self.word}

    def to_text(self, path_of_uid=None) -> str:
        return self.word

    def _key(self):
        return (self.word,)


class Approx(Node):
    """A word must appear within edit distance ``k`` (agrep's ``word~k``)."""

    __slots__ = ("word", "k")

    def __init__(self, word: str, k: int):
        if k < 1:
            raise ValueError("approximate distance must be >= 1")
        object.__setattr__(self, "word", word.lower())
        object.__setattr__(self, "k", int(k))

    def __setattr__(self, name, value):
        raise AttributeError("Approx is immutable")

    def terms(self):
        # the index cannot help with approximate terms; evaluator treats the
        # word as a scan-only predicate, so no exact-index terms are exposed.
        return iter(())

    def to_obj(self):
        return {"op": "approx", "word": self.word, "k": self.k}

    def to_text(self, path_of_uid=None) -> str:
        return f"{self.word}~{self.k}"

    def _key(self):
        return (self.word, self.k)


class FieldTerm(Node):
    """An attribute/value pair must hold for the document (``from:alice``).

    This is the SFS query model hosted inside HAC's language (an extension:
    the paper argues its CBA API can host attribute-based mechanisms like
    SFS; this node is that claim made concrete).  Attributes come from a
    *transducer* configured on the engine; a document with no transducer
    output never matches a field term.
    """

    __slots__ = ("field", "value")

    def __init__(self, field: str, value: str):
        object.__setattr__(self, "field", field.lower())
        object.__setattr__(self, "value", value.lower())

    def __setattr__(self, name, value):
        raise AttributeError("FieldTerm is immutable")

    def terms(self):
        # indexed under a colon-joined token that plain words can never be
        yield f"{self.field}:{self.value}"

    def to_obj(self):
        return {"op": "field", "field": self.field, "value": self.value}

    def to_text(self, path_of_uid=None) -> str:
        return f"{self.field}:{self.value}"

    def _key(self):
        return (self.field, self.value)


class Phrase(Node):
    """Words must appear adjacently, in order."""

    __slots__ = ("words",)

    def __init__(self, words: Sequence[str]):
        if not words:
            raise ValueError("empty phrase")
        object.__setattr__(self, "words", tuple(w.lower() for w in words))

    def __setattr__(self, name, value):
        raise AttributeError("Phrase is immutable")

    def terms(self):
        return iter(self.words)

    def to_obj(self):
        return {"op": "phrase", "words": list(self.words)}

    def to_text(self, path_of_uid=None) -> str:
        return '"' + " ".join(self.words) + '"'

    def _key(self):
        return (self.words,)


class ScopeTerm(Node):
    """The document's registered path must lie at-or-below a prefix
    (``scope:/projects/mail``) — the path dimension as a first-class
    query predicate, answered by the CAS index when one is attached.

    Unlike :class:`DirRef` (which names a *directory's stored result*),
    a scope term names a *subtree of the hierarchy*: it matches every
    indexed document whose path is under the prefix, independent of any
    semantic directory's query.
    """

    __slots__ = ("prefix",)

    def __init__(self, prefix: str):
        from repro.util import pathutil
        object.__setattr__(self, "prefix", pathutil.normalize(prefix))

    def __setattr__(self, name, value):
        raise AttributeError("ScopeTerm is immutable")

    def to_obj(self):
        return {"op": "scope", "prefix": self.prefix}

    def to_text(self, path_of_uid=None) -> str:
        return f"scope:{self.prefix}"

    def _key(self):
        return (self.prefix,)


def scoped(node: Node, prefix: str) -> Node:
    """*node* restricted to the subtree at *prefix* — the programmatic
    form of writing ``scope:<prefix> AND <query>``.

    The tenant facade builds every query this way, so one shared index
    answers per-tenant searches from its CAS prefix partitions.  A node
    already scoped at-or-below *prefix* is returned unchanged (the
    narrower scope subsumes the wider one).
    """
    from repro.util import pathutil

    term = ScopeTerm(prefix)
    if isinstance(node, ScopeTerm) and \
            pathutil.is_ancestor(term.prefix, node.prefix, strict=False):
        return node
    if isinstance(node, MatchAll):
        return term
    return And([term, node])


class DirRef(Node):
    """The stored query-result of another directory, by UID."""

    __slots__ = ("uid",)

    def __init__(self, uid: int):
        object.__setattr__(self, "uid", int(uid))

    def __setattr__(self, name, value):
        raise AttributeError("DirRef is immutable")

    def dir_refs(self):
        yield self.uid

    def to_obj(self):
        return {"op": "dir", "uid": self.uid}

    def to_text(self, path_of_uid=None) -> str:
        if path_of_uid is None:
            return f"<dir:{self.uid}>"
        path = path_of_uid(self.uid)
        return path if path is not None else f"<dir:{self.uid}>"

    def _key(self):
        return (self.uid,)


class _Compound(Node):
    """Shared machinery for AND/OR."""

    __slots__ = ("children",)
    _opname = "?"

    def __init__(self, children: Sequence[Node]):
        flat: List[Node] = []
        for child in children:
            if type(child) is type(self):
                flat.extend(child.children)  # type: ignore[attr-defined]
            else:
                flat.append(child)
        if len(flat) < 2:
            raise ValueError(f"{type(self).__name__} needs at least two operands")
        object.__setattr__(self, "children", tuple(flat))

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def terms(self):
        for child in self.children:
            yield from child.terms()

    def dir_refs(self):
        for child in self.children:
            yield from child.dir_refs()

    def to_obj(self):
        return {"op": self._opname, "children": [c.to_obj() for c in self.children]}

    def to_text(self, path_of_uid=None) -> str:
        parts = []
        for child in self.children:
            text = child.to_text(path_of_uid)
            if isinstance(child, _Compound) and type(child) is not type(self):
                text = f"({text})"
            parts.append(text)
        return f" {self._opname.upper()} ".join(parts)

    def _key(self):
        return (self.children,)


class And(_Compound):
    """Every operand must match."""

    __slots__ = ()
    _opname = "and"


class Or(_Compound):
    """At least one operand must match."""

    __slots__ = ()
    _opname = "or"


class Not(Node):
    """The operand must not match (evaluated relative to the scope)."""

    __slots__ = ("child",)

    def __init__(self, child: Node):
        object.__setattr__(self, "child", child)

    def __setattr__(self, name, value):
        raise AttributeError("Not is immutable")

    def terms(self):
        return self.child.terms()

    def dir_refs(self):
        return self.child.dir_refs()

    def to_obj(self):
        return {"op": "not", "child": self.child.to_obj()}

    def to_text(self, path_of_uid=None) -> str:
        text = self.child.to_text(path_of_uid)
        if isinstance(self.child, (_Compound, Not)):
            text = f"({text})"
        return f"NOT {text}"

    def _key(self):
        return (self.child,)


def from_obj(obj) -> Node:
    """Inverse of ``Node.to_obj`` (MetaStore deserialisation)."""
    op = obj["op"]
    if op == "all":
        return MatchAll()
    if op == "term":
        return Term(obj["word"])
    if op == "field":
        return FieldTerm(obj["field"], obj["value"])
    if op == "approx":
        return Approx(obj["word"], obj["k"])
    if op == "phrase":
        return Phrase(obj["words"])
    if op == "scope":
        return ScopeTerm(obj["prefix"])
    if op == "dir":
        return DirRef(obj["uid"])
    if op == "and":
        return And([from_obj(c) for c in obj["children"]])
    if op == "or":
        return Or([from_obj(c) for c in obj["children"]])
    if op == "not":
        return Not(from_obj(obj["child"]))
    raise ValueError(f"unknown query op: {op!r}")


def has_field_terms(node: Node) -> bool:
    """True when the subtree contains any attribute/value predicate."""
    if isinstance(node, FieldTerm):
        return True
    if isinstance(node, _Compound):
        return any(has_field_terms(c) for c in node.children)
    if isinstance(node, Not):
        return has_field_terms(node.child)
    return False


def has_scope_terms(node: Node) -> bool:
    """True when the subtree contains any subtree-scope predicate."""
    if isinstance(node, ScopeTerm):
        return True
    if isinstance(node, _Compound):
        return any(has_scope_terms(c) for c in node.children)
    if isinstance(node, Not):
        return has_scope_terms(node.child)
    return False


def required_scope_prefixes(node: Node) -> List[str]:
    """Scope prefixes every match must satisfy: scope terms sitting on
    the top-level ``And`` spine (or the node itself).  Terms under
    ``Or``/``Not`` are not required and are excluded — the CAS index may
    prune scan candidates only by the required ones.
    """
    if isinstance(node, ScopeTerm):
        return [node.prefix]
    if isinstance(node, And):
        return [c.prefix for c in node.children if isinstance(c, ScopeTerm)]
    return []


def conjoin(left: Optional[Node], right: Optional[Node]) -> Node:
    """AND two optional queries, treating None/MatchAll as neutral.

    This is how HAC builds a child semantic directory's *effective* query:
    ``conjoin(user_query, DirRef(parent_uid))`` — the paper's "<old query>
    AND <path-name of parent>" rewriting.
    """
    lhs = None if left is None or isinstance(left, MatchAll) else left
    rhs = None if right is None or isinstance(right, MatchAll) else right
    if lhs is None and rhs is None:
        return MatchAll()
    if lhs is None:
        return rhs  # type: ignore[return-value]
    if rhs is None:
        return lhs
    return And([lhs, rhs])


def content_projection(node: Node) -> Node:
    """The content-only part of a query, for forwarding to remote name
    spaces (whose query language knows nothing of the local hierarchy).

    Directory references are replaced by MatchAll and the result is
    simplified; a reference under NOT also projects to MatchAll (no remote
    restriction) — the local evaluator still applies the reference exactly.
    """
    if isinstance(node, (DirRef, ScopeTerm)):
        # scope prefixes, like directory references, are meaningless to a
        # remote name space's flat content index
        return MatchAll()
    if isinstance(node, And):
        kept = [content_projection(c) for c in node.children]
        kept = [c for c in kept if not isinstance(c, MatchAll)]
        if not kept:
            return MatchAll()
        if len(kept) == 1:
            return kept[0]
        return And(kept)
    if isinstance(node, Or):
        projected = [content_projection(c) for c in node.children]
        if any(isinstance(c, MatchAll) for c in projected):
            return MatchAll()
        return Or(projected)
    if isinstance(node, Not):
        child = content_projection(node.child)
        if isinstance(child, MatchAll):
            return MatchAll()
        return Not(child)
    return node


def rewrite_dir_refs(node: Node, mapping) -> Node:
    """Return a copy of *node* with DirRef uids translated via *mapping*
    (a dict or callable); used when importing shared queries."""
    translate = mapping if callable(mapping) else mapping.__getitem__
    if isinstance(node, DirRef):
        return DirRef(translate(node.uid))
    if isinstance(node, And):
        return And([rewrite_dir_refs(c, mapping) for c in node.children])
    if isinstance(node, Or):
        return Or([rewrite_dir_refs(c, mapping) for c in node.children])
    if isinstance(node, Not):
        return Not(rewrite_dir_refs(node.child, mapping))
    return node
