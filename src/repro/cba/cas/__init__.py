"""Content-and-Structure (CAS) index: the path dimension interleaved
with the term dimension.

Per "Robust and Scalable Content-and-Structure Indexing" (Wellenzohn et
al.), subtree-scoped queries (``scope:/projects/mail AND fingerprint``)
should prune on *where* and *what* in one probe instead of evaluating
content globally and filtering by path afterwards.  :class:`CASIndex`
is that structure: documents are grouped into prefix partitions keyed
by directory prefixes of their registered paths, and each partition
interleaves a term → member-bitmap posting map, so a scoped probe
touches only the partitions whose roots intersect the scope prefix.

Like the PR 8 path map, the CAS index is an **accelerator, never an
authority**: the engine's document registry remains the source of truth
for paths, and every CAS answer is exact with respect to it (the
equivalence suite referees this bit-for-bit against scan-and-filter).
"""

from repro.cba.cas.index import CASIndex, SPLIT_THRESHOLD

__all__ = ["CASIndex", "SPLIT_THRESHOLD"]
