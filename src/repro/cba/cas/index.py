"""Dynamically-interleaved path+term index with robust prefix partitioning.

The structure
-------------

Documents are grouped into **prefix partitions**.  Each partition owns

* a *root*: a normalized directory prefix (the root partition's is ``/``),
* a member bitmap of doc ids, and
* an interleaved posting map ``term → member-bitmap`` — the content
  dimension restricted to this slice of the path dimension.

A document is inserted into the deepest existing partition whose root is
an ancestor-or-equal of its parent directory.  When a partition
overflows (:data:`SPLIT_THRESHOLD` members) it *splits* by promoting the
child-directory prefixes one component below its root to new partition
roots — the adaptive refinement that keeps skewed trees from
degenerating into one giant partition (cf. the robust node-splitting of
Wellenzohn et al.).  Documents sitting directly in the root stay put, so
a flat million-file directory simply remains one partition — no worse
than the global index, never pathological.

The correctness invariant is deliberately weaker than "deepest root":

    **containment** — every member's path lies strictly below its
    partition's root.

Containment is what :meth:`docs_under` and :meth:`probe` rely on, and it
is preserved by splits *and* by one-pass prefix rebases (a rename can
leave a doc in a shallower partition than a fresh insert would pick —
that costs precision on future probes, never correctness).  Under it,
a probe for scope prefix ``P`` decomposes exactly:

* partitions whose root is below-or-equal ``P`` contribute **wholesale**
  (every member is under ``P``),
* partitions whose root is a strict ancestor of ``P`` are **residual**:
  members are filtered per-doc against the registered path,
* partitions whose root is incomparable with ``P`` are skipped — no
  member can be under ``P`` (both ``P`` and the root would have to be
  ancestors of that member, which makes them comparable).

Renames
-------

Directory renames rebase the path dimension in the same one-pass sweep
PR 8's :meth:`~repro.vfs.pathmap.PathMap.rebase_prefix` performs on the
path map: partition roots under the old prefix move to their new keys,
member paths are rewritten, and the generation counter is bumped — no
per-document re-insertion, no re-tokenisation.  ``hacfsck`` cross-checks
the rebased paths against the engine registry (``cas-divergence``) to
catch a missed rebase.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.util import pathutil
from repro.util.bitmap import Bitmap
from repro.util.stats import Counters

#: members a partition may hold before it tries to split
SPLIT_THRESHOLD = 32


class _Partition:
    """One slice of the path dimension: a root prefix, its members, and
    the term postings interleaved over exactly those members."""

    __slots__ = ("root", "members", "postings", "next_split_at")

    def __init__(self, root: str):
        self.root = root
        self.members = Bitmap()
        self.postings: Dict[str, Bitmap] = {}
        self.next_split_at = SPLIT_THRESHOLD

    def add(self, doc_id: int, terms: Iterable[str]) -> None:
        self.members.add(doc_id)
        for term in terms:
            bm = self.postings.get(term)
            if bm is None:
                bm = self.postings[term] = Bitmap()
            bm.add(doc_id)

    def remove(self, doc_id: int, terms: Iterable[str]) -> None:
        self.members.discard(doc_id)
        for term in terms:
            bm = self.postings.get(term)
            if bm is not None:
                bm.discard(doc_id)
                if not bm:
                    del self.postings[term]

    def absorb(self, other: "_Partition") -> None:
        """Merge *other*'s members into this partition (root collisions
        after a rename-onto-existing-prefix rebase)."""
        self.members |= other.members
        for term, bm in other.postings.items():
            mine = self.postings.get(term)
            if mine is None:
                self.postings[term] = bm.copy()
            else:
                mine |= bm


class CASIndex:
    """Interleaved path+term index over the engine's registered documents.

    All paths handed in are expected normalized (the engine registry
    stores normalized paths); prefixes arriving from query text are
    normalized here.
    """

    def __init__(self, counters: Optional[Counters] = None):
        #: partition root → partition; the root partition always exists
        self._roots: Dict[str, _Partition] = {pathutil.ROOT: _Partition(pathutil.ROOT)}
        #: doc id → (registered path, owning partition root, term tuple)
        self._docs: Dict[int, Tuple[str, str, Tuple[str, ...]]] = {}
        #: bumped once per rebase event, mirroring the path map
        self.generation = 0
        counters = counters if counters is not None else Counters()
        self._stats = counters.scoped("cas")

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def upsert(self, doc_id: int, path: str, terms: Iterable[str]) -> None:
        """Insert or replace *doc_id* at *path* with its index terms."""
        if doc_id in self._docs:
            self.remove(doc_id)
        terms = tuple(terms)
        # lenient: foreign back-ends register bare names as paths; they
        # live directly under the root partition
        path = pathutil.canonical(path)
        root = self._assign_root(pathutil.dirname(path))
        part = self._roots[root]
        part.add(doc_id, terms)
        self._docs[doc_id] = (path, root, terms)
        self._stats.add("upserts")
        if len(part.members) >= part.next_split_at:
            self._split(part)

    def remove(self, doc_id: int) -> None:
        entry = self._docs.pop(doc_id, None)
        if entry is None:
            return
        _path, root, terms = entry
        part = self._roots.get(root)
        if part is not None:
            part.remove(doc_id, terms)
            if root != pathutil.ROOT and not part.members:
                del self._roots[root]
        self._stats.add("removes")

    def set_path(self, doc_id: int, path: str) -> None:
        """A single document moved; re-home it under its new parent."""
        entry = self._docs.get(doc_id)
        if entry is None:
            return
        _old, _root, terms = entry
        self.remove(doc_id)
        self.upsert(doc_id, path, terms)

    def rebase_prefix(self, old: str, new: str) -> int:
        """One-pass rebase after a directory rename: every member path
        and partition root under *old* moves to its *new*-prefixed key.
        Returns documents moved.  Partitions rooted at-or-below *old*
        shift wholesale (roots and member paths move by the same prefix
        substitution, so containment is untouched); members held
        *residually* by a shallower partition are re-homed afterwards
        when their root no longer contains the rebased path — without
        that sweep a probe would skip them as unreachable."""
        self.generation += 1
        old = pathutil.normalize(old)
        new = pathutil.normalize(new)
        prefix = (old if old == pathutil.ROOT else old + pathutil.SEP)
        moved = 0
        moved_ids: List[int] = []
        for doc_id, (path, root, terms) in list(self._docs.items()):
            if path == old or path.startswith(prefix):
                self._docs[doc_id] = (pathutil.rebase(path, old, new), root,
                                      terms)
                moved += 1
                moved_ids.append(doc_id)
        renames: List[Tuple[str, str]] = []
        for root in self._roots:
            if root == old or root.startswith(prefix):
                renames.append((root, pathutil.rebase(root, old, new)))
        for root, target in renames:
            part = self._roots.pop(root)
            part.root = target
            existing = self._roots.get(target)
            if existing is not None:
                existing.absorb(part)
                for doc_id in part.members:
                    path, _r, terms = self._docs[doc_id]
                    self._docs[doc_id] = (path, target, terms)
            else:
                self._roots[target] = part
                for doc_id in part.members:
                    path, _r, terms = self._docs[doc_id]
                    self._docs[doc_id] = (path, target, terms)
        for doc_id in moved_ids:
            path, root, terms = self._docs[doc_id]
            if pathutil.is_ancestor(root, path, strict=False):
                continue  # containment survived the substitution
            part = self._roots.get(root)
            if part is not None:
                part.remove(doc_id, terms)
                if root != pathutil.ROOT and not part.members:
                    del self._roots[root]
            target = self._assign_root(pathutil.dirname(path))
            home = self._roots[target]
            home.add(doc_id, terms)
            self._docs[doc_id] = (path, target, terms)
            self._stats.add("rehomed")
            if len(home.members) >= home.next_split_at:
                self._split(home)
        self._stats.add("rebased", moved)
        return moved

    def clear(self) -> None:
        self._roots = {pathutil.ROOT: _Partition(pathutil.ROOT)}
        self._docs.clear()
        self.generation += 1

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------

    def docs_under(self, prefix: str) -> Bitmap:
        """Every indexed document whose registered path is at-or-below
        *prefix* — the path dimension alone."""
        return self._gather(prefix, None)

    def probe(self, prefix: str, term: str) -> Bitmap:
        """Documents under *prefix* containing *term* — both dimensions
        pruned in one pass over the intersecting partitions."""
        return self._gather(prefix, term)

    def count_under(self, prefix: str) -> int:
        """Selectivity of the path dimension (exact; used by the planner
        to cost CAS probes against postings)."""
        return len(self.docs_under(prefix))

    def _gather(self, prefix: str, term: Optional[str]) -> Bitmap:
        prefix = pathutil.normalize(prefix)
        self._stats.add("probes")
        out = Bitmap()
        for root, part in self._roots.items():
            source = (part.members if term is None
                      else part.postings.get(term))
            if source is None or not source:
                continue
            if pathutil.is_ancestor(prefix, root, strict=False):
                out |= source             # wholesale: containment
            elif pathutil.is_ancestor(root, prefix, strict=True):
                for doc_id in source:     # residual: filter by path
                    self._stats.add("residual_checks")
                    if pathutil.is_ancestor(prefix, self._docs[doc_id][0],
                                            strict=False):
                        out.add(doc_id)
        return out

    # ------------------------------------------------------------------
    # introspection (fsck, tests, hacstat)
    # ------------------------------------------------------------------

    def path_of(self, doc_id: int) -> Optional[str]:
        entry = self._docs.get(doc_id)
        return None if entry is None else entry[0]

    def root_of(self, doc_id: int) -> Optional[str]:
        entry = self._docs.get(doc_id)
        return None if entry is None else entry[1]

    def doc_ids(self) -> List[int]:
        return list(self._docs)

    def roots(self) -> List[str]:
        return sorted(self._roots)

    def __len__(self) -> int:
        return len(self._docs)

    def __repr__(self):
        return (f"CASIndex(docs={len(self._docs)}, "
                f"partitions={len(self._roots)}, "
                f"generation={self.generation})")

    # ------------------------------------------------------------------
    # partitioning internals
    # ------------------------------------------------------------------

    def _assign_root(self, parent: str) -> str:
        """Deepest existing partition root that is an ancestor-or-equal
        of *parent* (the root partition guarantees one exists)."""
        best = pathutil.ROOT
        for root in self._roots:
            if len(root) > len(best) and \
                    pathutil.is_ancestor(root, parent, strict=False):
                best = root
        return best

    def _split(self, part: _Partition) -> None:
        """Promote child-directory prefixes of an overflowing partition
        to partition roots of their own.  Members whose parent *is* the
        root stay; if nothing can move (a genuinely flat directory) the
        next attempt is deferred until the partition doubles."""
        groups: Dict[str, List[int]] = {}
        for doc_id in part.members:
            path = self._docs[doc_id][0]
            rel = pathutil.relative_to(path, part.root)
            comps = rel.split(pathutil.SEP)
            if len(comps) > 1:  # parent strictly below the root
                child = pathutil.join(part.root, comps[0])
                groups.setdefault(child, []).append(doc_id)
        moved_any = False
        for child, doc_ids in groups.items():
            if child in self._roots:
                target = self._roots[child]
            else:
                target = self._roots[child] = _Partition(child)
            for doc_id in doc_ids:
                path, _root, terms = self._docs[doc_id]
                part.remove(doc_id, terms)
                target.add(doc_id, terms)
                self._docs[doc_id] = (path, child, terms)
            moved_any = True
            self._stats.add("splits")
            if len(target.members) >= target.next_split_at:
                self._split(target)
        if moved_any and len(part.members) < SPLIT_THRESHOLD:
            part.next_split_at = SPLIT_THRESHOLD
        else:
            part.next_split_at = max(SPLIT_THRESHOLD,
                                     2 * max(len(part.members), 1))
