"""Immutable published snapshots: the read side of the serving tier.

PR 5's batched maintenance keeps queries consistent with a *pre-query
barrier* — every read first drains the pending batch.  That couples read
latency to write volume: at mail-arrival rate, a query's p99 is the cost
of whoever's batch it happened to flush.  This module decouples them with
the classic publish discipline (compare the index-reconstruction designs
in PAPERS.md): the primary engine keeps mutating, and queries are served
from an immutable **published snapshot** — the engine state as of the last
:meth:`~repro.cba.engine.CBAEngine.publish`, which the scheduler calls
once per drained batch.

A snapshot is materialised as a :class:`ReadReplica`: a full private
:class:`~repro.cba.engine.CBAEngine` (same block count, same fast path)
over a replica-local text store, so snapshot reads touch **no shared
state at all** — no scheduler drain, no live-tree loader, no device
charges against the primary.  Replicas catch up by replaying the
primary's :class:`~repro.cba.engine.IndexOp` log:

* **No re-tokenisation.**  Ops ship the term set the primary computed, so
  replica catch-up never runs the tokenizer (``engine.tokenisations``
  stays a pure write-side cost, which the Ablation K guards rely on).
* **Frozen text.**  Ops ship the document text the primary indexed; the
  replica engine's loader reads it from the replica's own dict.  A scan
  on the snapshot path therefore verifies against the text *as of the
  publish*, even while the live file is being rewritten.
* **Ops are ground truth.**  The log records mutations the primary
  *actually performed* (emitted after the index change lands), so replay
  converges even across a failed-and-retried batch: the scheduler's
  reconciliation re-derives idempotent ops, and the replica applies the
  same sequence the primary did.

Replicas attach lazily: an engine with no replicas buffers nothing and
:meth:`~repro.cba.engine.CBAEngine.publish` is a version bump — eager
mode publishes on every drain without paying anything for it.  A
replica's ``lag`` knob makes it skip publishes (the freshness-injection
control the cluster's routing tests use); a lagged replica's cursor into
the shared op log is preserved, so catch-up replays everything it missed.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.util.bitmap import Bitmap
from repro.util.stats import Counters
from repro.cba.engine import CBAEngine, Document, IndexOp
from repro.cba.glimpse import GlimpseIndex

__all__ = ["IndexOp", "ReadReplica"]


class ReadReplica:
    """One immutable-until-published serving copy of a primary engine.

    The replica owns a private :class:`CBAEngine` (and private
    :class:`Counters` — replica reads never pollute the primary's
    deterministic write-side counters) whose loader resolves document
    text from :attr:`_texts`, the replica-local store frozen at each
    publish.  Query callers treat the replica like an engine: it forwards
    the read surface (``search``/``search_blocks``/``all_docs``/
    ``doc_by_id``/``estimate_docs``) plus the attributes the evaluator
    and planner touch (``fast_path``, ``index``, ``counters``).
    """

    def __init__(self, replica_id: str, primary: CBAEngine):
        self.replica_id = replica_id
        self.counters = Counters()
        self._texts: Dict[Hashable, str] = {}
        self.engine = CBAEngine(loader=self._load,
                                num_blocks=primary.num_blocks,
                                min_term_length=primary.min_term_length,
                                stopwords=primary.stopwords,
                                transducer=primary.transducer,
                                cache_size=0,  # snapshots are short-lived
                                counters=self.counters,
                                fast_path=primary.fast_path,
                                cas=primary.cas is not None)
        #: last published version this replica has applied
        self.version = 0
        #: index into the primary's shared op log (ops before it are applied)
        self.cursor = 0
        #: publishes to skip (staleness injection; catch-up replays them)
        self.lag = 0
        self._stats = self.counters.scoped("replica")

    # ------------------------------------------------------------------
    # hydration and catch-up (called by the primary's publish machinery)
    # ------------------------------------------------------------------

    def _load(self, key: Hashable) -> str:
        return self._texts.get(key, "")

    def hydrate(self, primary: CBAEngine, version: int) -> None:
        """Bootstrap from the primary's current state.

        The index travels as its ``to_obj`` primitives and the registry
        dicts are copied directly (``Document`` rows are immutable), so
        hydration never re-tokenises; text is read once through the
        primary's loader — the only moment a replica touches the live
        tree, and the same text an eager scan would have read right now.
        """
        engine = self.engine
        engine.index = GlimpseIndex.from_obj(
            primary.index.to_obj(), counters=self.counters,
            track_doc_postings=primary.fast_path)
        engine.index.scope_counter = engine.scope_count
        engine._docs = dict(primary._docs)
        engine._by_key = dict(primary._by_key)
        engine._next_doc_id = primary._next_doc_id
        # the CAS index is derived (registry x term sets); rebuild it
        # from the copied state rather than shipping it
        engine.rebuild_cas()
        self._texts = {doc.key: primary.loader(doc.key)
                       for doc in primary._docs.values()}
        self.version = version
        self._stats.add("hydrations")
        self._stats.add("hydrated_docs", len(engine._docs))

    def apply(self, ops: List[IndexOp], upto: int, version: int) -> int:
        """Replay ``ops[self.cursor:upto]`` and stamp *version*.

        Replay is direct index manipulation — shipped term sets, no
        tokenizer, no loader — mirroring exactly what the primary's
        mutation methods did (including the block-exact cache/memo
        invalidation via ``_note_mutation``).  Returns ops applied.
        """
        engine = self.engine
        applied = 0
        for op in ops[self.cursor:upto]:
            if op.kind == "index":
                grew = engine.index.add(op.doc_id, op.terms)
                engine._docs[op.doc_id] = Document(
                    op.doc_id, op.key, op.path, op.mtime,
                    len(op.text or ""))
                engine._by_key[op.key] = op.doc_id
                engine._next_doc_id = max(engine._next_doc_id, op.doc_id + 1)
                if engine.cas is not None:
                    engine.cas.upsert(op.doc_id, op.path, op.terms)
                engine._note_mutation(op.doc_id, grew)
                self._texts[op.key] = op.text or ""
            elif op.kind == "update":
                grew = engine.index.update(op.doc_id, op.terms)
                engine._docs[op.doc_id] = Document(
                    op.doc_id, op.key, op.path, op.mtime,
                    len(op.text or ""))
                if engine.cas is not None:
                    engine.cas.upsert(op.doc_id, op.path, op.terms)
                engine._note_mutation(op.doc_id, grew)
                self._texts[op.key] = op.text or ""
            elif op.kind == "remove":
                engine._by_key.pop(op.key, None)
                engine._docs.pop(op.doc_id, None)
                engine.index.remove(op.doc_id)
                if engine.cas is not None:
                    engine.cas.remove(op.doc_id)
                engine._note_mutation(op.doc_id, grew=False)
                self._texts.pop(op.key, None)
            elif op.kind == "rename":
                doc = engine._docs.get(op.doc_id)
                if doc is not None:
                    engine._docs[op.doc_id] = doc._replace(path=op.path)
                    if engine.cas is not None:
                        engine.cas.set_path(op.doc_id, op.path)
                    engine._purge_memo(op.doc_id)
                    engine._purge_scope_cache()
            else:  # pragma: no cover - emission is closed over four kinds
                raise ValueError(f"unknown index op kind: {op.kind!r}")
            applied += 1
        self.cursor = upto
        self.version = version
        self._stats.add("ops_applied", applied)
        return applied

    def apply_segments(self, log, upto: int, version: int) -> int:
        """Catch up from ``log[self.cursor:upto]`` frozen segments.

        The segmented handoff: instead of replaying per-op deltas, the
        segments' rows are folded newest-wins per document key and only
        each document's *final* state is applied — an index state is a
        pure function of the current per-document term sets, so the
        coalesced apply converges to exactly what replay would have
        built, in one index mutation per touched document.  Returns rows
        applied.
        """
        from repro.cba.segments import _coalesce

        engine = self.engine
        final = {}
        for seg in log[self.cursor:upto]:
            for row in seg.rows:
                final[row.key] = _coalesce(final.get(row.key), row)
        applied = 0
        for key, row in final.items():
            if row.kind == "upsert":
                old_id = engine._by_key.get(key)
                if old_id is not None and old_id != row.doc_id:
                    # tombstone + revival coalesced across the window:
                    # retire the old incarnation before adding the new
                    engine._docs.pop(old_id, None)
                    engine.index.remove(old_id)
                    if engine.cas is not None:
                        engine.cas.remove(old_id)
                    engine._note_mutation(old_id, grew=False)
                if row.doc_id in engine.index:
                    grew = engine.index.update(row.doc_id, row.terms)
                else:
                    grew = engine.index.add(row.doc_id, row.terms)
                engine._docs[row.doc_id] = Document(
                    row.doc_id, key, row.path, row.mtime, row.size)
                engine._by_key[key] = row.doc_id
                engine._next_doc_id = max(engine._next_doc_id,
                                          row.doc_id + 1)
                if engine.cas is not None:
                    engine.cas.upsert(row.doc_id, row.path, row.terms)
                engine._note_mutation(row.doc_id, grew)
                self._texts[key] = row.text or ""
            elif row.kind == "remove":
                old_id = engine._by_key.pop(key, None)
                if old_id is not None:
                    engine._docs.pop(old_id, None)
                    engine.index.remove(old_id)
                    if engine.cas is not None:
                        engine.cas.remove(old_id)
                    engine._note_mutation(old_id, grew=False)
                self._texts.pop(key, None)
            else:  # a rename whose upsert predates this window
                doc_id = engine._by_key.get(key)
                if doc_id is not None:
                    engine._docs[doc_id] = \
                        engine._docs[doc_id]._replace(path=row.path)
                    if engine.cas is not None:
                        engine.cas.set_path(doc_id, row.path)
                    engine._purge_memo(doc_id)
                    engine._purge_scope_cache()
            applied += 1
        self.cursor = upto
        self.version = version
        self._stats.add("segment_rows_applied", applied)
        return applied

    # ------------------------------------------------------------------
    # the read surface (what the evaluator / shell / bench touch)
    # ------------------------------------------------------------------

    @property
    def fast_path(self) -> bool:
        return self.engine.fast_path

    @property
    def index(self):
        return self.engine.index

    def search(self, query, scope: Optional[Bitmap] = None) -> Bitmap:
        return self.engine.search(query, scope)

    def search_blocks(self, query, blocks: Bitmap,
                      scope: Optional[Bitmap] = None) -> Bitmap:
        return self.engine.search_blocks(query, blocks, scope)

    def estimate_docs(self, node) -> int:
        return self.engine.estimate_docs(node)

    def scope_docs(self, prefix: str) -> Bitmap:
        return self.engine.scope_docs(prefix)

    def scope_count(self, prefix: str) -> int:
        return self.engine.scope_count(prefix)

    def all_docs(self) -> Bitmap:
        return self.engine.all_docs()

    def doc_by_id(self, doc_id: int) -> Optional[Document]:
        return self.engine.doc_by_id(doc_id)

    def doc_by_key(self, key: Hashable) -> Optional[Document]:
        return self.engine.doc_by_key(key)

    def __len__(self) -> int:
        return len(self.engine)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.engine

    def __repr__(self) -> str:
        return (f"ReadReplica({self.replica_id!r}, version={self.version}, "
                f"docs={len(self.engine)})")
