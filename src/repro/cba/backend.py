"""The formal SearchBackend protocol — HAC's CBA seam, written down.

The paper argues its content-based access API is general enough to host
any search system (§2.2).  Until now that generality was informal: HAC
talked to "anything shaped like a CBAEngine" and probed optional surface
with ``hasattr``.  This module makes the contract explicit — a
:class:`typing.Protocol` that the monolithic
:class:`~repro.cba.engine.CBAEngine`, the
:class:`~repro.cluster.ShardedSearchCluster`, and the
:class:`~repro.remote.searchsvc.SimulatedSearchService` all satisfy — so
``HacFileSystem`` and friends can type against one name and drop the
ad-hoc sniffing.

Two method families beyond the obvious maintenance/query core deserve a
note:

* **Doc-id reservation** (:meth:`SearchBackend.reserve_doc_id`).  Block
  assignment is ``doc_id % num_blocks``, so query answers depend on the
  ids documents received.  The batched maintenance pipeline reserves ids
  at *enqueue* time and pins them at apply time, which is what keeps a
  coalesced batch bit-identical to the eager sequence it replaced.

* **Degradation surface** (:meth:`SearchBackend.shard_of`,
  :meth:`SearchBackend.reset_missing_shards`, :meth:`SearchBackend.health`).
  A monolithic engine has no shards, so its implementations are trivial
  (``None`` / empty) — but having them lets the consistency cascade and
  the shell run one unconditional code path against either back-end.
"""

from __future__ import annotations

from typing import (Dict, Hashable, Iterable, List, Optional, Protocol, Set,
                    Tuple, runtime_checkable)

from repro.util.bitmap import Bitmap
from repro.cba.incremental import ReindexPlan
from repro.cba.queryast import Node


@runtime_checkable
class SearchBackend(Protocol):
    """What HAC requires of a content-search back-end.

    ``isinstance(obj, SearchBackend)`` checks method *presence* (a
    :func:`typing.runtime_checkable` protocol cannot check signatures);
    the equivalence property suites check behaviour.
    """

    # -- maintenance ---------------------------------------------------------

    def index_document(self, key: Hashable, path: str, mtime: float,
                       text: Optional[str] = None,
                       doc_id: Optional[int] = None) -> int:
        """Add a new document; *doc_id* pins a previously reserved id."""

    def remove_document(self, key: Hashable) -> int:
        """Withdraw a document; returns the freed doc id."""

    def update_document(self, key: Hashable, path: str, mtime: float,
                        text: Optional[str] = None) -> int:
        """Re-tokenise a changed document in place (doc id preserved)."""

    def rename_document(self, key: Hashable, new_path: str) -> None:
        """Update the display path without re-tokenising."""

    def reindex(self, current: Iterable[Tuple[Hashable, str, float]],
                previous: Optional[Dict[Hashable, float]] = None
                ) -> ReindexPlan:
        """Bring the index in line with *current* ``(key, path, mtime)``."""

    def reserve_doc_id(self) -> int:
        """Claim the next doc id now, for a later pinned ``index_document``."""

    # -- registry ------------------------------------------------------------

    def doc_by_id(self, doc_id: int): ...

    def doc_by_key(self, key: Hashable): ...

    def doc_id_of(self, key: Hashable) -> Optional[int]: ...

    def all_docs(self) -> Bitmap: ...

    def mtime_snapshot(self) -> Dict[Hashable, float]: ...

    def __contains__(self, key: Hashable) -> bool: ...

    def __len__(self) -> int: ...

    # -- queries -------------------------------------------------------------

    def search(self, query: Node, scope: Optional[Bitmap] = None) -> Bitmap:
        """Evaluate a content-only query over an optional scope bitmap."""

    def search_blocks(self, query: Node, blocks: Bitmap,
                      scope: Optional[Bitmap] = None) -> Bitmap:
        """Verify a pre-planned query against externally nominated blocks."""

    def estimate_docs(self, node: Node) -> int:
        """Planner selectivity estimate for *node* (upper bound on hits)."""

    def extract(self, key: Hashable, query: Node) -> List[str]:
        """Match-carrying lines of one document (``sact``)."""

    # -- serving tier --------------------------------------------------------

    def publish(self) -> int:
        """Publish current state as the next snapshot version; returns it."""

    def snapshot_view(self):
        """The freshest published read view (zero-barrier query surface)."""

    def snapshot_info(self) -> Dict[str, object]:
        """Published version, pending op count, and per-replica state."""

    # -- degradation surface -------------------------------------------------

    def shard_of(self, key: Hashable) -> Optional[str]:
        """Owning shard id, or None on an unsharded back-end."""

    def reset_missing_shards(self) -> Set[str]:
        """Clear and return the shards missed since the last reset."""

    def health(self) -> Dict[str, str]:
        """Per-shard health (empty on an unsharded back-end)."""

    # -- persistence ---------------------------------------------------------

    def to_obj(self): ...

    @classmethod
    def from_obj(cls, obj, loader, **kwargs) -> "SearchBackend": ...
