"""The formal SearchBackend protocol — HAC's CBA seam, written down.

The paper argues its content-based access API is general enough to host
any search system (§2.2).  Until now that generality was informal: HAC
talked to "anything shaped like a CBAEngine" and probed optional surface
with ``hasattr``.  This module makes the contract explicit — a
:class:`typing.Protocol` that the monolithic
:class:`~repro.cba.engine.CBAEngine`, the
:class:`~repro.cluster.ShardedSearchCluster`, and the
:class:`~repro.remote.searchsvc.SimulatedSearchService` all satisfy — so
``HacFileSystem`` and friends can type against one name and drop the
ad-hoc sniffing.

Two method families beyond the obvious maintenance/query core deserve a
note:

* **Doc-id reservation** (:meth:`SearchBackend.reserve_doc_id`).  Block
  assignment is ``doc_id % num_blocks``, so query answers depend on the
  ids documents received.  The batched maintenance pipeline reserves ids
  at *enqueue* time and pins them at apply time, which is what keeps a
  coalesced batch bit-identical to the eager sequence it replaced.

* **Degradation surface** (:meth:`SearchBackend.shard_of`,
  :meth:`SearchBackend.reset_missing_shards`, :meth:`SearchBackend.health`).
  A monolithic engine has no shards, so its implementations are trivial
  (``None`` / empty) — but having them lets the consistency cascade and
  the shell run one unconditional code path against either back-end.
"""

from __future__ import annotations

from typing import (Dict, Hashable, Iterable, List, Optional, Protocol, Set,
                    Tuple, runtime_checkable)

from repro.util.bitmap import Bitmap
from repro.cba.incremental import ReindexPlan
from repro.cba.queryast import Node


@runtime_checkable
class SearchBackend(Protocol):
    """What HAC requires of a content-search back-end.

    ``isinstance(obj, SearchBackend)`` checks method *presence* (a
    :func:`typing.runtime_checkable` protocol cannot check signatures);
    the equivalence property suites check behaviour.
    """

    # -- maintenance ---------------------------------------------------------

    def index_document(self, key: Hashable, path: str, mtime: float,
                       text: Optional[str] = None,
                       doc_id: Optional[int] = None) -> int:
        """Add a new document; *doc_id* pins a previously reserved id."""

    def remove_document(self, key: Hashable) -> int:
        """Withdraw a document; returns the freed doc id."""

    def update_document(self, key: Hashable, path: str, mtime: float,
                        text: Optional[str] = None) -> int:
        """Re-tokenise a changed document in place (doc id preserved)."""

    def rename_document(self, key: Hashable, new_path: str) -> None:
        """Update the display path without re-tokenising."""

    def reindex(self, current: Iterable[Tuple[Hashable, str, float]],
                previous: Optional[Dict[Hashable, float]] = None
                ) -> ReindexPlan:
        """Bring the index in line with *current* ``(key, path, mtime)``."""

    def reserve_doc_id(self) -> int:
        """Claim the next doc id now, for a later pinned ``index_document``."""

    # -- registry ------------------------------------------------------------

    def doc_by_id(self, doc_id: int): ...

    def doc_by_key(self, key: Hashable): ...

    def doc_id_of(self, key: Hashable) -> Optional[int]: ...

    def all_docs(self) -> Bitmap: ...

    def mtime_snapshot(self) -> Dict[Hashable, float]: ...

    def __contains__(self, key: Hashable) -> bool: ...

    def __len__(self) -> int: ...

    # -- queries -------------------------------------------------------------

    def search(self, query: Node, scope: Optional[Bitmap] = None) -> Bitmap:
        """Evaluate a content-only query over an optional scope bitmap."""

    def search_blocks(self, query: Node, blocks: Bitmap,
                      scope: Optional[Bitmap] = None) -> Bitmap:
        """Verify a pre-planned query against externally nominated blocks."""

    def estimate_docs(self, node: Node) -> int:
        """Planner selectivity estimate for *node* (upper bound on hits)."""

    def extract(self, key: Hashable, query: Node) -> List[str]:
        """Match-carrying lines of one document (``sact``)."""

    # -- serving tier --------------------------------------------------------

    def publish(self) -> int:
        """Publish current state as the next snapshot version; returns it."""

    def snapshot_view(self):
        """The freshest published read view (zero-barrier query surface)."""

    def snapshot_info(self) -> Dict[str, object]:
        """Published version, pending op count, and per-replica state."""

    # -- degradation surface -------------------------------------------------

    def shard_of(self, key: Hashable) -> Optional[str]:
        """Owning shard id, or None on an unsharded back-end."""

    def reset_missing_shards(self) -> Set[str]:
        """Clear and return the shards missed since the last reset."""

    def health(self) -> Dict[str, str]:
        """Per-shard health (empty on an unsharded back-end)."""

    # -- persistence ---------------------------------------------------------

    def to_obj(self): ...

    @classmethod
    def from_obj(cls, obj, loader, **kwargs) -> "SearchBackend": ...


# ======================================================================
# unified backend construction
# ======================================================================

class MonolithFactory:
    """Engine factory for the single-process :class:`CBAEngine`.

    The callable-plus-``from_obj`` shape mirrors
    :class:`~repro.cluster.ClusterFactory`, so ``HacFileSystem`` (and
    ``restore``) drive every backend kind through one seam.
    """

    def __init__(self, segmented: bool = True):
        self.segmented = segmented

    def __call__(self, loader, *, counters=None, clock=None, transducer=None,
                 num_blocks: int = 64, fast_path: bool = True):
        from repro.cba.engine import CBAEngine
        from repro.cba.transducers import default_transducer

        return CBAEngine(loader=loader, num_blocks=num_blocks,
                         transducer=transducer or default_transducer,
                         counters=counters, fast_path=fast_path,
                         segmented=self.segmented)

    def from_obj(self, obj, *, loader, counters=None, clock=None,
                 transducer=None, fast_path: bool = True):
        from repro.cba.engine import CBAEngine
        from repro.cba.transducers import default_transducer

        return CBAEngine.from_obj(obj, loader=loader,
                                  transducer=transducer or default_transducer,
                                  counters=counters, fast_path=fast_path,
                                  segmented=self.segmented)


def open_backend(spec, **options):
    """One entry point for every search-backend kind.

    Before this, the three backends had three divergent constructor
    signatures (``CBAEngine(...)``, ``ClusterFactory(...)(...)``,
    ``SimulatedSearchService(...)``); callers hard-coded which one they
    were building.  ``open_backend`` takes a *spec* and returns the right
    thing for the seam the spec names:

    * ``"monolith"`` → a :class:`MonolithFactory` (pass as
      ``HacFileSystem(backend=...)``);
    * ``"cluster"`` or ``"cluster:<K>"`` → a
      :class:`~repro.cluster.ClusterFactory` with K shards;
    * ``"remote:<ns_id>"`` → a
      :class:`~repro.remote.searchsvc.SimulatedSearchService` (pass to
      ``smount``);
    * a dict ``{"kind": ..., **kwargs}`` — the explicit form of any of
      the above;
    * an already-built factory/namespace passes through unchanged.

    Keyword *options* are forwarded to the underlying constructor
    (``shards=``, ``latency=``, ``documents=``, ``segmented=``, ...).
    """
    if spec is None:
        return MonolithFactory(**options)
    if isinstance(spec, dict):
        spec = dict(spec)
        kind = spec.pop("kind", "monolith")
        merged = {**spec, **options}
        return _build_backend(str(kind), merged)
    if isinstance(spec, str):
        kind, _, arg = spec.partition(":")
        merged = dict(options)
        if arg:
            if kind == "cluster":
                merged.setdefault("shards", int(arg))
            elif kind == "remote":
                merged.setdefault("namespace_id", arg)
        return _build_backend(kind, merged)
    # anything already satisfying a backend seam passes through
    return spec


def _build_backend(kind: str, options: Dict[str, object]):
    if kind == "monolith":
        return MonolithFactory(**options)
    if kind == "cluster":
        from repro.cluster import ClusterFactory

        return ClusterFactory(**options)
    if kind == "remote":
        from repro.remote.searchsvc import SimulatedSearchService

        ns_id = options.pop("namespace_id", None)
        if ns_id is None:
            raise ValueError("remote backend spec needs a namespace id "
                             "('remote:<ns_id>')")
        return SimulatedSearchService(str(ns_id), **options)
    raise ValueError(f"unknown backend kind: {kind!r} "
                     "(monolith | cluster | remote)")
