"""Transducers: attribute/value extraction from file contents.

SFS introduced transducers — programs that derive typed attribute/value
pairs from files so queries like ``author:/smith`` work.  HAC's paper keeps
its CBA interface mechanism-agnostic; this module hosts the SFS model
inside our engine: a transducer is any ``f(path, text) -> [(field, value)]``
callable, and the engine (a) indexes each pair under a ``field:value``
token and (b) re-derives pairs at verification time so ``from:alice`` terms
evaluate exactly.

Two stock transducers cover the common cases; users compose their own with
:func:`combine`.
"""

from __future__ import annotations

import re
from typing import Callable, List, Sequence, Tuple

#: the transducer signature
Transducer = Callable[[str, str], List[Tuple[str, str]]]

_HEADER_RE = re.compile(r"^(\w+):\s*(.+)$")
_WORD_RE = re.compile(r"[A-Za-z0-9_]+")


def header_transducer(path: str, text: str) -> List[Tuple[str, str]]:
    """Mail-style headers: leading ``Field: value`` lines become pairs.

    Multi-word values contribute one pair per word, so ``Subject: budget
    meeting`` matches both ``subject:budget`` and ``subject:meeting``.
    """
    pairs: List[Tuple[str, str]] = []
    for line in text.splitlines():
        m = _HEADER_RE.match(line.strip())
        if m is None:
            break  # headers end at the first non-header line
        field = m.group(1).lower()
        for word in _WORD_RE.findall(m.group(2)):
            pairs.append((field, word.lower()))
    return pairs


def filename_transducer(path: str, text: str) -> List[Tuple[str, str]]:
    """``name:<basename>`` and ``ext:<suffix>`` pairs from the path."""
    base = path.rsplit("/", 1)[-1].lower()
    pairs = [("name", word) for word in _WORD_RE.findall(base)]
    if "." in base:
        pairs.append(("ext", base.rsplit(".", 1)[-1]))
    return pairs


def combine(*transducers: Transducer) -> Transducer:
    """One transducer running several in sequence."""

    def run(path: str, text: str) -> List[Tuple[str, str]]:
        pairs: List[Tuple[str, str]] = []
        for t in transducers:
            pairs.extend(t(path, text))
        return pairs

    return run


#: what :class:`~repro.cba.engine.CBAEngine` uses unless told otherwise
default_transducer = combine(header_transducer, filename_transducer)
