"""Result-set types shared by the CBA engine and the HAC core.

A query result in HAC can mix *local* files (tracked as engine doc-ids in a
compact :class:`~repro.util.bitmap.Bitmap`, the paper's N/8-byte
representation) with *remote* results imported through semantic mount points
(tracked as :class:`RemoteId` tokens — the paper keeps remote result sets
disjoint per mounted name space, and so do we: the namespace id is part of
the token).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, NamedTuple, Optional, Set

from repro.util.bitmap import Bitmap


class RemoteId(NamedTuple):
    """Identity of one remote result: which name space, which document."""

    namespace: str
    doc: str

    def uri(self) -> str:
        return f"{self.namespace}://{self.doc}"

    @classmethod
    def from_uri(cls, uri: str) -> "RemoteId":
        namespace, sep, doc = uri.partition("://")
        if not sep:
            raise ValueError(f"not a remote uri: {uri!r}")
        return cls(namespace, doc)


class ResultSet:
    """A set of query results: local doc-ids plus remote tokens."""

    __slots__ = ("local", "remote")

    def __init__(self, local: Optional[Bitmap] = None,
                 remote: Optional[Iterable[RemoteId]] = None):
        self.local: Bitmap = local if local is not None else Bitmap()
        self.remote: Set[RemoteId] = set(remote) if remote is not None else set()

    @classmethod
    def empty(cls) -> "ResultSet":
        return cls()

    def copy(self) -> "ResultSet":
        return ResultSet(self.local.copy(), set(self.remote))

    # -- algebra (mirrors Bitmap) ---------------------------------------------

    def __or__(self, other: "ResultSet") -> "ResultSet":
        return ResultSet(self.local | other.local, self.remote | other.remote)

    def __and__(self, other: "ResultSet") -> "ResultSet":
        return ResultSet(self.local & other.local, self.remote & other.remote)

    def __sub__(self, other: "ResultSet") -> "ResultSet":
        return ResultSet(self.local - other.local, self.remote - other.remote)

    def __eq__(self, other):
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.local == other.local and self.remote == other.remote

    def __hash__(self):
        return hash((self.local, frozenset(self.remote)))

    def __len__(self) -> int:
        return len(self.local) + len(self.remote)

    def __bool__(self) -> bool:
        return bool(self.local) or bool(self.remote)

    def __contains__(self, item) -> bool:
        if isinstance(item, RemoteId):
            return item in self.remote
        return item in self.local

    def issubset(self, other: "ResultSet") -> bool:
        return (self.local.issubset(other.local)
                and self.remote.issubset(other.remote))

    def remote_frozen(self) -> FrozenSet[RemoteId]:
        return frozenset(self.remote)

    def __repr__(self):
        return f"ResultSet(local={len(self.local)}, remote={len(self.remote)})"
