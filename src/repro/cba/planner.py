"""Query planning: AST normalization and selectivity-ordered conjunctions.

The block index and the verification scanner both evaluate ``And`` nodes
child by child with short-circuiting, and the boolean evaluator narrows the
scope progressively through a conjunction — so child *order* never changes
the answer, only the work.  This module exploits that freedom, the same way
CSI-style engines order conjunctive predicates by selectivity (PAPERS.md:
*Robust and Scalable Content-and-Structure Indexing*):

* :func:`normalize` flattens nested And/Or chains, removes duplicate
  operands, and drops neutral ``MatchAll`` elements — all answer-preserving
  rewrites (double negation is deliberately *preserved*: cancelling it
  would change answers for non-indexable leaves, see :func:`normalize`);
* :func:`order_children` sorts the operands of a conjunction so the most
  selective (fewest estimated matching documents) runs first, shrinking
  the candidate set before the expensive operands see it;
* :func:`plan` composes the two.

Selectivity estimates come from :meth:`GlimpseIndex.estimate_docs`, which
reads exact document frequencies out of the lexicon — no sampling, no
statistics maintenance beyond what the index already keeps.  Directory
references sort before content predicates: resolving one is a stored-bitmap
lookup, cheaper than any index probe.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cba.queryast import (And, DirRef, FieldTerm, MatchAll, Node, Not,
                                Or, Phrase, ScopeTerm, Term)


def normalize(node: Node) -> Node:
    """Answer-preserving simplification: flatten, dedup, drop neutrals.

    ``And``/``Or`` constructors already flatten same-typed children; on top
    of that this removes duplicate operands (sets are idempotent), treats
    ``MatchAll`` as the neutral element of ``And`` and the absorbing element
    of ``Or``, and collapses single-operand compounds.

    Double negation is deliberately *not* cancelled: block nomination is
    incomplete for non-indexable leaves (a stopword term nominates no
    blocks, so ``Term(stopword)`` finds nothing), and ``NOT`` flips that
    incompleteness — ``NOT NOT x`` nominates every block and lets the
    scanner see matches that ``x`` alone misses.  Rewriting one to the
    other would change answers, not just cost.
    """
    if isinstance(node, (And, Or)):
        absorbing = isinstance(node, Or)
        kids: List[Node] = []
        seen = set()
        for child in node.children:
            child = normalize(child)
            if isinstance(child, MatchAll):
                if absorbing:
                    return MatchAll()
                continue
            grand = (child.children if type(child) is type(node) else (child,))
            for g in grand:
                if g not in seen:
                    seen.add(g)
                    kids.append(g)
        if not kids:
            return MatchAll()
        if len(kids) == 1:
            return kids[0]
        return type(node)(kids)
    if isinstance(node, Not):
        return Not(normalize(node.child))
    return node


def order_children(children: Sequence[Node], index,
                   stats=None) -> List[Node]:
    """Operands of a conjunction, cheapest-first.

    Directory references come first (stored-bitmap lookups), then content
    predicates by ascending estimated document count; ties keep their
    original order, so the sort is deterministic and stable.
    """
    def rank(pair):
        pos, child = pair
        if isinstance(child, DirRef):
            return (0, 0, pos)
        return (1, _estimate(child, index), pos)

    ranked = sorted(enumerate(children), key=rank)
    ordered = [child for _pos, child in ranked]
    if stats is not None and [id(c) for c in ordered] != \
            [id(c) for c in children]:
        stats.add("planner_reorders")
    return ordered


def _estimate(node: Node, index) -> int:
    return index.estimate_docs(node)


def provably_empty(node: Node, df: Callable[[str], int],
                   indexable: Callable[[str], bool],
                   scope_count: Optional[Callable[[str], int]] = None) -> bool:
    """True when *node* provably matches **no** document, so evaluation
    (candidate blocks, probe RPCs, the scan fallback) can be skipped
    entirely and an empty result returned.

    The proof obligations are conservative — only leaves whose index
    bookkeeping is *exact* participate:

    * an **indexable** term (long enough, not a stopword) with zero
      document frequency cannot match anywhere (non-indexable terms are
      invisible to the lexicon, so a zero df proves nothing);
    * a field term with a zero-df pair token — transduced pairs are
      always indexed under their joined token;
    * a phrase containing any indexable zero-df word;
    * a scope prefix covering zero indexed documents, when the caller
      supplies exact scope counts;
    * an ``And`` with any provably-empty required conjunct, an ``Or``
      whose branches are all provably empty.

    ``Not``/``Approx``/``MatchAll``/``DirRef`` prove nothing.  Document
    frequencies and scope counts are additive over a shard partition, so
    the cluster coordinator reaches the identical verdict as the
    monolith from its summed statistics.
    """
    if isinstance(node, Term):
        return indexable(node.word) and df(node.word) == 0
    if isinstance(node, FieldTerm):
        return df(f"{node.field}:{node.value}") == 0
    if isinstance(node, Phrase):
        return any(indexable(w) and df(w) == 0 for w in node.words)
    if isinstance(node, ScopeTerm):
        return scope_count is not None and scope_count(node.prefix) == 0
    if isinstance(node, And):
        return any(provably_empty(c, df, indexable, scope_count)
                   for c in node.children)
    if isinstance(node, Or):
        return all(provably_empty(c, df, indexable, scope_count)
                   for c in node.children)
    return False


def plan(node: Node, index, stats=None) -> Node:
    """Normalize *node* and selectivity-order every conjunction in it."""
    return _order_tree(normalize(node), index, stats)


def _order_tree(node: Node, index, stats) -> Node:
    if isinstance(node, And):
        kids = [_order_tree(c, index, stats) for c in node.children]
        return And(order_children(kids, index, stats))
    if isinstance(node, Or):
        return Or([_order_tree(c, index, stats) for c in node.children])
    if isinstance(node, Not):
        return Not(_order_tree(node.child, index, stats))
    return node
