"""Term dictionary for the Glimpse index.

Interns index terms to dense integer ids and tracks document frequency, so
posting structures can key on small ints rather than strings.  Terms whose
document frequency drops to zero are retired and their ids recycled.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class Lexicon:
    """Bidirectional term ↔ id map with document-frequency counts."""

    def __init__(self):
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: Dict[int, str] = {}
        self._df: Dict[int, int] = {}
        self._free_ids: List[int] = []
        self._next_id = 0

    def intern(self, term: str) -> int:
        """Id for *term*, allocating one on first sight."""
        tid = self._term_to_id.get(term)
        if tid is None:
            tid = self._free_ids.pop() if self._free_ids else self._next_id
            if tid == self._next_id:
                self._next_id += 1
            self._term_to_id[term] = tid
            self._id_to_term[tid] = term
            self._df[tid] = 0
        return tid

    def lookup(self, term: str) -> Optional[int]:
        """Id for *term* if known; never allocates."""
        return self._term_to_id.get(term)

    def term(self, tid: int) -> str:
        return self._id_to_term[tid]

    def add_occurrence(self, term: str) -> int:
        tid = self.intern(term)
        self._df[tid] += 1
        return tid

    def drop_occurrence(self, term: str) -> Optional[int]:
        """Decrement df; retires the term at zero.  Returns its id (or None)."""
        tid = self._term_to_id.get(term)
        if tid is None:
            return None
        self._df[tid] -= 1
        if self._df[tid] <= 0:
            del self._term_to_id[term]
            del self._id_to_term[tid]
            del self._df[tid]
            self._free_ids.append(tid)
        return tid

    def df(self, term: str) -> int:
        tid = self._term_to_id.get(term)
        return self._df.get(tid, 0) if tid is not None else 0

    def __len__(self) -> int:
        return len(self._term_to_id)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def terms(self) -> Iterator[Tuple[str, int]]:
        """(term, df) pairs, unordered."""
        for term, tid in self._term_to_id.items():
            yield term, self._df[tid]

    def approximate_bytes(self) -> int:
        """Rough footprint for index-size reporting."""
        return sum(len(t) + 12 for t in self._term_to_id)

    # -- persistence ----------------------------------------------------------

    def to_obj(self):
        return {term: [tid, self._df[tid]]
                for term, tid in self._term_to_id.items()}

    @classmethod
    def from_obj(cls, obj) -> "Lexicon":
        lex = cls()
        for term, (tid, df) in obj.items():
            lex._term_to_id[term] = tid
            lex._id_to_term[tid] = term
            lex._df[tid] = df
        lex._next_id = max(lex._id_to_term, default=-1) + 1
        return lex
