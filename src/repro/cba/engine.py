"""The CBA engine facade — what HAC's narrow CBA API talks to.

The engine owns the document registry (opaque keys → dense doc ids), the
Glimpse block index, and the verification scanner.  HAC gives it a *loader*
callback to fetch document text on demand, so the engine never stores
contents: like real Glimpse, verification re-reads the files it scans
(charging the simulated block device through whatever the loader does).

The paper argues its CBA API is general enough to host any search system;
ours is correspondingly small: ``index_document`` / ``remove_document`` /
``update_document`` / ``reindex`` for maintenance, ``search`` for content
queries over an optional scope bitmap, ``extract`` for ``sact``-style
match-line retrieval.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_TRACER
from repro.util import pathutil
from repro.util.bitmap import Bitmap
from repro.util.stats import Counters
from repro.cba import agrep, planner
from repro.cba.cas import CASIndex
from repro.cba.glimpse import DEFAULT_NUM_BLOCKS, GlimpseIndex
from repro.cba.incremental import ReindexPlan, plan_reindex
from repro.cba.queryast import (
    And,
    FieldTerm,
    MatchAll,
    Node,
    Not,
    Or,
    ScopeTerm,
    Term,
    has_field_terms,
    has_scope_terms,
    required_scope_prefixes,
)
from repro.cba.segments import SegmentRow, SegmentStore
from repro.cba.tokenizer import DEFAULT_STOPWORDS, index_terms
from repro.cba.transducers import Transducer

#: verification-memo entries kept before the memo is wholesale dropped —
#: bounds memory on corpora with many distinct (doc, query) pairs
MEMO_CAPACITY = 100_000


class _CacheEntry(NamedTuple):
    """A cached query result plus the candidate blocks it was computed
    from, so invalidation can reason at block granularity."""

    result: Bitmap
    blocks: Bitmap


class Document(NamedTuple):
    """Registry entry for one indexed document."""

    doc_id: int
    key: Hashable
    path: str
    mtime: float
    size: int


class IndexOp(NamedTuple):
    """One primary-engine mutation, as shipped to read replicas.

    Ops carry the *term set the primary computed* and the *text it
    indexed*, so replica catch-up never re-tokenises and never re-reads
    the live tree — replay is pure index manipulation against frozen
    inputs.  Emitted only while at least one replica is attached (the op
    buffer stays empty otherwise, keeping ``publish`` free for eager
    mode's per-write drains).
    """

    kind: str                       # 'index' | 'update' | 'remove' | 'rename'
    doc_id: int
    key: Hashable
    path: str
    mtime: float
    terms: Optional[Set[str]] = None
    text: Optional[str] = None


class CBAEngine:
    """Glimpse-style content-based access over externally stored documents.

    :param loader: ``loader(key) -> str`` fetches a document's current text.
    :param num_blocks: Glimpse block count (index size / scan cost knob).
    """

    def __init__(self, loader: Callable[[Hashable], str],
                 num_blocks: int = DEFAULT_NUM_BLOCKS,
                 min_term_length: int = 2,
                 stopwords: Optional[Set[str]] = None,
                 transducer: Optional[Transducer] = None,
                 cache_size: int = 64,
                 counters: Optional[Counters] = None,
                 fast_path: bool = True,
                 segmented: bool = False,
                 cas: bool = True):
        self.loader = loader
        self.counters = counters if counters is not None else Counters()
        self._stats = self.counters.scoped("engine")
        #: observability hooks (wired by the owning HacFileSystem);
        #: both default to shared disabled instances
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        #: query fast path: planner-ordered conjunctions, doc-level postings
        #: answering term queries without a scan, and a per-(doc, query)
        #: verification memo.  Answers reflect index state — content written
        #: after the last (re)index is invisible until the next one, the
        #: paper's §2.4 lazy data-consistency policy.  Turn off to recover
        #: the seed scan-everything semantics (the block-ablation benchmarks
        #: do, so the paper's tables stay faithful).
        self.fast_path = fast_path
        self.index = GlimpseIndex(num_blocks=num_blocks, counters=self.counters,
                                  track_doc_postings=fast_path)
        self.min_term_length = min_term_length
        self.stopwords = DEFAULT_STOPWORDS if stopwords is None else stopwords
        #: optional SFS-style attribute extractor; enables field:value terms
        self.transducer = transducer
        self._docs: Dict[int, Document] = {}
        self._by_key: Dict[Hashable, int] = {}
        self._next_doc_id = 0
        # SFS-style result cache (§5: SFS "caches the contents of different
        # virtual directories to save query processing costs").  Keyed by
        # (query, scope).  Invalidation is block-exact: a mutation of doc d
        # only evicts entries whose stored candidate blocks — or whose
        # freshly recomputed candidate blocks — contain d's block; every
        # other entry provably still holds (a doc's postings live in exactly
        # one block, so no other block's candidacy can change).
        self._cache: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()
        self._cache_capacity = cache_size
        self._generation = 0
        #: docs mutated since construction (diagnostic; benchmarks read it)
        self._dirty = Bitmap()
        #: doc id → {query node: (mtime, verdict)} — scan verdicts are pure
        #: functions of (text, pairs), so they survive until the doc mutates
        self._verify_memo: Dict[int, Dict[Node, Tuple[float, bool]]] = {}
        self._memo_entries = 0
        # serving tier: the published snapshot version, attached read
        # replicas, and the op log replicas replay at publish time (empty
        # while no replica is attached — see IndexOp)
        self._published_version = 0
        self._replicas: List = []
        self._pending_ops: List[IndexOp] = []
        self._route_rr = 0
        # segmented storage plane (LSM-style memtable + frozen segments);
        # the in-memory aggregates above still answer every query, so the
        # toggle cannot change a single search result — it changes how
        # mutations are persisted, published, and recovered
        self.segments: Optional[SegmentStore] = (
            SegmentStore(counters=self.counters) if segmented else None)
        # Content-and-Structure index: the path dimension interleaved
        # with the term dimension, maintained in lockstep with the
        # registry.  An accelerator, never an authority — scope terms
        # evaluate exactly with or without it (scope_docs falls back to
        # a registry scan), which is what the CAS ablation contrasts.
        self.cas: Optional[CASIndex] = (
            CASIndex(counters=self.counters) if cas else None)
        self.index.scope_counter = self.scope_count

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------

    def doc_by_id(self, doc_id: int) -> Optional[Document]:
        return self._docs.get(doc_id)

    def doc_by_key(self, key: Hashable) -> Optional[Document]:
        doc_id = self._by_key.get(key)
        return self._docs.get(doc_id) if doc_id is not None else None

    def doc_id_of(self, key: Hashable) -> Optional[int]:
        return self._by_key.get(key)

    def all_docs(self) -> Bitmap:
        return self.index.all_docs()

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._by_key

    def mtime_snapshot(self) -> Dict[Hashable, float]:
        """``{key: mtime}`` as of the last (re)index — the §2.4 snapshot."""
        return {doc.key: doc.mtime for doc in self._docs.values()}

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def _terms_of(self, text: str, path: str = "") -> Set[str]:
        # tokenisation passes are the unit of maintenance work the batched
        # scheduler saves; Ablation K asserts on this counter
        self._stats.add("tokenisations")
        terms = index_terms(text, min_length=self.min_term_length,
                            stopwords=self.stopwords)
        if self.transducer is not None:
            terms |= {f"{field}:{value}"
                      for field, value in self.transducer(path, text)}
        return terms

    def reserve_doc_id(self) -> int:
        """Claim the next doc id without indexing anything yet.

        The maintenance scheduler reserves ids at enqueue time so a
        coalesced batch assigns the same ids — hence the same
        ``doc_id % num_blocks`` block placement — the eager sequence
        would have.  Reserved ids that go unused stay burned; ids are
        never reused either way.
        """
        doc_id = self._next_doc_id
        self._next_doc_id += 1
        return doc_id

    def index_document(self, key: Hashable, path: str, mtime: float,
                       text: Optional[str] = None,
                       doc_id: Optional[int] = None) -> int:
        """Add a new document; returns its doc id.

        *doc_id* pins an externally assigned id instead of the dense
        default.  The cluster coordinator indexes each shard's documents
        under their *global* ids so block assignment (``doc_id %
        num_blocks``) — and with it every candidate-block computation —
        matches the monolithic engine bit-for-bit.
        """
        if key in self._by_key:
            raise ValueError(f"document already indexed: {key!r}")
        if text is None:
            text = self.loader(key)
        if doc_id is None:
            doc_id = self.reserve_doc_id()
        else:
            if doc_id in self._docs:
                raise ValueError(f"doc id already in use: {doc_id}")
            self._next_doc_id = max(self._next_doc_id, doc_id + 1)
        terms = self._terms_of(text, path)
        grew = self.index.add(doc_id, terms)
        self._docs[doc_id] = Document(doc_id, key, path, mtime, len(text))
        self._by_key[key] = doc_id
        if self.cas is not None:
            self.cas.upsert(doc_id, path, terms)
        self._note_mutation(doc_id, grew)
        self._emit("index", doc_id, key, path, mtime, terms, text)
        self._stats.add("indexed")
        self._stats.add("indexed_bytes", len(text))
        return doc_id

    def remove_document(self, key: Hashable) -> int:
        """Withdraw a document; returns the freed doc id."""
        doc_id = self._by_key.pop(key, None)
        if doc_id is None:
            raise KeyError(f"document not indexed: {key!r}")
        doc = self._docs.pop(doc_id)
        self.index.remove(doc_id)
        if self.cas is not None:
            self.cas.remove(doc_id)
        self._note_mutation(doc_id, grew=False)
        self._emit("remove", doc_id, key, doc.path, doc.mtime)
        self._stats.add("removed")
        return doc_id

    def update_document(self, key: Hashable, path: str, mtime: float,
                        text: Optional[str] = None) -> int:
        """Re-tokenise a changed document in place (doc id preserved)."""
        doc_id = self._by_key.get(key)
        if doc_id is None:
            raise KeyError(f"document not indexed: {key!r}")
        if text is None:
            text = self.loader(key)
        terms = self._terms_of(text, path)
        grew = self.index.update(doc_id, terms)
        self._docs[doc_id] = Document(doc_id, key, path, mtime, len(text))
        if self.cas is not None:
            self.cas.upsert(doc_id, path, terms)
        self._note_mutation(doc_id, grew)
        self._emit("update", doc_id, key, path, mtime, terms, text)
        self._stats.add("updated")
        return doc_id

    def rename_document(self, key: Hashable, new_path: str) -> None:
        """Update the display path (contents unchanged, no retokenising)."""
        doc_id = self._by_key.get(key)
        if doc_id is None:
            raise KeyError(f"document not indexed: {key!r}")
        self._docs[doc_id] = self._docs[doc_id]._replace(path=new_path)
        if self.cas is not None:
            self.cas.set_path(doc_id, new_path)
        # transduced pairs and scope-term verdicts can depend on the path,
        # so memoised verdicts for this doc — and cached results of
        # scope-bearing queries — may no longer hold even though its
        # mtime is unchanged
        self._purge_memo(doc_id)
        self._purge_scope_cache()
        self._emit("rename", doc_id, key, new_path,
                   self._docs[doc_id].mtime)

    def rebase_paths(self, old_prefix: str, new_prefix: str) -> int:
        """Directory rename: re-root every registered path under
        *old_prefix* in one pass — the same one-pass rebase the path map
        performs — and rebase the CAS index's prefix keys alongside.
        Contents are untouched: no loader read, no retokenisation, just
        registry path rewrites, per-doc rename emission (so segments and
        replicas follow), and scope-sensitive cache eviction.  Returns
        documents moved.
        """
        old_prefix = pathutil.normalize(old_prefix)
        new_prefix = pathutil.normalize(new_prefix)
        moved = 0
        for doc_id, doc in list(self._docs.items()):
            path = pathutil.canonical(doc.path)
            if pathutil.is_ancestor(old_prefix, path, strict=False):
                new_path = pathutil.rebase(path, old_prefix, new_prefix)
                self._docs[doc_id] = doc._replace(path=new_path)
                self._purge_memo(doc_id)
                self._emit("rename", doc_id, doc.key, new_path, doc.mtime)
                moved += 1
        if self.cas is not None:
            self.cas.rebase_prefix(old_prefix, new_prefix)
        if moved:
            self._purge_scope_cache()
            self._stats.add("paths_rebased", moved)
        return moved

    def reindex(self, current: Iterable[Tuple[Hashable, str, float]],
                previous: Optional[Dict[Hashable, float]] = None) -> ReindexPlan:
        """Bring the index in line with *current* ``(key, path, mtime)`` files.

        :param previous: restricts the comparison baseline — pass the subset
            of :meth:`mtime_snapshot` covering the subtree being reindexed,
            so documents outside it are not treated as removed (HAC's
            "reindex any part of the file system", §2.4).

        Returns the executed :class:`ReindexPlan` so callers can report how
        much work the lazy data-consistency policy saved.
        """
        listing = {key: (path, mtime) for key, path, mtime in current}
        baseline = self.mtime_snapshot() if previous is None else previous
        plan = plan_reindex(baseline,
                            {key: mtime for key, (_path, mtime) in listing.items()})
        for key in plan.removed:
            self.remove_document(key)
        for key in plan.added:
            path, mtime = listing[key]
            self.index_document(key, path, mtime)
        for key in plan.changed:
            path, mtime = listing[key]
            self.update_document(key, path, mtime)
        # paths may drift without mtime changes (rename); refresh cheaply —
        # unless a transducer derives terms from the name, in which case the
        # document must be re-tokenised under its new path
        for key, (path, mtime) in listing.items():
            doc_id = self._by_key.get(key)
            if doc_id is not None and self._docs[doc_id].path != path:
                if self.transducer is not None:
                    self.update_document(key, path, mtime)
                else:
                    self.rename_document(key, path)
        self._stats.add("reindex_runs")
        return plan

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def _note_mutation(self, doc_id: int, grew: bool = True) -> None:
        """Record that *doc_id*'s index entry changed (add/remove/update).

        Invalidation is block-exact rather than wholesale: a doc's postings
        live in exactly one block, so a mutation can only change (a) results
        whose stored candidate blocks contain that block, or (b) results
        whose candidate blocks — recomputed against the mutated index — now
        contain it (a term the doc introduced can make its block newly
        candidate).  Every other cached entry provably still holds and
        survives.  Must be called *after* the index mutation so (b) sees the
        new postings.

        *grew* comes from the index mutation: block candidacy is monotone
        in a block's term membership, so when the mutation added no term
        its block lacked (pure removals, churn that re-adds the same
        terms) no entry's candidate blocks can have gained the block, and
        the per-entry recompute behind (b) — the expensive half of the
        sweep — is skipped wholesale.
        """
        self._generation += 1
        self._dirty.add(doc_id)
        self._purge_memo(doc_id)
        if not self._cache:
            return
        block = self.index.block_of(doc_id)
        survivors = 0
        for key in list(self._cache):
            entry = self._cache[key]
            if block in entry.blocks or \
                    (grew and block in self.index.candidate_blocks(key[0])):
                del self._cache[key]
            else:
                survivors += 1
        if survivors:
            self._stats.add("cache_survivals", survivors)

    def _purge_memo(self, doc_id: int) -> None:
        dropped = self._verify_memo.pop(doc_id, None)
        if dropped:
            self._memo_entries -= len(dropped)

    def _purge_scope_cache(self) -> None:
        """Evict cached results of scope-bearing queries: a path move
        changes their answers without touching any block's postings, so
        the block-exact invalidation in :meth:`_note_mutation` cannot
        see it."""
        if not self._cache:
            return
        for key in [k for k in self._cache if has_scope_terms(k[0])]:
            del self._cache[key]

    def _memoize(self, doc_id: int, query: Node, mtime: float,
                 verdict: bool) -> None:
        if self._memo_entries >= MEMO_CAPACITY:
            self._verify_memo.clear()
            self._memo_entries = 0
        per_doc = self._verify_memo.setdefault(doc_id, {})
        if query not in per_doc:
            self._memo_entries += 1
        per_doc[query] = (mtime, verdict)

    def dirty_docs(self) -> Bitmap:
        """Docs mutated since the engine was built (benchmark diagnostic)."""
        return self._dirty.copy()

    def clear_query_cache(self) -> None:
        """Drop cached query results and memoised scan verdicts (benchmarks
        use this to measure cold costs — the real Glimpse binary starts cold
        on every invocation)."""
        self._cache.clear()
        self._verify_memo.clear()
        self._memo_entries = 0

    # -- the path dimension (CAS) -------------------------------------------

    def scope_docs(self, prefix: str) -> Bitmap:
        """Exact set of indexed documents whose registered path lies
        at-or-below *prefix*.  One CAS probe when the index is attached;
        an exact registry scan otherwise — identical answers either way
        (the registry is the authority on paths), different work.
        """
        if self.cas is not None:
            self._stats.add("cas_scope_probes")
            return self.cas.docs_under(prefix)
        self._stats.add("scope_registry_scans")
        out = Bitmap()
        for doc_id, doc in self._docs.items():
            if pathutil.is_ancestor(prefix, pathutil.canonical(doc.path),
                                    strict=False):
                out.add(doc_id)
        return out

    def scope_count(self, prefix: str) -> int:
        """Path-dimension selectivity for the planner (exact)."""
        return len(self.scope_docs(prefix))

    def rebuild_cas(self) -> None:
        """Repopulate the CAS index from the registry and the block
        index's removal map — zero loader reads, zero tokenisations.
        Restore paths (from_obj, segment folds, replica hydration) land
        here because they bypass the per-mutation funnels."""
        if self.cas is None:
            return
        self.cas.clear()
        lexicon = self.index.lexicon
        for doc_id in sorted(self._docs):
            doc = self._docs[doc_id]
            terms = [lexicon.term(tid)
                     for tid in self.index._doc_terms.get(doc_id, ())]
            self.cas.upsert(doc_id, doc.path, terms)

    # -- postings fast path -------------------------------------------------

    def _indexable(self, word: str) -> bool:
        return len(word) >= self.min_term_length and word not in self.stopwords

    def _postings_answerable(self, node: Node, conj: bool = True) -> bool:
        """Can *node* be answered exactly from doc-level postings?

        ``Term`` leaves must be indexable — a stopword/short token never
        reaches the index, yet the scanner can still see it on candidate
        docs nominated by *other* operands, so in general a non-indexable
        leaf diverges.  The one sound exemption is a leaf on the pure-And
        spine from the root (*conj*): there its empty block nomination is
        intersected into the root candidate set, so both paths reach the
        empty result.  That argument breaks the moment any other operator
        intervenes: under ``Or`` the union keeps other branches' candidate
        blocks alive, and block collocation lets the scanner match a doc
        through the non-indexable branch the postings path evaluated as
        empty; under ``Not`` the divergence inverts into all-docs.  So
        *conj* goes false through both, and a non-indexable leaf there
        forces the scan path.  ``Phrase``/``Approx`` need token order /
        fuzzy matching the postings cannot express.
        """
        if isinstance(node, Term):
            return conj or self._indexable(node.word)
        if isinstance(node, FieldTerm):
            return True
        if isinstance(node, ScopeTerm):
            # the registry (via CAS or a scan) answers the path dimension
            # exactly in any position — scope terms never force a scan
            return True
        if isinstance(node, MatchAll):
            return True
        if isinstance(node, And):
            return all(self._postings_answerable(c, conj=conj)
                       for c in node.children)
        if isinstance(node, Or):
            return all(self._postings_answerable(c, conj=False)
                       for c in node.children)
        if isinstance(node, Not):
            return self._postings_answerable(node.child, conj=False)
        return False

    def _postings_eval(self, node: Node) -> Bitmap:
        """Exact doc set for an answerable *node*, unclamped by scope."""
        if isinstance(node, Term):
            return self.index.docs_with_term(node.word)
        if isinstance(node, FieldTerm):
            return self.index.docs_with_term(f"{node.field}:{node.value}")
        if isinstance(node, ScopeTerm):
            return self.scope_docs(node.prefix)
        if isinstance(node, MatchAll):
            return self.index.all_docs()
        if isinstance(node, And):
            out = None
            children = list(node.children)
            if self.cas is not None and len(children) >= 2 and \
                    isinstance(children[0], ScopeTerm) and \
                    isinstance(children[1], Term):
                # the planner costed the path dimension cheapest, so
                # answer scope+term with one interleaved CAS probe —
                # both dimensions pruned together — instead of two
                # posting lookups and an intersection
                self._stats.add("cas_interleaved_probes")
                out = self.cas.probe(children[0].prefix, children[1].word)
                children = children[2:]
            for child in children:
                docs = self._postings_eval(child)
                out = docs if out is None else out & docs
                if not out:
                    break
            return out if out is not None else self.index.all_docs()
        if isinstance(node, Or):
            out = Bitmap()
            for child in node.children:
                out |= self._postings_eval(child)
            return out
        if isinstance(node, Not):
            return self.index.all_docs() - self._postings_eval(node.child)
        raise TypeError(f"not postings-answerable: {type(node).__name__}")

    def search(self, query: Node, scope: Optional[Bitmap] = None) -> Bitmap:
        """Evaluate a *content-only* query; returns matching doc ids.

        Two-level evaluation, exactly as in Glimpse: the block index nominates
        candidate blocks, then every candidate document (restricted to
        *scope* when given) is fetched through the loader and verified by the
        agrep scanner.  ``MatchAll`` short-circuits without scanning.

        With ``fast_path`` on, the query is first run through the planner
        (normalisation + selectivity-ordered conjunctions), pure term
        queries are answered from doc-level postings with no loader fetch at
        all, and scan verdicts for the rest are memoised per (doc, query)
        until the doc mutates.

        Results are cached per ``(query, scope)`` until a mutation whose
        block intersects the entry's candidate blocks — SFS's
        virtual-directory caching with block-exact invalidation, valid here
        because content changes only become visible at reindex time anyway
        (§2.4).
        """
        self._stats.add("searches")
        if scope is not None and not scope:
            return Bitmap()
        with self.tracer.span("cba.search") as span:
            universe = self.index.all_docs() if scope is None else scope
            if self.fast_path:
                with self.tracer.span("cba.plan"):
                    query = planner.plan(query, self.index, self._stats)
            if isinstance(query, MatchAll):
                span.set(mode="matchall", hits=len(universe))
                return universe.copy()
            if self.fast_path and planner.provably_empty(
                    query, self.index.lexicon.df, self._indexable,
                    self.scope_count):
                # a required conjunct has zero postings (or the scope
                # prefix covers nothing): skip candidate blocks, the
                # postings walk, and the scan fallback outright
                self._stats.add("planner_empty_shortcircuit")
                span.set(mode="empty", hits=0)
                return Bitmap()
            cache_key = None
            if self._cache_capacity > 0:
                cache_key = (query, None if scope is None else scope.to_bytes())
                cached = self._cache.get(cache_key)
                if cached is not None:
                    self._cache.move_to_end(cache_key)
                    self._stats.add("cache_hits")
                    span.set(mode="cached", hits=len(cached.result))
                    return cached.result.copy()
            blocks = self.index.candidate_blocks(query)
            candidates = self.index.docs_in_blocks(blocks)
            candidates &= universe
            self.metrics.observe("cba.candidate_blocks", len(blocks))
            if self.fast_path and self._postings_answerable(query):
                # answered exactly from the doc-level postings: no loader
                # fetch, no agrep scan, for any of the candidate docs
                with self.tracer.span("cba.postings"):
                    result = self._postings_eval(query) & universe
                self._stats.add("postings_answers")
                self._stats.add("docs_scan_avoided", len(candidates))
                span.set(mode="postings")
            else:
                candidates = self._prune_by_scope(query, candidates)
                with self.tracer.span("cba.scan", candidates=len(candidates)):
                    result = self._scan(query, candidates)
                span.set(mode="scan")
                self.metrics.observe("cba.scan_docs", len(candidates))
            span.set(blocks=len(blocks), candidates=len(candidates),
                     hits=len(result))
            if cache_key is not None:
                self._cache[cache_key] = _CacheEntry(result.copy(), blocks)
                if len(self._cache) > self._cache_capacity:
                    self._cache.popitem(last=False)
            return result

    def search_blocks(self, query: Node, blocks: Bitmap,
                      scope: Optional[Bitmap] = None) -> Bitmap:
        """Verify an externally planned *query* against externally
        nominated candidate *blocks* — the shard half of the cluster's
        scatter-gather protocol.

        The coordinator has already normalised and selectivity-ordered the
        query and evaluated candidate blocks *globally* (over the union of
        every shard's term→block postings), so this entry point must not
        replan and must not substitute this shard's own, narrower block
        candidacy: a term absent from this shard can still make one of its
        blocks a candidate through a collocated document on another shard,
        and the quirky stopword-region semantics depend on exactly that
        collocation.  Results are not cached here — the answer depends on
        *blocks*, which the coordinator owns.
        """
        self._stats.add("shard_searches")
        if scope is not None and not scope:
            return Bitmap()
        with self.tracer.span("cba.search_blocks") as span:
            universe = self.index.all_docs() if scope is None else scope
            if isinstance(query, MatchAll):
                span.set(mode="matchall", hits=len(universe))
                return universe.copy()
            candidates = self.index.docs_in_blocks(blocks)
            candidates &= universe
            if self.fast_path and self._postings_answerable(query):
                with self.tracer.span("cba.postings"):
                    result = self._postings_eval(query) & universe
                self._stats.add("postings_answers")
                self._stats.add("docs_scan_avoided", len(candidates))
                span.set(mode="postings")
            else:
                candidates = self._prune_by_scope(query, candidates)
                with self.tracer.span("cba.scan", candidates=len(candidates)):
                    result = self._scan(query, candidates)
                span.set(mode="scan")
                self.metrics.observe("cba.scan_docs", len(candidates))
            span.set(blocks=len(blocks), candidates=len(candidates),
                     hits=len(result))
            return result

    def _prune_by_scope(self, query: Node, candidates: Bitmap) -> Bitmap:
        """Shrink scan candidates by the query's *required* scope
        prefixes through the CAS index.  Sound because every match must
        lie under each required prefix, and the scanner applies the same
        registry-path predicate to whatever survives; without a CAS
        index the scanner filters alone (the scan-and-filter baseline
        the CAS ablation contrasts)."""
        if self.cas is None or not candidates:
            return candidates
        for prefix in required_scope_prefixes(query):
            candidates &= self.cas.docs_under(prefix)
            if not candidates:
                break
        return candidates

    def _scan(self, query: Node, candidates: Bitmap) -> Bitmap:
        """Verify *candidates* against *query*, memo-skipping unchanged docs."""
        needs_pairs = self.transducer is not None and has_field_terms(query)
        use_memo = self.fast_path
        result = Bitmap()
        for doc_id in candidates:
            doc = self._docs.get(doc_id)
            if doc is None:
                continue
            if use_memo:
                hit = self._verify_memo.get(doc_id, {}).get(query)
                if hit is not None and hit[0] == doc.mtime:
                    self._stats.add("docs_scan_avoided")
                    if hit[1]:
                        result.add(doc_id)
                    continue
            text = self.loader(doc.key)
            self._stats.add("docs_scanned")
            self._stats.add("bytes_scanned", len(text))
            pairs = (frozenset(self.transducer(doc.path, text))
                     if needs_pairs else agrep.NO_PAIRS)
            verdict = agrep.matches(text, query, pairs, path=doc.path)
            if use_memo:
                self._memoize(doc_id, query, doc.mtime, verdict)
            if verdict:
                result.add(doc_id)
        return result

    def naive_search(self, query: Node, scope: Optional[Bitmap] = None) -> Bitmap:
        """Scan every document in scope, bypassing the block index.

        Exists to cross-check the index (property tests) and to quantify what
        the two-level structure buys (ablation B).
        """
        universe = self.index.all_docs() if scope is None else scope
        needs_pairs = self.transducer is not None and has_field_terms(query)
        result = Bitmap()
        for doc_id in universe:
            doc = self._docs.get(doc_id)
            if doc is None:
                continue
            self._stats.add("naive_docs_scanned")
            text = self.loader(doc.key)
            pairs = (frozenset(self.transducer(doc.path, text))
                     if needs_pairs else agrep.NO_PAIRS)
            if agrep.matches(text, query, pairs, path=doc.path):
                result.add(doc_id)
        return result

    def extract(self, key: Hashable, query: Node) -> List[str]:
        """Match-carrying lines of one document (HAC's ``sact``)."""
        return agrep.matching_lines(self.loader(key), query)

    def estimate_docs(self, node: Node) -> int:
        """Planner selectivity estimate (upper bound on hits)."""
        return self.index.estimate_docs(node)

    # ------------------------------------------------------------------
    # serving tier: published snapshots and read replicas
    #
    # Queries that can tolerate as-of-last-publish answers read from an
    # attached ReadReplica instead of the live engine, so they never
    # trigger (or wait on) a maintenance drain.  The scheduler publishes
    # once per drained batch; ``publish`` with no replicas attached is a
    # bare version bump, so eager mode pays nothing for the machinery.
    # ------------------------------------------------------------------

    def _emit(self, kind: str, doc_id: int, key: Hashable, path: str,
              mtime: float, terms: Optional[Set[str]] = None,
              text: Optional[str] = None) -> None:
        if self.segments is not None:
            # the memtable subsumes the op log: replicas catch up from
            # sealed segments, persistence folds them, so every mutation
            # is noted regardless of whether a replica is attached
            self.segments.note(kind, doc_id, key, path, mtime, terms, text)
        elif self._replicas:
            self._pending_ops.append(
                IndexOp(kind, doc_id, key, path, mtime, terms, text))

    def publish(self) -> int:
        """Publish the current index state as the next snapshot version.

        Replicas that are not deliberately lagged replay the buffered op
        log and stamp the new version; the fully-applied prefix of the
        buffer is then truncated (lagged replicas pin their suffix).
        With the segmented store, the memtable is sealed (an exact
        snapshot cut) and replicas are handed the frozen segments
        appended since their cursor instead of replaying ops — the
        sealed log is truncated at the min cursor the same way.
        Returns the new version.
        """
        self._published_version += 1
        version = self._published_version
        if self._replicas and self.segments is not None:
            self.segments.seal()
            log = self.segments.sealed_log
            upto = len(log)
            for replica in self._replicas:
                if replica.lag > 0:
                    replica.lag -= 1
                    continue
                replica.apply_segments(log, upto, version)
            low = min(r.cursor for r in self._replicas)
            if low:
                self.segments.truncate_log(low)
                for replica in self._replicas:
                    replica.cursor -= low
        elif self.segments is not None:
            # nobody consumes the sealed log without replicas; drop it
            # (a later attach starts its cursor at the log tail anyway)
            self.segments.truncate_log(len(self.segments.sealed_log))
        elif self._replicas:
            upto = len(self._pending_ops)
            for replica in self._replicas:
                if replica.lag > 0:
                    replica.lag -= 1
                    continue
                replica.apply(self._pending_ops, upto, version)
            low = min(r.cursor for r in self._replicas)
            if low:
                del self._pending_ops[:low]
                for replica in self._replicas:
                    replica.cursor -= low
        self._stats.add("publishes")
        return version

    def attach_replica(self, replica_id: Optional[str] = None, lag: int = 0):
        """Attach (and hydrate) a new read replica.

        Hydration copies the engine's current state — between drains the
        engine is at rest at the last published version, so the replica
        starts consistent with it; its op-log cursor starts at the
        buffer's tail so the next publish replays only what it missed.
        """
        from repro.cba.snapshot import ReadReplica

        if replica_id is None:
            replica_id = f"r{len(self._replicas)}"
        replica = ReadReplica(replica_id, self)
        replica.hydrate(self, self._published_version)
        if self.segments is not None:
            # hydration copies live state, which includes the memtable's
            # unsealed rows — the replica is current past the whole log
            replica.cursor = len(self.segments.sealed_log)
        else:
            replica.cursor = len(self._pending_ops)
        replica.lag = lag
        self._replicas.append(replica)
        self._stats.add("replicas_attached")
        return replica

    @property
    def replicas(self) -> List:
        return list(self._replicas)

    def snapshot_view(self):
        """The freshest attached replica — the zero-barrier read path.

        Attaches a first replica lazily, so callers opt into snapshot
        serving simply by asking.  Ties between equally fresh replicas
        rotate round-robin (the freshness-aware routing half of the
        serving tier: a lagged replica is never chosen over a fresh one).
        """
        if not self._replicas:
            self.attach_replica()
        freshest = max(r.version for r in self._replicas)
        candidates = [r for r in self._replicas if r.version == freshest]
        self._route_rr += 1
        self._stats.add("snapshot_reads")
        return candidates[self._route_rr % len(candidates)]

    def snapshot_info(self) -> Dict[str, object]:
        """Published version, buffered op count, and per-replica state.

        Under the segmented store "pending" counts memtable rows plus
        sealed rows some replica has yet to apply, and the live frozen
        segment count is reported alongside.
        """
        info = {
            "version": self._published_version,
            "pending_ops": len(self._pending_ops),
            "replicas": [{"id": r.replica_id, "version": r.version,
                          "lag": r.lag} for r in self._replicas],
        }
        if self.segments is not None:
            info["pending_ops"] = (
                len(self.segments.memtable)
                + sum(len(s) for s in self.segments.sealed_log))
            info["segments"] = len(self.segments.frozen)
        return info

    def set_replica_lag(self, replica_id: str, publishes: int) -> None:
        """Make one replica skip the next *publishes* publishes."""
        for replica in self._replicas:
            if replica.replica_id == replica_id:
                replica.lag = publishes
                return
        raise KeyError(f"no such replica: {replica_id!r}")

    # ------------------------------------------------------------------
    # degradation surface (SearchBackend protocol)
    #
    # A monolithic engine has no shards, so these are the trivial
    # implementations: no owner, nothing ever missing, empty health.
    # Having them lets the consistency cascade and the shell run one
    # unconditional code path against either back-end.
    # ------------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self.index.num_blocks

    @property
    def missing_shards(self) -> Set[str]:
        return set()

    def shard_of(self, key: Hashable) -> None:
        return None

    def reset_missing_shards(self) -> Set[str]:
        return set()

    def health(self) -> Dict[str, str]:
        return {}

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def index_size_bytes(self) -> int:
        """Approximate index footprint, including the registry."""
        registry = sum(len(str(doc.path)) + 40 for doc in self._docs.values())
        return self.index.index_size_bytes() + registry

    # ------------------------------------------------------------------
    # persistence (Glimpse writes its index files to disk; so can we)
    # ------------------------------------------------------------------

    def to_obj(self):
        """Dump index + registry to plain primitives.

        Document keys are assumed to be ``(str, int)`` pairs — the
        ``(fsid, ino)`` keys HAC uses; generic callers with other key
        shapes should persist their own registry.
        """
        return {
            "index": self.index.to_obj(),
            "docs": [[doc.doc_id, list(doc.key), doc.path, doc.mtime,
                      doc.size] for doc in self._docs.values()],
            "next": self._next_doc_id,
        }

    @classmethod
    def from_obj(cls, obj, loader: Callable[[Hashable], str],
                 transducer: Optional[Transducer] = None,
                 counters: Optional[Counters] = None,
                 fast_path: bool = True,
                 cache_size: int = 64,
                 segmented: bool = False,
                 cas: bool = True) -> "CBAEngine":
        """Rebuild an engine from :meth:`to_obj` output without re-reading
        or re-tokenising a single document.  With *segmented*, a fresh
        store is attached and seeded with a base segment covering the
        restored documents, so later compactions and segment restores
        have an upsert row for every live document.  The CAS index is
        derived state (registry paths x index terms) and is rebuilt, not
        persisted."""
        engine = cls(loader=loader, transducer=transducer, counters=counters,
                     fast_path=fast_path, cache_size=cache_size,
                     segmented=segmented, cas=cas)
        engine.index = GlimpseIndex.from_obj(obj["index"],
                                             counters=engine.counters,
                                             track_doc_postings=fast_path)
        engine.index.scope_counter = engine.scope_count
        for doc_id, raw_key, path, mtime, size in obj["docs"]:
            key = (raw_key[0], raw_key[1])
            engine._docs[doc_id] = Document(doc_id, key, path, mtime, size)
            engine._by_key[key] = doc_id
        engine._next_doc_id = obj["next"]
        if engine.segments is not None:
            engine.segments.seed_base(engine.doc_rows())
        engine.rebuild_cas()
        engine._stats.add("restored_docs", len(engine._docs))
        return engine

    def doc_rows(self) -> Dict[Hashable, "SegmentRow"]:
        """Synthesize upsert :class:`SegmentRow`\\ s for every live
        document from the index's removal map (term ids → strings via the
        lexicon) — no loader read, no tokenisation.  Text is omitted;
        rows built here seed base segments, never replica catch-up."""
        lexicon = self.index.lexicon
        rows: Dict[Hashable, SegmentRow] = {}
        for doc_id, doc in self._docs.items():
            terms = frozenset(lexicon.term(tid)
                              for tid in self.index._doc_terms.get(doc_id, ()))
            rows[doc.key] = SegmentRow("upsert", doc_id, doc.key, doc.path,
                                       doc.mtime, doc.size, terms, None)
        return rows

    @classmethod
    def from_segments(cls, store: SegmentStore,
                      loader: Callable[[Hashable], str],
                      next_doc_id: int = 0,
                      transducer: Optional[Transducer] = None,
                      counters: Optional[Counters] = None,
                      fast_path: bool = True,
                      cache_size: int = 64,
                      num_blocks: int = DEFAULT_NUM_BLOCKS,
                      cas: bool = True) -> "CBAEngine":
        """Rebuild an engine by folding *store*'s frozen segments —
        reindex-as-merge.  Each document's newest upsert row carries the
        term set the original engine computed, so the rebuild is pure
        index insertion: zero loader reads, zero tokenisations (the
        counter Ablation N's merge-vs-rebuild guard compares)."""
        engine = cls(loader=loader, num_blocks=num_blocks,
                     transducer=transducer, counters=counters,
                     fast_path=fast_path, cache_size=cache_size,
                     segmented=True, cas=cas)
        engine.segments = store
        rows = store.live_rows()
        for key, row in sorted(rows.items(), key=lambda kv: kv[1].doc_id):
            engine.index.add(row.doc_id, row.terms)
            engine._docs[row.doc_id] = Document(row.doc_id, key, row.path,
                                                row.mtime, row.size)
            engine._by_key[key] = row.doc_id
            engine._next_doc_id = max(engine._next_doc_id, row.doc_id + 1)
        engine._next_doc_id = max(engine._next_doc_id, next_doc_id)
        # the segment rows carry path + terms, so the CAS rebuild is the
        # same zero-tokenisation fold the block index just did
        engine.rebuild_cas()
        engine._stats.add("restored_docs", len(engine._docs))
        engine._stats.add("merged_rows", len(rows))
        return engine

    def corpus_bytes(self) -> int:
        return sum(doc.size for doc in self._docs.values())
