"""The content-based access (CBA) mechanism.

The paper uses Glimpse — a two-level indexing scheme where the index maps
words to *blocks* of files (not individual files), and candidate blocks are
then scanned agrep-style to verify matches.  The index is small; search pays
with some scanning.  This package is a faithful Python reconstruction:

* :mod:`repro.cba.tokenizer` — word extraction;
* :mod:`repro.cba.lexicon` — the term dictionary;
* :mod:`repro.cba.queryast` / :mod:`repro.cba.queryparser` — the boolean
  query language (terms, quoted phrases, AND/OR/NOT, parentheses,
  ``word~k`` approximate terms, and ``/path`` directory references that HAC
  resolves through its global UID map);
* :mod:`repro.cba.glimpse` — the block-level inverted index;
* :mod:`repro.cba.agrep` — per-document verification scans, including
  bounded-edit-distance approximate matching and match-line extraction
  (HAC's ``sact``);
* :mod:`repro.cba.evaluator` — boolean evaluation of a query over a scope;
* :mod:`repro.cba.engine` — the facade HAC talks to (the paper stresses its
  CBA API is narrow enough to swap in any search system);
* :mod:`repro.cba.incremental` — reindex planning from mtime snapshots.
"""

from repro.cba.engine import CBAEngine, Document
from repro.cba.queryast import And, DirRef, Node, Not, Or, Phrase, Term
from repro.cba.queryparser import parse_query
from repro.cba.results import RemoteId, ResultSet

__all__ = [
    "CBAEngine",
    "Document",
    "And",
    "DirRef",
    "Node",
    "Not",
    "Or",
    "Phrase",
    "Term",
    "parse_query",
    "RemoteId",
    "ResultSet",
]
