"""Reindex planning (the data-consistency workhorse, paper §2.4).

HAC settles data inconsistencies *lazily*: at user-initiated ``ssync`` or on
the periodic schedule, the CBA mechanism re-examines the file system and
updates its index.  This module computes the minimal work: given the mtime
snapshot taken at the previous reindex and the current state of the files,
classify every document as added, removed, changed, or untouched.

The planner is pure data — it never touches the index — so it can be tested
exhaustively and benchmarked against full rebuilds (ablation D).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, NamedTuple, Tuple


class ReindexPlan(NamedTuple):
    """The minimal index maintenance implied by a snapshot diff."""

    added: List[Hashable]
    removed: List[Hashable]
    changed: List[Hashable]
    unchanged: int

    @property
    def is_noop(self) -> bool:
        return not (self.added or self.removed or self.changed)

    @property
    def touched(self) -> int:
        return len(self.added) + len(self.removed) + len(self.changed)

    def __repr__(self):
        return (f"ReindexPlan(+{len(self.added)} -{len(self.removed)} "
                f"~{len(self.changed)} ={self.unchanged})")


def plan_reindex(previous: Dict[Hashable, float],
                 current: Dict[Hashable, float]) -> ReindexPlan:
    """Diff two ``{doc key: mtime}`` snapshots into a :class:`ReindexPlan`.

    Keys present only in *current* are added; only in *previous*, removed;
    in both with a different mtime, changed.
    """
    added: List[Hashable] = []
    changed: List[Hashable] = []
    unchanged = 0
    for key, mtime in current.items():
        old = previous.get(key)
        if old is None:
            added.append(key)
        elif old != mtime:
            changed.append(key)
        else:
            unchanged += 1
    removed = [key for key in previous if key not in current]
    return ReindexPlan(added=added, removed=removed,
                       changed=changed, unchanged=unchanged)


def merge_plans(first: ReindexPlan, second: ReindexPlan) -> ReindexPlan:
    """Compose two plans computed against disjoint key sets (e.g. separate
    subtrees reindexed in one ``ssync``)."""
    overlap = (set(first.added + first.removed + first.changed)
               & set(second.added + second.removed + second.changed))
    if overlap:
        raise ValueError(f"plans overlap on {sorted(map(str, overlap))[:3]}...")
    return ReindexPlan(
        added=first.added + second.added,
        removed=first.removed + second.removed,
        changed=first.changed + second.changed,
        unchanged=first.unchanged + second.unchanged,
    )
