"""Recursive-descent parser for the HAC query language.

Grammar (case-insensitive keywords, implicit AND by juxtaposition)::

    query   := or_expr
    or_expr := and_expr ( OR and_expr )*
    and_expr:= unary ( [AND] unary )*        # juxtaposition means AND
    unary   := NOT unary | primary
    primary := '(' query ')' | '"' words '"' | SCOPE | PATH | WORD['~'K] | '*'

``SCOPE`` is ``scope:`` followed immediately by an absolute path — a
subtree-scope predicate matching every indexed document under that
prefix (answered by the CAS index).  ``PATH`` is any token starting
with ``/`` — a directory reference.  The
parser needs a ``resolve_dir`` callback mapping a path to its UID (HAC
passes its global directory map); parsing a path that resolves to no known
directory raises :class:`repro.errors.UnknownDirectoryReference`.

Examples::

    fingerprint AND NOT murder
    "image processing" OR (fbi crime~1)
    fingerprint AND /projects/fbi
    scope:/projects/mail AND fingerprint
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional

from repro.errors import QuerySyntaxError, UnknownDirectoryReference
from repro.cba.queryast import (
    And,
    Approx,
    DirRef,
    FieldTerm,
    MatchAll,
    Node,
    Not,
    Or,
    Phrase,
    ScopeTerm,
    Term,
)
from repro.cba.tokenizer import tokenize

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<phrase>"[^"]*")
  | (?P<star>\*)
  | (?P<scope>[Ss][Cc][Oo][Pp][Ee]:/[^\s()"]*)
  | (?P<path>/[^\s()"]*)
  | (?P<pair>[A-Za-z0-9_]+:[A-Za-z0-9_]+)
  | (?P<word>[A-Za-z0-9_]+(?:~[0-9]+)?)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not"}


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self):
        return f"_Token({self.kind}, {self.text!r}, {self.pos})"


def _lex(query: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(query):
        m = _TOKEN_RE.match(query, pos)
        if m is None:
            raise QuerySyntaxError(query, pos, f"unexpected character {query[pos]!r}")
        kind = m.lastgroup or ""
        if kind != "ws":
            text = m.group(0)
            if kind == "word" and text.lower() in _KEYWORDS:
                kind = text.lower()
            tokens.append(_Token(kind, text, pos))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, query: str,
                 resolve_dir: Optional[Callable[[str], Optional[int]]]):
        self.query = query
        self.resolve_dir = resolve_dir
        self.tokens = _lex(query)
        self.index = 0

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def advance(self) -> _Token:
        tok = self.tokens[self.index]
        self.index += 1
        return tok

    def expect(self, kind: str) -> _Token:
        tok = self.peek()
        if tok is None or tok.kind != kind:
            pos = tok.pos if tok else len(self.query)
            raise QuerySyntaxError(self.query, pos, f"expected {kind}")
        return self.advance()

    # grammar ----------------------------------------------------------------

    def parse(self) -> Node:
        if not self.tokens:
            return MatchAll()
        node = self.or_expr()
        tok = self.peek()
        if tok is not None:
            raise QuerySyntaxError(self.query, tok.pos,
                                   f"unexpected {tok.text!r}")
        return node

    def or_expr(self) -> Node:
        operands = [self.and_expr()]
        while True:
            tok = self.peek()
            if tok is not None and tok.kind == "or":
                self.advance()
                operands.append(self.and_expr())
            else:
                break
        return operands[0] if len(operands) == 1 else Or(operands)

    _PRIMARY_STARTERS = {"lparen", "phrase", "scope", "path", "word",
                         "pair", "star", "not"}

    def and_expr(self) -> Node:
        operands = [self.unary()]
        while True:
            tok = self.peek()
            if tok is None:
                break
            if tok.kind == "and":
                self.advance()
                operands.append(self.unary())
            elif tok.kind in self._PRIMARY_STARTERS:
                # juxtaposition: "fingerprint image" == fingerprint AND image
                operands.append(self.unary())
            else:
                break
        return operands[0] if len(operands) == 1 else And(operands)

    def unary(self) -> Node:
        tok = self.peek()
        if tok is not None and tok.kind == "not":
            self.advance()
            return Not(self.unary())
        return self.primary()

    def primary(self) -> Node:
        tok = self.peek()
        if tok is None:
            raise QuerySyntaxError(self.query, len(self.query), "expected operand")
        if tok.kind == "lparen":
            self.advance()
            node = self.or_expr()
            self.expect("rparen")
            return node
        if tok.kind == "phrase":
            self.advance()
            words = tokenize(tok.text[1:-1])
            if not words:
                raise QuerySyntaxError(self.query, tok.pos, "empty phrase")
            return Phrase(words) if len(words) > 1 else Term(words[0])
        if tok.kind == "star":
            self.advance()
            return MatchAll()
        if tok.kind == "scope":
            self.advance()
            prefix = tok.text.partition(":")[2].rstrip("/") or "/"
            return ScopeTerm(prefix)
        if tok.kind == "path":
            self.advance()
            if self.resolve_dir is None:
                raise QuerySyntaxError(
                    self.query, tok.pos,
                    "directory references are not allowed in this context")
            uid = self.resolve_dir(tok.text.rstrip("/") or "/")
            if uid is None:
                raise UnknownDirectoryReference(tok.text)
            return DirRef(uid)
        if tok.kind == "pair":
            self.advance()
            field, _, value = tok.text.partition(":")
            return FieldTerm(field, value)
        if tok.kind == "word":
            self.advance()
            if "~" in tok.text:
                word, _, k = tok.text.partition("~")
                return Approx(word, int(k))
            return Term(tok.text)
        raise QuerySyntaxError(self.query, tok.pos, f"unexpected {tok.text!r}")


def parse_query(query: str,
                resolve_dir: Optional[Callable[[str], Optional[int]]] = None
                ) -> Node:
    """Parse query text to an AST.

    :param resolve_dir: maps a ``/path`` reference to the directory's UID
        (or None if unknown).  Omit to forbid directory references — remote
        name spaces use this mode, since their query language has no notion
        of the local hierarchy.
    """
    return _Parser(query, resolve_dir).parse()
