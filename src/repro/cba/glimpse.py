"""The Glimpse-style two-level block index.

Glimpse's key idea: instead of mapping each word to the *files* containing
it (a big index), map each word to the *blocks* of files containing it — a
few hundred blocks regardless of corpus size — then scan the candidate
blocks' files to verify.  The index stays a few percent of the corpus size;
search trades index precision for scanning.

This module implements that structure:

* documents are assigned to one of ``num_blocks`` blocks (``doc_id %
  num_blocks``, a locality-free but deterministic partition);
* postings map interned term-ids to a :class:`Bitmap` of block ids;
* per-block per-term occurrence counts make document removal exact (real
  Glimpse rebuilds instead; we keep counts so incremental deletion works
  without a rebuild, and note the extra space in ``index_size_bytes``);
* :meth:`candidate_blocks` evaluates a query AST at block granularity —
  the coarse filter whose false positives the agrep scan removes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set

from repro.util.bitmap import Bitmap
from repro.util.stats import Counters
from repro.cba.lexicon import Lexicon
from repro.cba.queryast import (
    And,
    Approx,
    DirRef,
    FieldTerm,
    MatchAll,
    Node,
    Not,
    Or,
    Phrase,
    ScopeTerm,
    Term,
)

DEFAULT_NUM_BLOCKS = 64


def eval_blocks(node: Node, term_blocks: Callable[[str], Bitmap],
                all_blocks: Bitmap) -> Bitmap:
    """Block-granularity evaluation of a query AST.

    *term_blocks(term)* returns a caller-owned bitmap of blocks whose
    member documents carry *term* (empty when the term is unknown);
    *all_blocks* is the occupied block set.  Factored out of
    :class:`GlimpseIndex` so the cluster coordinator can evaluate the same
    algebra over the *union* of every shard's term→block postings: with
    global doc ids the blocks line up across shards, and candidate blocks
    computed here once are exactly the monolithic engine's.
    """
    if isinstance(node, Term):
        return term_blocks(node.word)
    if isinstance(node, FieldTerm):
        return term_blocks(f"{node.field}:{node.value}")
    if isinstance(node, Phrase):
        out = all_blocks.copy()
        for word in node.words:
            out &= term_blocks(word)
            if not out:
                break
        return out
    if isinstance(node, Approx):
        # the exact-word index cannot bound an approximate term; every
        # block is a candidate (agrep will pay for it, as in Glimpse)
        return all_blocks.copy()
    if isinstance(node, MatchAll):
        return all_blocks.copy()
    if isinstance(node, And):
        out = all_blocks.copy()
        for child in node.children:
            out &= eval_blocks(child, term_blocks, all_blocks)
            if not out:
                break
        return out
    if isinstance(node, Or):
        out = Bitmap()
        for child in node.children:
            out |= eval_blocks(child, term_blocks, all_blocks)
        return out
    if isinstance(node, Not):
        # at block granularity NOT cannot prune: a block containing the
        # negated word may still hold documents without it
        return all_blocks.copy()
    if isinstance(node, ScopeTerm):
        # blocks are doc-id-modular and path-blind, so the path dimension
        # cannot prune here; the CAS index prunes at doc granularity
        return all_blocks.copy()
    if isinstance(node, DirRef):
        raise TypeError("DirRef reached the block index; the evaluator "
                        "must resolve directory references first")
    raise TypeError(f"unknown query node: {type(node).__name__}")


def estimate_docs(node: Node, df: Callable[[str], int], total: int,
                  scope_count: Optional[Callable[[str], int]] = None) -> int:
    """Upper-bound-ish estimate of matching documents for *node*.

    *df(term)* is the exact document frequency, *total* the corpus size.
    *scope_count(prefix)* is the exact count of indexed documents under a
    path prefix (the CAS index's path-dimension selectivity); without it
    scope terms pessimistically estimate the whole corpus.  Everything
    else the index cannot bound (Approx, Not, MatchAll, DirRef)
    estimates the whole corpus too.  Module-level so the cluster
    coordinator can run the identical estimator over summed per-shard
    frequencies — document frequencies, corpus sizes, and per-shard
    scope counts are additive over a partition, so the coordinator's
    estimates (and hence the planner's stable sort) match the monolithic
    engine exactly.
    """
    if isinstance(node, Term):
        return df(node.word)
    if isinstance(node, FieldTerm):
        return df(f"{node.field}:{node.value}")
    if isinstance(node, Phrase):
        if not node.words:
            return total
        return min(df(w) for w in node.words)
    if isinstance(node, ScopeTerm):
        return total if scope_count is None else scope_count(node.prefix)
    if isinstance(node, And):
        if not node.children:
            return total
        return min(estimate_docs(c, df, total, scope_count)
                   for c in node.children)
    if isinstance(node, Or):
        return min(total, sum(estimate_docs(c, df, total, scope_count)
                              for c in node.children))
    return total


class GlimpseIndex:
    """Block-level inverted index over bags of terms."""

    def __init__(self, num_blocks: int = DEFAULT_NUM_BLOCKS,
                 counters: Optional[Counters] = None,
                 track_doc_postings: bool = True):
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        self.num_blocks = num_blocks
        self._stats = (counters or Counters()).scoped("glimpse")
        self.lexicon = Lexicon()
        #: term-id → bitmap of block ids
        self._postings: Dict[int, Bitmap] = {}
        #: block id → {term-id: docs-in-block-containing-term}
        self._block_counts: Dict[int, Dict[int, int]] = {}
        #: doc id → term-id set (needed for exact removal)
        self._doc_terms: Dict[int, Set[int]] = {}
        #: block id → bitmap of member doc ids
        self._block_docs: Dict[int, Bitmap] = {}
        #: term-id → bitmap of doc ids — the query fast path's exact
        #: doc-level postings.  An in-memory acceleration structure, not
        #: part of the paper's two-level on-disk index: it is not
        #: persisted (rebuilt from ``_doc_terms`` on restore) and not
        #: counted in :meth:`index_size_bytes`.
        self.track_doc_postings = track_doc_postings
        self._doc_postings: Dict[int, Bitmap] = {}
        self._all_docs = Bitmap()
        self._all_blocks = Bitmap()
        #: exact count of indexed docs under a path prefix — wired by the
        #: owning engine (CAS index or registry scan) so scope terms get
        #: real selectivity in :meth:`estimate_docs`
        self.scope_counter: Optional[Callable[[str], int]] = None

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def block_of(self, doc_id: int) -> int:
        return doc_id % self.num_blocks

    def add(self, doc_id: int, terms: Iterable[str]) -> bool:
        """Index a new document given its distinct terms.

        Returns True when the mutation may have *raised* some query's
        block candidacy — the block gained a term it lacked, or went from
        empty to occupied.  Block candidacy is monotone in those inputs
        (``Not`` nominates every block without consulting its child), so
        a False return lets the engine skip recomputing candidate blocks
        for its cached results.
        """
        if doc_id in self._doc_terms:
            raise ValueError(f"doc {doc_id} already indexed")
        block = self.block_of(doc_id)
        grew = block not in self._all_blocks
        term_ids: Set[int] = set()
        counts = self._block_counts.setdefault(block, {})
        for term in terms:
            tid = self.lexicon.add_occurrence(term)
            term_ids.add(tid)
            counts[tid] = counts.get(tid, 0) + 1
            posting = self._postings.get(tid)
            if posting is None:
                posting = self._postings[tid] = Bitmap()
            if block not in posting:
                posting.add(block)
                grew = True
        if self.track_doc_postings:
            for tid in term_ids:
                docs = self._doc_postings.get(tid)
                if docs is None:
                    docs = self._doc_postings[tid] = Bitmap()
                docs.add(doc_id)
        self._doc_terms[doc_id] = term_ids
        self._block_docs.setdefault(block, Bitmap()).add(doc_id)
        self._all_docs.add(doc_id)
        self._all_blocks.add(block)
        self._stats.add("docs_added")
        return grew

    def remove(self, doc_id: int) -> bool:
        """Withdraw a document, pruning postings that empty out.

        Returns False always: a removal only clears block bits, and block
        candidacy is monotone in them, so no query's candidacy can rise
        (see :meth:`add`)."""
        term_ids = self._doc_terms.pop(doc_id, None)
        if term_ids is None:
            raise KeyError(f"doc {doc_id} not indexed")
        block = self.block_of(doc_id)
        counts = self._block_counts[block]
        for tid in term_ids:
            term = self.lexicon.term(tid)
            counts[tid] -= 1
            if counts[tid] <= 0:
                del counts[tid]
                self._postings[tid].discard(block)
                if not self._postings[tid]:
                    del self._postings[tid]
            if self.track_doc_postings:
                docs = self._doc_postings.get(tid)
                if docs is not None:
                    docs.discard(doc_id)
                    if not docs:
                        del self._doc_postings[tid]
            self.lexicon.drop_occurrence(term)
        block_docs = self._block_docs[block]
        block_docs.discard(doc_id)
        if not block_docs:
            del self._block_docs[block]
            self._block_counts.pop(block, None)
            self._all_blocks.discard(block)
        self._all_docs.discard(doc_id)
        self._stats.add("docs_removed")
        return False

    def update(self, doc_id: int, terms: Iterable[str]) -> bool:
        """Re-tokenise a document in place.

        Returns True when the update may have raised some query's block
        candidacy (see :meth:`add`): the new version carries a term its
        block lacked before the update.  Comparing against the
        *pre-remove* state keeps churn cheap — a doc re-adding the terms
        it already held (the common reindex case) reports False even when
        it was its block's sole holder of some of them.
        """
        block = self.block_of(doc_id)
        new_terms = list(terms)
        pre = set()
        for term in new_terms:
            tid = self.lexicon.lookup(term)
            if tid is not None and block in self._postings.get(tid, ()):
                pre.add(term)
        self.remove(doc_id)
        self.add(doc_id, new_terms)
        self._stats.add("docs_updated")
        return any(term not in pre for term in new_terms)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._doc_terms

    def __len__(self) -> int:
        return len(self._doc_terms)

    # ------------------------------------------------------------------
    # block-level query evaluation (the coarse filter)
    # ------------------------------------------------------------------

    def candidate_blocks(self, query: Node) -> Bitmap:
        """Blocks that *may* contain matches; never misses a true match."""
        self._stats.add("block_lookups")
        blocks = self._blocks(query)
        # "blocks scanned vs skipped": how much of the occupied index the
        # coarse filter ruled out for this query (observability metric)
        self._stats.add("blocks_nominated", len(blocks))
        self._stats.add("blocks_skipped",
                        max(0, len(self._all_blocks) - len(blocks)))
        return blocks

    def _blocks(self, node: Node) -> Bitmap:
        return eval_blocks(node, self.blocks_with_term, self._all_blocks)

    def blocks_with_term(self, term: str) -> Bitmap:
        """Blocks whose member documents carry *term* (a fresh bitmap;
        empty when the term is unknown).  The per-term granularity the
        cluster coordinator unions across shards."""
        tid = self.lexicon.lookup(term)
        if tid is None:
            return Bitmap()
        return self._postings[tid].copy()

    def occupied_blocks(self) -> Bitmap:
        """Copy of the occupied block set."""
        return self._all_blocks.copy()

    def docs_in_blocks(self, blocks: Bitmap) -> Bitmap:
        """Union of member documents across *blocks*."""
        out = Bitmap()
        for block in blocks:
            docs = self._block_docs.get(block)
            if docs is not None:
                out |= docs
        return out

    def all_docs(self) -> Bitmap:
        return self._all_docs.copy()

    # ------------------------------------------------------------------
    # doc-level postings (query fast path)
    # ------------------------------------------------------------------

    def docs_with_term(self, term: str) -> Bitmap:
        """Exact document set containing *term* (fast path only).

        Requires ``track_doc_postings``; raises otherwise so a misconfigured
        engine fails loudly instead of silently returning nothing.
        """
        if not self.track_doc_postings:
            raise RuntimeError("doc-level postings are not being tracked")
        tid = self.lexicon.lookup(term)
        if tid is None:
            return Bitmap()
        docs = self._doc_postings.get(tid)
        return docs.copy() if docs is not None else Bitmap()

    def doc_postings_bytes(self) -> int:
        """In-memory footprint of the doc-level postings, reported apart
        from :meth:`index_size_bytes` so the paper's Table-3 space-overhead
        shape is unaffected by the fast path."""
        return sum(bm.nbytes for bm in self._doc_postings.values())

    # ------------------------------------------------------------------
    # selectivity estimation (query planner)
    # ------------------------------------------------------------------

    def estimate_docs(self, node: Node) -> int:
        """Upper-bound-ish estimate of matching documents for *node*.

        Term/FieldTerm read exact document frequencies from the lexicon
        (see module-level :func:`estimate_docs`).  Only used for ordering
        conjunctions — never for answering queries — so coarseness is fine.
        """
        return estimate_docs(node, self.lexicon.df, len(self._doc_terms),
                             self.scope_counter)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def index_size_bytes(self) -> int:
        """Approximate on-disk footprint of the two-level index."""
        postings = sum(bm.nbytes for bm in self._postings.values())
        counts = sum(6 * len(c) for c in self._block_counts.values())
        membership = sum(bm.nbytes for bm in self._block_docs.values())
        return self.lexicon.approximate_bytes() + postings + counts + membership

    def block_sizes(self) -> Dict[int, int]:
        """Documents per block — the partition-skew diagnostic."""
        return {block: len(docs) for block, docs in self._block_docs.items()}

    # ------------------------------------------------------------------
    # persistence (the ".glimpse index files" of the real tool)
    # ------------------------------------------------------------------

    def to_obj(self):
        """Dump to primitives; numeric collections are packed as raw
        ``array('I')`` bytes so the record codec handles a few large blobs
        instead of tens of thousands of small integers (recovery speed)."""
        from array import array

        return {
            "num_blocks": self.num_blocks,
            "lexicon": self.lexicon.to_obj(),
            "postings": {str(tid): bm.to_bytes()
                         for tid, bm in self._postings.items()},
            "block_counts": {
                str(b): array("I", [x for t, c in sorted(counts.items())
                                    for x in (t, c)]).tobytes()
                for b, counts in self._block_counts.items()},
            "doc_terms": {str(doc): array("I", sorted(tids)).tobytes()
                          for doc, tids in self._doc_terms.items()},
            "block_docs": {str(b): bm.to_bytes()
                           for b, bm in self._block_docs.items()},
        }

    @classmethod
    def from_obj(cls, obj, counters: Optional[Counters] = None,
                 track_doc_postings: bool = True) -> "GlimpseIndex":
        from array import array

        def unpack(raw):
            arr = array("I")
            arr.frombytes(raw)
            return arr

        idx = cls(num_blocks=obj["num_blocks"], counters=counters,
                  track_doc_postings=track_doc_postings)
        idx.lexicon = Lexicon.from_obj(obj["lexicon"])
        idx._postings = {int(t): Bitmap.from_bytes(raw)
                         for t, raw in obj["postings"].items()}
        idx._block_counts = {}
        for b, raw in obj["block_counts"].items():
            flat = unpack(raw)
            idx._block_counts[int(b)] = {flat[i]: flat[i + 1]
                                         for i in range(0, len(flat), 2)}
        idx._doc_terms = {int(d): set(unpack(raw))
                          for d, raw in obj["doc_terms"].items()}
        idx._block_docs = {int(b): Bitmap.from_bytes(raw)
                           for b, raw in obj["block_docs"].items()}
        for doc in idx._doc_terms:
            idx._all_docs.add(doc)
        for block in idx._block_docs:
            idx._all_blocks.add(block)
        if track_doc_postings:
            # doc postings are not persisted (an in-memory acceleration
            # structure); rebuild from the removal map we already keep
            for doc, tids in idx._doc_terms.items():
                for tid in tids:
                    docs = idx._doc_postings.get(tid)
                    if docs is None:
                        docs = idx._doc_postings[tid] = Bitmap()
                    docs.add(doc)
        return idx
