"""LSM-style storage for the Glimpse index: memtable + immutable segments.

The live :class:`~repro.cba.engine.CBAEngine` keeps serving queries from
its in-memory aggregates — nothing on the read path changes, which is
what makes the segmented engine trivially bit-identical to the monolith.
What this module restructures is the *storage and publication* plane:
every mutation the engine performs is also noted as a :class:`SegmentRow`
in a small mutable **memtable**; sealing freezes the memtable into an
immutable, doc-id-sorted :class:`Segment`; and background **compaction**
folds the frozen segment list into one merged segment, newest row per
document key winning.  Rows carry the term set the engine computed, so
every downstream consumer — replica catch-up, compaction, recovery —
is pure index manipulation: the tokenizer never runs off the write path.

Three consumers share the structure:

* **Persistence** — :class:`~repro.core.hacfs.HacFileSystem` writes each
  frozen segment as a ``seg:<id>`` device record plus a ``segmanifest``
  listing the live segment ids, *only inside journal intents* (the
  scheduler's ``sched_batch`` drains and ``reindex``), so the WAL's
  pre-images roll a mid-seal or mid-compaction crash back to a
  consistent segment list.  Serialized segments drop the document text
  (recovery re-reads through the loader) to keep WAL amplification flat.
* **Publication** — ``publish()`` seals the memtable and hands replicas
  the frozen segments appended since their cursor (an append-only sealed
  log, truncated at the min-cursor like the op log it replaces) instead
  of replaying per-op deltas.
* **Recovery** — restore folds the persisted segments back into engine
  state with **zero tokenisation** (reindex-as-merge); rows that were
  still in the memtable at the crash are healed by the recovery
  ``ssync``'s mtime diff, exactly like any other un-reindexed write.

Compaction policy: seal when the memtable holds ``seal_threshold`` rows
(or at every publish with replicas attached — the snapshot cut must be
exact), compact when the frozen list exceeds ``compact_threshold``
segments.  Both thresholds are knobs; the crash sweep pins
``seal_threshold=1`` to force a seal-and-persist inside every drain.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, NamedTuple, Optional, Set, Tuple

from repro.util import pathutil
from repro.util.stats import Counters

#: memtable rows before a drain-time seal (publish-time seals ignore it)
DEFAULT_SEAL_THRESHOLD = 32
#: frozen segments before drain-time compaction folds them into one
DEFAULT_COMPACT_THRESHOLD = 8


class SegmentRow(NamedTuple):
    """One document's latest state within a segment.

    ``kind`` is ``'upsert'`` (document present, with its term set),
    ``'remove'`` (a tombstone: the key is gone, shadowing any older
    segment's upsert), or ``'rename'`` (path-only refresh of a document
    whose upsert lives in an older segment).  ``text`` rides along in
    memory for replica catch-up but is never serialized.
    """

    kind: str
    doc_id: int
    key: Hashable
    path: str
    mtime: float
    size: int
    terms: Optional[frozenset] = None
    text: Optional[str] = None

    def to_obj(self):
        return [self.kind, self.doc_id, list(self.key), self.path,
                self.mtime, self.size,
                None if self.terms is None else sorted(self.terms)]

    @classmethod
    def from_obj(cls, obj) -> "SegmentRow":
        kind, doc_id, raw_key, path, mtime, size, terms = obj
        return cls(kind, doc_id, (raw_key[0], raw_key[1]), path, mtime,
                   size, None if terms is None else frozenset(terms), None)


class Segment:
    """An immutable, doc-id-sorted run of rows produced by one seal."""

    __slots__ = ("seg_id", "rows")

    def __init__(self, seg_id: str, rows: Tuple[SegmentRow, ...]):
        self.seg_id = seg_id
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self):
        return f"Segment({self.seg_id!r}, rows={len(self.rows)})"

    def cas_runs(self) -> Dict[str, Tuple[SegmentRow, ...]]:
        """The segment's CAS runs: upsert rows grouped by parent-directory
        prefix, path-ordered within each run — the path-dimension view of
        this immutable run of rows.  The CAS index itself is derived state
        (rebuilt from registry + term store on restore), so runs are
        materialised from the rows already persisted, never written twice;
        audits fold them to cross-check prefix keys against the registry.
        """
        grouped: Dict[str, List[SegmentRow]] = {}
        for row in self.rows:
            if row.kind != "upsert":
                continue
            grouped.setdefault(pathutil.dirname(row.path), []).append(row)
        return {prefix: tuple(sorted(rows, key=lambda r: (r.path, r.doc_id)))
                for prefix, rows in grouped.items()}

    def to_obj(self):
        return {"id": self.seg_id, "rows": [r.to_obj() for r in self.rows]}

    @classmethod
    def from_obj(cls, obj) -> "Segment":
        return cls(obj["id"],
                   tuple(SegmentRow.from_obj(r) for r in obj["rows"]))


def _coalesce(prior: Optional[SegmentRow], row: SegmentRow) -> SegmentRow:
    """Newest-wins merge of two rows for the same document key.

    Upserts and removes replace outright; a rename folds its path into a
    prior upsert (the document's contents are unchanged) and stands alone
    otherwise, waiting for an older segment's upsert to absorb it.
    """
    if row.kind != "rename" or prior is None:
        return row
    if prior.kind == "upsert":
        return prior._replace(path=row.path, mtime=row.mtime)
    return prior  # rename after remove: the tombstone wins


class SegmentStore:
    """The memtable + frozen-segment list behind a segmented engine.

    Pure data structure: it never touches the device.  The owning
    :class:`~repro.core.hacfs.HacFileSystem` persists frozen segments
    inside journal intents and records what it wrote in
    :attr:`persisted`, so a later persist pass knows which segments need
    writing and which device records became garbage after a compaction.
    """

    def __init__(self, counters: Optional[Counters] = None,
                 seal_threshold: int = DEFAULT_SEAL_THRESHOLD,
                 compact_threshold: int = DEFAULT_COMPACT_THRESHOLD):
        #: key → coalesced newest row (insertion-ordered)
        self.memtable: Dict[Hashable, SegmentRow] = {}
        #: the live segment list, oldest first (compaction rewrites it)
        self.frozen: List[Segment] = []
        #: append-only seal order for replica catch-up; truncated at the
        #: replicas' min cursor, never rewritten by compaction
        self.sealed_log: List[Segment] = []
        #: segment ids with a current ``seg:<id>`` device record
        self.persisted: Set[str] = set()
        self.seal_threshold = seal_threshold
        self.compact_threshold = compact_threshold
        self._next_seg = 0
        counters = counters if counters is not None else Counters()
        self._stats = counters.scoped("segments")

    # ------------------------------------------------------------------
    # memtable
    # ------------------------------------------------------------------

    def note(self, kind: str, doc_id: int, key: Hashable, path: str,
             mtime: float, terms: Optional[Set[str]] = None,
             text: Optional[str] = None) -> None:
        """Append one engine mutation to the memtable (coalescing).

        ``kind`` uses the engine's emission vocabulary: ``index`` and
        ``update`` both become upserts, ``remove`` a tombstone,
        ``rename`` a path refresh.
        """
        if kind in ("index", "update"):
            row = SegmentRow("upsert", doc_id, key, path, mtime,
                             len(text or ""),
                             None if terms is None else frozenset(terms),
                             text)
        elif kind == "remove":
            row = SegmentRow("remove", doc_id, key, path, mtime, 0)
        elif kind == "rename":
            row = SegmentRow("rename", doc_id, key, path, mtime, 0)
        else:
            raise ValueError(f"unknown segment row kind: {kind!r}")
        self.memtable[key] = _coalesce(self.memtable.get(key), row)
        self._stats.add("noted")

    # ------------------------------------------------------------------
    # sealing and compaction
    # ------------------------------------------------------------------

    @property
    def should_seal(self) -> bool:
        return len(self.memtable) >= self.seal_threshold

    @property
    def should_compact(self) -> bool:
        return len(self.frozen) > self.compact_threshold

    def seal(self) -> Optional[Segment]:
        """Freeze the memtable into a new immutable segment.

        The segment joins both the live list and the sealed log; returns
        ``None`` when the memtable is empty (sealing is idempotent at
        publish boundaries).
        """
        if not self.memtable:
            return None
        rows = tuple(sorted(self.memtable.values(),
                            key=lambda r: (r.doc_id, r.kind)))
        self.memtable.clear()
        seg = Segment(f"s{self._next_seg:06d}", rows)
        self._next_seg += 1
        self.frozen.append(seg)
        self.sealed_log.append(seg)
        self._stats.add("seals")
        self._stats.add("sealed_rows", len(rows))
        return seg

    def compact(self) -> Optional[Tuple[Segment, List[str]]]:
        """Fold the whole frozen list into one merged segment.

        Newest row per key wins; tombstones drop out entirely (after a
        full merge, an absent key *is* the tombstone) and renames fold
        into the upserts they refreshed.  Returns the merged segment and
        the replaced segment ids (whose device records are now garbage),
        or ``None`` when there is nothing to merge down.
        """
        if len(self.frozen) <= 1:
            return None
        merged: Dict[Hashable, SegmentRow] = {}
        for seg in self.frozen:
            for row in seg.rows:
                merged[row.key] = _coalesce(merged.get(row.key), row)
        rows = tuple(sorted(
            (r for r in merged.values() if r.kind != "remove"),
            key=lambda r: (r.doc_id, r.kind)))
        dropped = [seg.seg_id for seg in self.frozen]
        seg = Segment(f"s{self._next_seg:06d}", rows)
        self._next_seg += 1
        self.frozen = [seg]
        self._stats.add("compactions")
        self._stats.add("compacted_rows", len(rows))
        return seg, dropped

    # ------------------------------------------------------------------
    # replica handoff
    # ------------------------------------------------------------------

    def truncate_log(self, upto: int) -> None:
        """Drop the fully-applied prefix of the sealed log."""
        if upto:
            del self.sealed_log[:upto]

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def live_rows(self) -> Dict[Hashable, SegmentRow]:
        """Fold the frozen list (oldest → newest) into final per-key rows.

        Tombstoned keys and renames that never found their upsert are
        dropped — what remains is exactly the document set a restore
        should rebuild, with zero tokenisation.
        """
        folded: Dict[Hashable, SegmentRow] = {}
        for seg in self.frozen:
            for row in seg.rows:
                folded[row.key] = _coalesce(folded.get(row.key), row)
        return {key: row for key, row in folded.items()
                if row.kind == "upsert"}

    def to_manifest(self) -> Dict[str, object]:
        """The ``segmanifest`` payload: live segment ids in fold order."""
        return {"segments": [seg.seg_id for seg in self.frozen],
                "next_seg": self._next_seg}

    def load_frozen(self, manifest: Dict[str, object],
                    segments: List[Segment]) -> None:
        """Adopt persisted segments as the frozen list (restore path)."""
        self.frozen = list(segments)
        self.persisted = {seg.seg_id for seg in segments}
        self._next_seg = int(manifest.get("next_seg", len(segments)))
        self._stats.add("segments_loaded", len(segments))

    def seed_base(self, rows: Dict[Hashable, SegmentRow]) -> None:
        """Install a synthetic base segment covering *rows*.

        Used when segments are enabled over pre-existing engine state
        (e.g. a restore from a ``cbaindex`` snapshot): later compactions
        and segment restores need every live document to have an upsert
        row somewhere in the frozen list.
        """
        if not rows:
            return
        base = Segment(f"s{self._next_seg:06d}",
                       tuple(sorted(rows.values(),
                                    key=lambda r: (r.doc_id, r.kind))))
        self._next_seg += 1
        self.frozen.insert(0, base)
        self._stats.add("base_seeded", len(base))

    def __repr__(self):
        return (f"SegmentStore(memtable={len(self.memtable)}, "
                f"frozen={len(self.frozen)}, "
                f"log={len(self.sealed_log)})")
