"""Word extraction for indexing and scanning.

Glimpse indexes lower-cased alphanumeric words.  We follow suit: a token is
a maximal run of ASCII letters/digits (plus ``_``), lower-cased.  Tokens
shorter than ``min_length`` are skipped at *index* time but still visible to
the scanner, so quoted phrases like ``"fingerprint of a"`` verify correctly.

The tokenizer is deliberately stateless module-level code — it is on the hot
path of both indexing and agrep verification.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Set

_WORD_RE = re.compile(r"[A-Za-z0-9_]+")

#: words too common to be worth block postings (tiny, Glimpse-flavoured list)
DEFAULT_STOPWORDS: Set[str] = {
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in",
    "is", "it", "of", "on", "or", "that", "the", "to", "was", "with",
}


def tokenize(text: str) -> List[str]:
    """All tokens of *text*, in order, lower-cased.

    >>> tokenize("Fingerprint-matching, FBI_v2!")
    ['fingerprint', 'matching', 'fbi_v2']
    """
    return [m.group(0).lower() for m in _WORD_RE.finditer(text)]


def iter_tokens(text: str) -> Iterator[str]:
    """Streaming variant of :func:`tokenize`."""
    for m in _WORD_RE.finditer(text):
        yield m.group(0).lower()


def index_terms(text: str, min_length: int = 2,
                stopwords: Set[str] = DEFAULT_STOPWORDS) -> Set[str]:
    """The distinct terms a document contributes to the index."""
    return {
        tok for tok in iter_tokens(text)
        if len(tok) >= min_length and tok not in stopwords
    }


def tokenize_lines(text: str) -> List[List[str]]:
    """Per-line token lists, used by match-line extraction (``sact``)."""
    return [tokenize(line) for line in text.splitlines()]


def normalize_word(word: str) -> str:
    """Canonical form of a single query term."""
    tokens = tokenize(word)
    if len(tokens) != 1:
        raise ValueError(f"not a single word: {word!r}")
    return tokens[0]
