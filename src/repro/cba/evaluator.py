"""Boolean evaluation of full HAC queries (content + directory references).

The engine itself only understands content predicates.  Queries in HAC may
also reference directories ("``fingerprint AND /projects/fbi``", and — under
the covers — every child semantic directory's implicit ``AND <parent>``).
This evaluator bridges the two: it walks the AST, hands maximal
*content-only* subtrees to :meth:`CBAEngine.search` in one shot (so a
document is scanned once per subtree, not once per leaf), and resolves
``DirRef`` nodes through a callback that HAC backs with each directory's
stored query-result (paper §2.5: "the CBA mechanism can use HAC's API to
obtain the existing query-result stored in that directory").

Every intermediate result is a :class:`Bitmap` that is, by construction, a
subset of the scope it was evaluated under — which is precisely the scope
invariant the consistency algorithm needs.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.util.bitmap import Bitmap
from repro.cba import planner
from repro.cba.engine import CBAEngine
from repro.cba.queryast import And, DirRef, MatchAll, Node, Not, Or


def is_content_only(node: Node) -> bool:
    """True when the subtree contains no directory references."""
    return next(node.dir_refs(), None) is None


def evaluate(query: Node, engine: CBAEngine,
             resolve_dirref: Callable[[int], Bitmap],
             scope: Optional[Bitmap] = None) -> Bitmap:
    """Evaluate *query* over *scope* (default: every indexed document).

    :param resolve_dirref: maps a directory UID to the bitmap of local doc
        ids in that directory's current query-result / provided scope.
    :returns: doc ids matching the query, always a subset of *scope*.
    """
    universe = engine.all_docs() if scope is None else scope
    return _eval(query, engine, resolve_dirref, universe)


def _eval(node: Node, engine: CBAEngine,
          resolve: Callable[[int], Bitmap], scope: Bitmap) -> Bitmap:
    if not scope:
        # every result is scope ∩ something; an empty scope settles it
        # without touching the index or the loader
        return Bitmap()
    if isinstance(node, MatchAll):
        return scope.copy()
    if isinstance(node, DirRef):
        return resolve(node.uid) & scope
    if is_content_only(node):
        return engine.search(node, scope)
    if isinstance(node, And):
        # narrow the scope child by child; directory references first, since
        # they are set lookups while content terms cost index + scan work —
        # then content operands most-selective-first when the planner is on
        dir_children = [c for c in node.children if isinstance(c, DirRef)]
        other_children = [c for c in node.children if not isinstance(c, DirRef)]
        if engine.fast_path and len(other_children) > 1:
            other_children = planner.order_children(
                other_children, engine.index,
                engine.counters.scoped("engine"))
        acc = scope
        for child in dir_children + other_children:
            acc = _eval(child, engine, resolve, acc)
            if not acc:
                break
        return acc
    if isinstance(node, Or):
        out = Bitmap()
        for child in node.children:
            out |= _eval(child, engine, resolve, scope)
        return out
    if isinstance(node, Not):
        return scope - _eval(node.child, engine, resolve, scope)
    raise TypeError(f"unknown query node: {type(node).__name__}")
