"""Per-document verification scans (the "agrep" half of Glimpse).

The block index only narrows search to candidate files; every candidate is
then scanned to verify the full query.  This module implements that scan:

* :func:`matches` — does one document satisfy a (content-only) query AST?
* :func:`matching_lines` — which lines carry the match?  This powers HAC's
  ``sact`` command ("returns the information in the corresponding file that
  matches the query of the directory").
* :func:`within_distance` — bounded Levenshtein check for agrep-style
  approximate terms (``word~k``), via a banded dynamic program.

``DirRef`` nodes never reach this layer — the evaluator splits them out —
so encountering one here is a programming error and raises.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cba.queryast import (
    And,
    Approx,
    DirRef,
    FieldTerm,
    MatchAll,
    Node,
    Not,
    Or,
    Phrase,
    ScopeTerm,
    Term,
)
from repro.cba.tokenizer import tokenize, tokenize_lines
from repro.util import pathutil

#: attribute pairs for documents without a transducer
NO_PAIRS: FrozenSet[Tuple[str, str]] = frozenset()


def within_distance(a: str, b: str, k: int) -> bool:
    """True when Levenshtein(a, b) <= k, using a band of width 2k+1.

    >>> within_distance("finger", "fingre", 1)
    False
    >>> within_distance("finger", "fingre", 2)
    True
    """
    if abs(len(a) - len(b)) > k:
        return False
    if a == b:
        return True
    # classic banded DP; rows over a, columns over b
    inf = k + 1
    prev = list(range(len(b) + 1))
    for i in range(1, len(a) + 1):
        lo = max(1, i - k)
        hi = min(len(b), i + k)
        cur = [inf] * (len(b) + 1)
        cur[0] = i if i <= k else inf
        for j in range(lo, hi + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            cur[j] = min(
                prev[j] + 1,       # deletion
                cur[j - 1] + 1,    # insertion
                prev[j - 1] + cost  # substitution
            )
        if min(min(cur[lo:hi + 1]), cur[0]) > k:
            return False
        prev = cur
    return prev[len(b)] <= k


def _has_phrase(tokens: Sequence[str], words: Sequence[str]) -> bool:
    n = len(words)
    if n == 0 or n > len(tokens):
        return False
    first = words[0]
    for i, tok in enumerate(tokens[:len(tokens) - n + 1]):
        if tok == first and list(tokens[i:i + n]) == list(words):
            return True
    return False


def _has_approx(token_set: Set[str], word: str, k: int) -> bool:
    if word in token_set:
        return True
    return any(within_distance(word, tok, k) for tok in token_set)


def _eval(node: Node, tokens: List[str], token_set: Set[str],
          pairs: FrozenSet[Tuple[str, str]] = NO_PAIRS,
          path: Optional[str] = None) -> bool:
    if isinstance(node, MatchAll):
        return True
    if isinstance(node, Term):
        return node.word in token_set
    if isinstance(node, FieldTerm):
        return (node.field, node.value) in pairs
    if isinstance(node, Phrase):
        return _has_phrase(tokens, node.words)
    if isinstance(node, Approx):
        return _has_approx(token_set, node.word, node.k)
    if isinstance(node, ScopeTerm):
        # the path dimension, scan-and-filter style: the document's
        # registered path must lie at-or-below the scope prefix
        return path is not None and \
            pathutil.is_ancestor(node.prefix, pathutil.canonical(path),
                                 strict=False)
    if isinstance(node, And):
        return all(_eval(c, tokens, token_set, pairs, path)
                   for c in node.children)
    if isinstance(node, Or):
        return any(_eval(c, tokens, token_set, pairs, path)
                   for c in node.children)
    if isinstance(node, Not):
        return not _eval(node.child, tokens, token_set, pairs, path)
    if isinstance(node, DirRef):
        raise TypeError("DirRef reached the document scanner; "
                        "the evaluator must resolve directory references")
    raise TypeError(f"unknown query node: {type(node).__name__}")


def matches(text: str, query: Node, pairs=NO_PAIRS,
            path: Optional[str] = None) -> bool:
    """Scan one document's text against a content-only query AST.

    :param pairs: the document's transduced attribute/value pairs, for
        :class:`FieldTerm` evaluation.
    :param path: the document's registered path, for :class:`ScopeTerm`
        evaluation; a document with no known path never matches a scope.
    """
    tokens = tokenize(text)
    return _eval(query, tokens, set(tokens), frozenset(pairs), path)


def matching_lines(text: str, query: Node) -> List[str]:
    """The lines of *text* that carry the match.

    A line qualifies when it satisfies at least one positive leaf of the
    query (term/phrase/approx).  If the query has no positive leaves
    (``NOT x`` alone, or the empty query), every line qualifies — there is
    nothing specific to point at.
    """
    leaves = list(_positive_leaves(query))
    lines = text.splitlines()
    if not leaves:
        return lines
    out: List[str] = []
    for line, tokens in zip(lines, tokenize_lines(text)):
        token_set = set(tokens)
        if any(_eval(leaf, tokens, token_set) for leaf in leaves):
            out.append(line)
    return out


def _positive_leaves(node: Node):
    """Term/Phrase/Approx/FieldTerm leaves not under a NOT."""
    if isinstance(node, FieldTerm):
        # at line granularity a field term is satisfied by its words
        yield And([Term(node.field), Term(node.value)])
    elif isinstance(node, (Term, Phrase, Approx)):
        yield node
    elif isinstance(node, (And, Or)):
        for child in node.children:
            yield from _positive_leaves(child)
    # Not, DirRef, and ScopeTerm contribute nothing positive: a scope
    # prefix names no content to point at on a line
