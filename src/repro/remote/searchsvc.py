"""A simulated remote search service (the paper's digital library).

The paper's running example semantically mounts "a digital library with
scientific articles" and commercial web search engines.  We cannot reach
either, so this service is the closest synthetic equivalent: a corpus of
named documents indexed by its *own* CBA engine (a separate Glimpse
instance — remote systems do not share the local index), fronted by the
simulated RPC transport.

It speaks the same ``glimpse`` query language as local HAC, minus directory
references — exactly the constraint multiple semantic mounts impose.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cba.engine import CBAEngine
from repro.cba.queryparser import parse_query
from repro.remote.namespace import NameSpace, RemoteDoc
from repro.remote.rpc import RpcTransport


class SimulatedSearchService(NameSpace):
    """An independent searchable corpus behind a (simulated) network."""

    query_language = "glimpse"

    def __init__(self, namespace_id: str,
                 documents: Optional[Dict[str, str]] = None,
                 transport: Optional[RpcTransport] = None,
                 titles: Optional[Dict[str, str]] = None):
        self.namespace_id = namespace_id
        self.transport = transport if transport is not None \
            else RpcTransport(namespace_id)
        self._docs: Dict[str, str] = {}
        self._titles: Dict[str, str] = dict(titles or {})
        self._engine = CBAEngine(loader=self._load)
        #: monotonic per-service version, stamped as the engine mtime so
        #: updates are distinguishable from the original version to
        #: incremental-reindex staleness checks (mtime snapshots diff)
        self._version = 0
        for doc, text in (documents or {}).items():
            self.add_document(doc, text)

    # -- corpus maintenance (the "publisher" side, not RPC) --------------------

    def _load(self, key) -> str:
        return self._docs.get(key, "")

    def _next_version(self) -> float:
        self._version += 1
        return float(self._version)

    def add_document(self, doc: str, text: str, title: Optional[str] = None,
                     clear_title: bool = False) -> None:
        """Add or update *doc*.

        Title contract: ``title=None`` on an update *keeps* the existing
        title (callers re-publishing text need not re-supply it); pass
        ``clear_title=True`` (or call :meth:`clear_title`) to drop it
        explicitly.
        """
        if title is not None and clear_title:
            raise ValueError("pass either title or clear_title, not both")
        version = self._next_version()
        if doc in self._docs:
            self._docs[doc] = text
            self._engine.update_document(doc, path=doc, mtime=version,
                                         text=text)
        else:
            self._docs[doc] = text
            self._engine.index_document(doc, path=doc, mtime=version,
                                        text=text)
        if title is not None:
            self._titles[doc] = title
        elif clear_title:
            self._titles.pop(doc, None)

    def clear_title(self, doc: str) -> None:
        """Drop *doc*'s stored title (it falls back to the document name)."""
        self._titles.pop(doc, None)

    def remove_document(self, doc: str) -> None:
        if doc in self._docs:
            del self._docs[doc]
            self._engine.remove_document(doc)
            self._titles.pop(doc, None)

    def mtime_snapshot(self) -> Dict[str, float]:
        """``{doc: version}`` as of now — the staleness baseline remote
        mirrors diff against (versions are this service's monotonic
        counter, not wall time)."""
        return self._engine.mtime_snapshot()

    def __len__(self) -> int:
        return len(self._docs)

    # -- the NameSpace protocol (goes over "the network") -----------------------

    def search(self, query_text: str) -> List[RemoteDoc]:
        def run() -> List[RemoteDoc]:
            ast = parse_query(query_text)  # no directory references here
            hits = self._engine.search(ast)
            out = []
            for doc_id in hits:
                doc = self._engine.doc_by_id(doc_id)
                if doc is not None:
                    out.append(RemoteDoc(doc=str(doc.key),
                                         title=self._titles.get(doc.key,
                                                                str(doc.key))))
            return sorted(out)
        return self.transport.call("search", run)

    def fetch(self, doc: str) -> str:
        def run() -> str:
            if doc not in self._docs:
                raise KeyError(f"no such document: {doc}")
            return self._docs[doc]
        return self.transport.call("fetch", run)

    def title_of(self, doc: str) -> Optional[str]:
        return self._titles.get(doc)
