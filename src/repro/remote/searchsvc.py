"""A simulated remote search service (the paper's digital library).

The paper's running example semantically mounts "a digital library with
scientific articles" and commercial web search engines.  We cannot reach
either, so this service is the closest synthetic equivalent: a corpus of
named documents indexed by its *own* CBA engine (a separate Glimpse
instance — remote systems do not share the local index), fronted by the
simulated RPC transport.

It speaks the same ``glimpse`` query language as local HAC, minus directory
references — exactly the constraint multiple semantic mounts impose.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cba.engine import CBAEngine, Document
from repro.cba.glimpse import GlimpseIndex
from repro.cba.queryparser import parse_query
from repro.remote.namespace import NameSpace, RemoteDoc
from repro.remote.rpc import RpcTransport


class SimulatedSearchService(NameSpace):
    """An independent searchable corpus behind a (simulated) network."""

    query_language = "glimpse"

    def __init__(self, namespace_id: str,
                 documents: Optional[Dict[str, str]] = None,
                 transport: Optional[RpcTransport] = None,
                 titles: Optional[Dict[str, str]] = None):
        self.namespace_id = namespace_id
        self.transport = transport if transport is not None \
            else RpcTransport(namespace_id)
        self._docs: Dict[str, str] = {}
        self._titles: Dict[str, str] = dict(titles or {})
        self._engine = CBAEngine(loader=self._load)
        #: monotonic per-service version, stamped as the engine mtime so
        #: updates are distinguishable from the original version to
        #: incremental-reindex staleness checks (mtime snapshots diff)
        self._version = 0
        for doc, text in (documents or {}).items():
            self.add_document(doc, text)

    # -- corpus maintenance (the "publisher" side, not RPC) --------------------

    def _load(self, key) -> str:
        return self._docs.get(key, "")

    def _next_version(self) -> float:
        self._version += 1
        return float(self._version)

    def add_document(self, doc: str, text: str, title: Optional[str] = None,
                     clear_title: bool = False) -> None:
        """Add or update *doc*.

        Title contract: ``title=None`` on an update *keeps* the existing
        title (callers re-publishing text need not re-supply it); pass
        ``clear_title=True`` (or call :meth:`clear_title`) to drop it
        explicitly.
        """
        if title is not None and clear_title:
            raise ValueError("pass either title or clear_title, not both")
        version = self._next_version()
        if doc in self._docs:
            self._docs[doc] = text
            self._engine.update_document(doc, path=doc, mtime=version,
                                         text=text)
        else:
            self._docs[doc] = text
            self._engine.index_document(doc, path=doc, mtime=version,
                                        text=text)
        if title is not None:
            self._titles[doc] = title
        elif clear_title:
            self._titles.pop(doc, None)

    def clear_title(self, doc: str) -> None:
        """Drop *doc*'s stored title (it falls back to the document name)."""
        self._titles.pop(doc, None)

    def remove_document(self, doc: str) -> None:
        if doc in self._docs:
            del self._docs[doc]
            self._engine.remove_document(doc)
            self._titles.pop(doc, None)

    def mtime_snapshot(self) -> Dict[str, float]:
        """``{doc: version}`` as of now — the staleness baseline remote
        mirrors diff against (versions are this service's monotonic
        counter, not wall time)."""
        return self._engine.mtime_snapshot()

    def __len__(self) -> int:
        return len(self._docs)

    # -- the NameSpace protocol (goes over "the network") -----------------------

    def search(self, query_text: str) -> List[RemoteDoc]:
        def run() -> List[RemoteDoc]:
            ast = parse_query(query_text)  # no directory references here
            hits = self._engine.search(ast)
            out = []
            for doc_id in hits:
                doc = self._engine.doc_by_id(doc_id)
                if doc is not None:
                    out.append(RemoteDoc(doc=str(doc.key),
                                         title=self._titles.get(doc.key,
                                                                str(doc.key))))
            return sorted(out)
        return self.transport.call("search", run)

    def fetch(self, doc: str) -> str:
        def run() -> str:
            if doc not in self._docs:
                raise KeyError(f"no such document: {doc}")
            return self._docs[doc]
        return self.transport.call("fetch", run)

    def title_of(self, doc: str) -> Optional[str]:
        return self._titles.get(doc)

    # -- the SearchBackend protocol ---------------------------------------------
    #
    # The service's own engine surface, exposed so the same
    # :class:`~repro.cba.backend.SearchBackend` contract covers all three
    # back-ends.  Document keys here are plain strings (document names),
    # not HAC's ``(fsid, ino)`` pairs, which is why the service carries
    # its own ``to_obj``/``from_obj`` format instead of borrowing the
    # engine's.  ``search`` keeps its wire signature (query *text* over
    # RPC) — the protocol checks presence, and remote queries are exactly
    # the calls that must cross the simulated network.

    def index_document(self, key: str, path: str, mtime: float,
                       text: Optional[str] = None,
                       doc_id: Optional[int] = None) -> int:
        if text is not None:
            self._docs[key] = text
        return self._engine.index_document(key, path, mtime, text=text,
                                           doc_id=doc_id)

    def update_document(self, key: str, path: str, mtime: float,
                        text: Optional[str] = None) -> int:
        if text is not None:
            self._docs[key] = text
        return self._engine.update_document(key, path, mtime, text=text)

    def rename_document(self, key: str, new_path: str) -> None:
        self._engine.rename_document(key, new_path)

    def reindex(self, current, previous=None):
        return self._engine.reindex(current, previous)

    def reserve_doc_id(self) -> int:
        return self._engine.reserve_doc_id()

    def doc_by_id(self, doc_id: int):
        return self._engine.doc_by_id(doc_id)

    def doc_by_key(self, key: str):
        return self._engine.doc_by_key(key)

    def doc_id_of(self, key: str) -> Optional[int]:
        return self._engine.doc_id_of(key)

    def all_docs(self):
        return self._engine.all_docs()

    def __contains__(self, key: str) -> bool:
        return key in self._engine

    def search_blocks(self, query, blocks, scope=None):
        return self._engine.search_blocks(query, blocks, scope)

    def estimate_docs(self, node) -> int:
        return self._engine.estimate_docs(node)

    def extract(self, key: str, query) -> List[str]:
        return self._engine.extract(key, query)

    def publish(self) -> int:
        return self._engine.publish()

    def snapshot_view(self):
        return self._engine.snapshot_view()

    def snapshot_info(self) -> Dict[str, object]:
        return self._engine.snapshot_info()

    def shard_of(self, key: str) -> None:
        return None

    def reset_missing_shards(self) -> Set[str]:
        return set()

    def health(self) -> Dict[str, str]:
        return {}

    def to_obj(self):
        """Dump corpus + index to plain primitives (string doc keys)."""
        return {
            "service": 1,
            "docs": dict(self._docs),
            "titles": dict(self._titles),
            "version": self._version,
            "index": self._engine.index.to_obj(),
            "registry": [[doc.doc_id, doc.key, doc.path, doc.mtime, doc.size]
                         for doc in self._engine._docs.values()],
            "next": self._engine._next_doc_id,
        }

    @classmethod
    def from_obj(cls, obj, loader=None, *, namespace_id: str = "service",
                 transport: Optional[RpcTransport] = None
                 ) -> "SimulatedSearchService":
        """Rebuild a service from :meth:`to_obj` output without
        re-tokenising (*loader* is accepted for protocol symmetry and
        ignored — the corpus travels inside the object)."""
        service = cls(namespace_id, transport=transport,
                      titles=obj.get("titles"))
        service._docs = dict(obj["docs"])
        service._version = obj.get("version", 0)
        engine = service._engine
        engine.index = GlimpseIndex.from_obj(
            obj["index"], counters=engine.counters,
            track_doc_postings=engine.fast_path)
        for doc_id, key, path, mtime, size in obj["registry"]:
            engine._docs[doc_id] = Document(doc_id, key, path, mtime, size)
            engine._by_key[key] = doc_id
        engine._next_doc_id = obj["next"]
        return service
