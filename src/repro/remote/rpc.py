"""Simulated RPC transport for remote name spaces.

The paper's remote systems live across a network; ours live in the same
process, so this transport makes the difference explicit and measurable:
every call charges latency to the virtual clock, counts traffic, and can
inject deterministic failures (for the failure-handling tests — a semantic
directory whose remote back-end is down must degrade cleanly, not corrupt
local state).

Failure injection is seeded and rate-based: with ``failure_rate=0.25`` and a
fixed seed, the same calls fail on every run.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, TypeVar

from repro.errors import RemoteUnavailable
from repro.util.clock import VirtualClock
from repro.util.stats import Counters

T = TypeVar("T")


class RpcTransport:
    """Charges latency and failures onto calls to a remote back-end."""

    def __init__(self, name: str,
                 clock: Optional[VirtualClock] = None,
                 latency: float = 0.05,
                 failure_rate: float = 0.0,
                 seed: int = 0,
                 counters: Optional[Counters] = None):
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        self.name = name
        self.clock = clock if clock is not None else VirtualClock()
        self.latency = latency
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self._stats = (counters or Counters()).scoped(f"rpc.{name}")

    def call(self, what: str, fn: Callable[[], T]) -> T:
        """Run *fn* as one remote call: latency, counters, maybe failure."""
        self.clock.advance(self.latency)
        self._stats.add("calls")
        self._stats.add(f"calls.{what}")
        if self.failure_rate and self._rng.random() < self.failure_rate:
            self._stats.add("failures")
            raise RemoteUnavailable(self.name, f"{what} failed (injected)")
        return fn()

    @property
    def calls(self) -> float:
        return self._stats.get("calls")
