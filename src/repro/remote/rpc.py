"""Simulated RPC transport for remote name spaces.

The paper's remote systems live across a network; ours live in the same
process, so this transport makes the difference explicit and measurable:
every call charges latency to the virtual clock, counts traffic, and can
inject failures (for the failure-handling tests — a semantic directory whose
remote back-end is down must degrade cleanly, not corrupt local state).

Failure injection comes in two flavours:

* **deterministic** — ``fail_on={call_index, ...}`` fails exactly those
  attempts (0-based, counting every charged call on this transport), so a
  test can say "the second search fails" without coupling to a seed or to
  how many calls happen to precede it;
* **rate-based** — ``failure_rate=0.25`` with a fixed seed fails the same
  calls on every run; kept for benchmarks, where the aggregate rate is the
  point and the exact indices are not.

On top of the raw transport sit two resilience mechanisms, both driven by
the virtual clock:

* :class:`RetryPolicy` — exponential backoff with jitter and an overall
  deadline; retried waits advance the virtual clock, and attempts/give-ups
  are counted so benchmarks can report them;
* :class:`CircuitBreaker` — after ``failure_threshold`` consecutive
  failures the breaker opens and the transport rejects calls *locally*
  (no latency charged, no back-end traffic) with
  :class:`~repro.errors.CircuitOpen` until the cool-down elapses; the first
  call after cool-down runs half-open — success closes the breaker, failure
  re-opens it for another cool-down.
"""

from __future__ import annotations

import random
from collections import deque
from typing import (Callable, Deque, Dict, FrozenSet, Iterable, Optional,
                    TypeVar)

from repro.errors import BackendUnavailable, CircuitOpen, RemoteUnavailable
from repro.obs.trace import NULL_TRACER, TraceContext
from repro.util.clock import VirtualClock
from repro.util.stats import Counters

T = TypeVar("T")


class RetryPolicy:
    """Exponential backoff on the virtual clock.

    :param max_attempts: total attempts (first try included).
    :param base_delay: wait before the second attempt.
    :param multiplier: backoff factor between consecutive waits.
    :param max_delay: cap on a single wait.
    :param deadline: overall budget (elapsed call time + next wait must fit),
        or None for no deadline.
    :param jitter: fraction of the wait added as seeded random jitter
        (0.2 → up to +20%); the jitter rng is independent of the transport's
        failure rng, so enabling retries never changes which calls fail.
    """

    def __init__(self, max_attempts: int = 3,
                 base_delay: float = 0.05,
                 multiplier: float = 2.0,
                 max_delay: float = 2.0,
                 deadline: Optional[float] = None,
                 jitter: float = 0.0,
                 seed: int = 0):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= jitter:
            raise ValueError("jitter must be non-negative")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.deadline = deadline
        self.jitter = jitter
        self._rng = random.Random(seed)

    def next_delay(self, attempt: int, elapsed: float) -> Optional[float]:
        """Wait before attempt ``attempt + 1``, or None to give up.

        :param attempt: 1-based index of the attempt that just failed.
        :param elapsed: virtual time already spent inside this call.
        """
        if attempt >= self.max_attempts:
            return None
        delay = min(self.max_delay,
                    self.base_delay * (self.multiplier ** (attempt - 1)))
        if self.jitter:
            delay += self._rng.random() * self.jitter * delay
        if self.deadline is not None and elapsed + delay > self.deadline:
            return None
        return delay


#: transitions each breaker remembers (newest last); enough to reconstruct
#: any realistic flap sequence without growing during a long soak
TRANSITION_LOG = 64


class CircuitBreaker:
    """Per-backend breaker: closed → open → half-open on the virtual clock.

    Every state change is recorded three ways: a bounded in-memory
    transition log (``old``/``new``/virtual time/op id — surfaced through
    ``hac.health()['breakers']``), the ``transitions``/``opens``/``closes``
    counters, and — when tracing is on — an ``rpc.breaker`` event stamped
    with the op id of the journaled operation that drove the transition.

    :param failure_threshold: consecutive failures that trip the breaker.
    :param cooldown: virtual seconds the breaker stays open before letting
        one probing call through (half-open).
    """

    def __init__(self, failure_threshold: int = 5,
                 cooldown: float = 30.0,
                 clock: Optional[VirtualClock] = None,
                 counters: Optional[Counters] = None,
                 name: str = "breaker",
                 tracer: Optional[TraceContext] = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock
        self.name = name
        self._stats = (counters or Counters()).scoped(f"breaker.{name}")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.state = "closed"
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        #: bounded log of state changes, newest last
        self.transitions: Deque[Dict[str, object]] = deque(
            maxlen=TRANSITION_LOG)

    def _current_op_id(self) -> Optional[int]:
        """Op id of the operation driving this transition: the journal
        sequence stamped on the tracer's root span, when one is open."""
        stack = getattr(self.tracer, "_stack", None)
        if stack:
            return stack[0].op_id
        return None

    def _transition(self, new_state: str) -> None:
        if new_state == self.state:
            return
        op_id = self._current_op_id()
        self.transitions.append({
            "old": self.state,
            "new": new_state,
            "at": self.clock.now if self.clock is not None else 0.0,
            "op": op_id,
        })
        self._stats.add("transitions")
        if self.tracer.enabled:
            self.tracer.event("rpc.breaker", op_id=op_id, name=self.name,
                              old=self.state, new=new_state)
        self.state = new_state

    def describe(self) -> Dict[str, object]:
        """Health-report entry: current state plus the transition log."""
        return {"state": self.state,
                "transitions": [dict(t) for t in self.transitions]}

    @property
    def retry_at(self) -> Optional[float]:
        if self._opened_at is None:
            return None
        return self._opened_at + self.cooldown

    def before_call(self) -> None:
        """Reject locally (raise :class:`CircuitOpen`) while open."""
        if self.state != "open":
            return
        assert self.clock is not None, "breaker used before a clock was bound"
        if self.clock.now >= self.retry_at:
            self._transition("half_open")
            self._stats.add("half_opens")
            return
        self._stats.add("rejections")
        raise CircuitOpen(self.name, self.retry_at)

    def record_success(self) -> None:
        if self.state != "closed":
            self._stats.add("closes")
        self._transition("closed")
        self._consecutive_failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self.state == "half_open" \
                or self._consecutive_failures >= self.failure_threshold:
            if self.state != "open":
                self._stats.add("opens")
            self._transition("open")
            self._opened_at = self.clock.now if self.clock is not None else 0.0
            self._consecutive_failures = 0


class RpcTransport:
    """Charges latency and failures onto calls to a remote back-end.

    :param error_cls: the :class:`~repro.errors.BackendUnavailable`
        subclass injected failures raise — :class:`RemoteUnavailable` by
        default; the search cluster passes
        :class:`~repro.errors.ShardUnavailable` so callers can tell a
        dead shard from a dead remote name space while still catching one
        shared base type.
    """

    def __init__(self, name: str,
                 clock: Optional[VirtualClock] = None,
                 latency: float = 0.05,
                 failure_rate: float = 0.0,
                 seed: int = 0,
                 counters: Optional[Counters] = None,
                 fail_on: Optional[Iterable[int]] = None,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 tracer: Optional[TraceContext] = None,
                 error_cls: type = RemoteUnavailable):
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        self.name = name
        self.clock = clock if clock is not None else VirtualClock()
        self.latency = latency
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self._stats = (counters or Counters()).scoped(f"rpc.{name}")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if breaker is not None and breaker.tracer is NULL_TRACER:
            breaker.tracer = self.tracer
        #: deterministic failure schedule; when set, rate mode is ignored
        self.fail_on: Optional[FrozenSet[int]] = \
            frozenset(fail_on) if fail_on is not None else None
        self.retry = retry
        self.breaker = breaker
        if not issubclass(error_cls, BackendUnavailable):
            raise ValueError("error_cls must subclass BackendUnavailable")
        self.error_cls = error_cls
        if breaker is not None and breaker.clock is None:
            breaker.clock = self.clock
        #: 0-based index of the next charged attempt on this transport
        self.call_index = 0

    def _attempt(self, what: str, fn: Callable[[], T]) -> T:
        """One charged attempt: latency, counters, maybe injected failure."""
        idx = self.call_index
        self.call_index += 1
        self.clock.advance(self.latency)
        self._stats.add("calls")
        self._stats.add(f"calls.{what}")
        if self.fail_on is not None:
            if idx in self.fail_on:
                self._stats.add("failures")
                raise self.error_cls(
                    self.name, f"{what} failed (scheduled at call {idx})")
        elif self.failure_rate and self._rng.random() < self.failure_rate:
            self._stats.add("failures")
            raise self.error_cls(self.name, f"{what} failed (injected)")
        return fn()

    def call(self, what: str, fn: Callable[[], T]) -> T:
        """Run *fn* as one logical remote call, with whatever retry and
        breaker protection this transport was built with."""
        start = self.clock.now
        attempt = 0
        with self.tracer.span("rpc.call", backend=self.name,
                              what=what) as span:
            while True:
                if self.breaker is not None:
                    self.breaker.before_call()
                attempt += 1
                try:
                    result = self._attempt(what, fn)
                except BackendUnavailable as exc:
                    if self.tracer.enabled:
                        self.tracer.event("rpc.attempt", backend=self.name,
                                          what=what, attempt=attempt,
                                          failed=str(exc))
                    if self.breaker is not None:
                        self.breaker.record_failure()
                    delay = None if self.retry is None else \
                        self.retry.next_delay(attempt, self.clock.now - start)
                    if delay is None:
                        if self.retry is not None:
                            self._stats.add("giveups")
                        span.set(attempts=attempt, outcome="giveup")
                        raise
                    self._stats.add("retries")
                    self.clock.advance(delay)
                    continue
                if self.breaker is not None:
                    self.breaker.record_success()
                span.set(attempts=attempt, outcome="ok")
                return result

    @property
    def calls(self) -> float:
        return self._stats.get("calls")
