"""The NameSpace protocol — what a semantic mount point talks to.

A *name space* is anything queries can be evaluated against: a traditional
file system, a CBA mechanism, a whole HAC file system (paper §3).  For
semantic mounting, HAC needs exactly three things from it: an identity, a
query-language tag (all name spaces on one multiple mount must share it),
and a ``search`` entry point.  ``fetch`` makes results readable through the
local file system, which is what turns a pile of search hits into files the
user can ``cat``, annotate, and re-organise.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.cba.results import RemoteId


class RemoteDoc(NamedTuple):
    """One remote search result."""

    doc: str        # stable id within the name space
    title: str      # human-readable label (used to name the local link)

    def remote_id(self, namespace: str) -> RemoteId:
        return RemoteId(namespace, self.doc)


class NameSpace:
    """Base class / protocol for mountable query systems.

    Subclasses must set :attr:`namespace_id` and :attr:`query_language`
    and implement :meth:`search` and :meth:`fetch`.
    """

    #: globally unique id; appears in remote link URIs (``id://doc``).
    namespace_id: str = ""
    #: query-language tag; multiple mounts require all back-ends to match.
    query_language: str = ""

    def search(self, query_text: str) -> List[RemoteDoc]:
        """Evaluate *query_text* with the name space's own mechanism."""
        raise NotImplementedError

    def fetch(self, doc: str) -> str:
        """Retrieve the content of one result (for reading through HAC)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description for mount listings."""
        return f"{self.namespace_id} ({self.query_language})"

    def title_of(self, doc: str) -> Optional[str]:
        """Display title for a known doc id, if the back-end can say."""
        return None

    def __repr__(self):
        return f"{type(self).__name__}({self.namespace_id!r})"
