"""A whole HAC file system exported as a mountable name space (paper §3).

The paper wants users to "export their file systems as mini-digital
libraries to others": a coworker semantically mounts your HAC file system
and searches your files — including the personal classification you built —
without you doing anything beyond exporting.

:class:`RemoteHacFileSystem` wraps a :class:`HacFileSystem` behind the
simulated RPC transport.  ``search`` runs the query with the *exporting*
side's engine over its whole name space (directory references are not
accepted — the importer's hierarchy means nothing here), and ``fetch``
reads file contents.  Document ids are the exporter's file paths, so the
importer's links read naturally.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.cba.queryparser import parse_query
from repro.remote.namespace import NameSpace, RemoteDoc
from repro.remote.rpc import RpcTransport

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hacfs import HacFileSystem


class RemoteHacFileSystem(NameSpace):
    """Another user's HAC file system, reachable only through queries."""

    query_language = "glimpse"

    def __init__(self, namespace_id: str, hacfs: "HacFileSystem",
                 transport: Optional[RpcTransport] = None,
                 export_root: str = "/"):
        self.namespace_id = namespace_id
        self.hacfs = hacfs
        self.export_root = export_root
        self.transport = transport if transport is not None \
            else RpcTransport(namespace_id)

    def search(self, query_text: str) -> List[RemoteDoc]:
        def run() -> List[RemoteDoc]:
            ast = parse_query(query_text)  # exporter hierarchy not exposed
            scope = self.hacfs.scopes.provided(self.export_root)
            hits = self.hacfs.engine.search(ast, scope=scope.local)
            out: List[RemoteDoc] = []
            for doc_id in hits:
                doc = self.hacfs.engine.doc_by_id(doc_id)
                if doc is not None:
                    out.append(RemoteDoc(doc=doc.path, title=doc.path))
            return sorted(out)
        return self.transport.call("search", run)

    def fetch(self, doc: str) -> str:
        def run() -> str:
            return self.hacfs.read_file(doc).decode("utf-8", errors="replace")
        return self.transport.call("fetch", run)

    def title_of(self, doc: str) -> Optional[str]:
        return doc
