"""Semantic mount points (paper §3.1–3.2).

A semantic mount point binds a *directory* in the local HAC file system to
one or more remote name spaces.  When the scope of a query includes the
mount point, the query is forwarded to every mounted name space and the
results are imported as remote links.  Multiple name spaces may share one
mount point — their scopes union, results stay disjoint (the namespace id
is part of every remote link), and the paper's one restriction is enforced:
**all name spaces on one mount point must be accessible via the same query
language**.

The table is keyed by directory UID, not path, so renames of the mount
directory never detach the mount.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import MountError, QueryLanguageMismatch
from repro.util import pathutil
from repro.remote.namespace import NameSpace


class SemanticMountTable:
    """uid → mounted name spaces, with path-based lookups through a resolver.

    :param uid_of: maps a directory path to its UID (the global map).
    :param path_of: maps a UID back to its current path.
    """

    def __init__(self, uid_of: Callable[[str], Optional[int]],
                 path_of: Callable[[int], Optional[str]]):
        self._uid_of = uid_of
        self._path_of = path_of
        self._mounts: Dict[int, List[NameSpace]] = {}
        self._by_id: Dict[str, NameSpace] = {}

    # ------------------------------------------------------------------

    def mount(self, path: str, namespace: NameSpace) -> None:
        """Attach *namespace* at *path* (stacking onto any already there)."""
        uid = self._uid_of(path)
        if uid is None:
            raise MountError(path, "not a directory in the HAC name space")
        if not namespace.namespace_id:
            raise MountError(path, "name space has no id")
        existing = self._mounts.get(uid, [])
        for ns in existing:
            if ns.namespace_id == namespace.namespace_id:
                raise MountError(path,
                                 f"name space already mounted: {ns.namespace_id}")
        if existing and existing[0].query_language != namespace.query_language:
            raise QueryLanguageMismatch(path, existing[0].query_language,
                                        namespace.query_language)
        self._mounts.setdefault(uid, []).append(namespace)
        self._by_id[namespace.namespace_id] = namespace

    def unmount(self, path: str, namespace_id: Optional[str] = None) -> List[NameSpace]:
        """Detach one name space (or all of them) from *path*."""
        uid = self._uid_of(path)
        if uid is None or uid not in self._mounts:
            raise MountError(path, "not a semantic mount point")
        mounted = self._mounts[uid]
        if namespace_id is None:
            removed = list(mounted)
            del self._mounts[uid]
        else:
            removed = [ns for ns in mounted if ns.namespace_id == namespace_id]
            if not removed:
                raise MountError(path, f"name space not mounted: {namespace_id}")
            mounted[:] = [ns for ns in mounted if ns.namespace_id != namespace_id]
            if not mounted:
                del self._mounts[uid]
        for ns in removed:
            if not any(ns in nss for nss in self._mounts.values()):
                self._by_id.pop(ns.namespace_id, None)
        return removed

    def drop_uid(self, uid: int) -> None:
        """Forget mounts on a directory being removed."""
        for ns in self._mounts.pop(uid, []):
            if not any(ns in nss for nss in self._mounts.values()):
                self._by_id.pop(ns.namespace_id, None)

    # ------------------------------------------------------------------

    def namespaces_at(self, path: str) -> List[str]:
        """Ids mounted directly on *path*."""
        uid = self._uid_of(path)
        if uid is None:
            return []
        return [ns.namespace_id for ns in self._mounts.get(uid, [])]

    def namespaces_under(self, path: str) -> List[str]:
        """Ids mounted at or anywhere below *path*."""
        norm = pathutil.normalize(path)
        out: List[str] = []
        for uid, namespaces in self._mounts.items():
            mount_path = self._path_of(uid)
            if mount_path is not None and pathutil.is_ancestor(norm, mount_path,
                                                               strict=False):
                out.extend(ns.namespace_id for ns in namespaces)
        return out

    def all_namespace_ids(self) -> List[str]:
        return sorted(self._by_id)

    def get(self, namespace_id: str) -> Optional[NameSpace]:
        return self._by_id.get(namespace_id)

    def require(self, namespace_id: str) -> NameSpace:
        ns = self._by_id.get(namespace_id)
        if ns is None:
            raise MountError(namespace_id, "unknown name space")
        return ns

    def mount_points(self) -> Iterator[Tuple[str, List[str]]]:
        """(path, [namespace ids]) for every live mount point."""
        for uid, namespaces in sorted(self._mounts.items()):
            path = self._path_of(uid)
            if path is not None:
                yield path, [ns.namespace_id for ns in namespaces]

    def health(self) -> Dict[str, str]:
        """Breaker state per mounted name space: ``closed`` (healthy),
        ``open`` (rejecting locally), ``half_open`` (probing), or
        ``unmonitored`` when the back-end has no breaker-equipped
        transport."""
        out: Dict[str, str] = {}
        for ns_id, ns in sorted(self._by_id.items()):
            transport = getattr(ns, "transport", None)
            breaker = getattr(transport, "breaker", None)
            out[ns_id] = breaker.state if breaker is not None else "unmonitored"
        return out

    def breakers(self) -> Dict[str, object]:
        """Namespace id → :class:`~repro.remote.rpc.CircuitBreaker` for
        every mounted name space whose transport carries one."""
        out: Dict[str, object] = {}
        for ns_id, ns in sorted(self._by_id.items()):
            breaker = getattr(getattr(ns, "transport", None), "breaker", None)
            if breaker is not None:
                out[ns_id] = breaker
        return out

    def is_mount_point(self, path: str) -> bool:
        uid = self._uid_of(path)
        return uid is not None and uid in self._mounts

    def __len__(self) -> int:
        return len(self._mounts)
