"""The central database of shared semantic directories (paper §3.2).

"It is also possible to collect the names, queries and query-results of
many semantic directories of many users in a central database that itself
can be indexed and searched.  Users can browse and search this database and
find others who have similar tastes."

:class:`SharedDirectoryRegistry` is that database: users *publish* a
semantic directory (its name, query, and current result listing become one
searchable record), other users *search* the registry (it is itself a
NameSpace, so it can be semantically mounted!), and *import* a published
classification into their own HAC file system — the imported links arrive
as permanent links, since they represent another user's curation rather
than a live query of one's own.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, TYPE_CHECKING

from repro.cba.engine import CBAEngine
from repro.cba.queryparser import parse_query
from repro.remote.namespace import NameSpace, RemoteDoc
from repro.remote.rpc import RpcTransport

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hacfs import HacFileSystem


class PublishedDirectory(NamedTuple):
    """One shared classification."""

    record_id: str      # "<user>:<path>"
    user: str
    path: str
    query_text: Optional[str]
    entries: List[str]  # link-target display strings / uris


class SharedDirectoryRegistry(NameSpace):
    """Publish / search / import semantic directories across users."""

    query_language = "glimpse"

    def __init__(self, namespace_id: str = "registry",
                 transport: Optional[RpcTransport] = None):
        self.namespace_id = namespace_id
        self.transport = transport if transport is not None \
            else RpcTransport(namespace_id)
        self._records: Dict[str, PublishedDirectory] = {}
        self._engine = CBAEngine(loader=self._record_text)
        #: monotonic version stamped as the engine mtime, so re-publishing
        #: a directory is visible to mtime-snapshot staleness checks
        self._version = 0

    # ------------------------------------------------------------------

    def _record_text(self, record_id: str) -> str:
        rec = self._records.get(record_id)
        if rec is None:
            return ""
        parts = [rec.user, rec.path, rec.query_text or ""]
        parts.extend(rec.entries)
        return "\n".join(parts)

    def publish(self, user: str, hacfs: "HacFileSystem", path: str) -> str:
        """Share one directory's name, query, and current result listing."""
        query_text = hacfs.get_query(path)
        entries = sorted(display for _name, (_cls, display)
                         in hacfs.links(path).items())
        record_id = f"{user}:{path}"
        record = PublishedDirectory(record_id, user, path, query_text, entries)
        self._version += 1
        version = float(self._version)
        if record_id in self._records:
            self._records[record_id] = record
            self._engine.update_document(record_id, path=record_id,
                                         mtime=version)
        else:
            self._records[record_id] = record
            self._engine.index_document(record_id, path=record_id,
                                        mtime=version)
        return record_id

    def withdraw(self, record_id: str) -> None:
        if record_id in self._records:
            del self._records[record_id]
            self._engine.remove_document(record_id)

    def get(self, record_id: str) -> Optional[PublishedDirectory]:
        return self._records.get(record_id)

    def records(self) -> List[PublishedDirectory]:
        return sorted(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    # -- NameSpace protocol: the registry is itself searchable/mountable -------

    def search(self, query_text: str) -> List[RemoteDoc]:
        def run() -> List[RemoteDoc]:
            ast = parse_query(query_text)
            hits = self._engine.search(ast)
            out = []
            for doc_id in hits:
                doc = self._engine.doc_by_id(doc_id)
                if doc is not None:
                    out.append(RemoteDoc(doc=str(doc.key), title=str(doc.key)))
            return sorted(out)
        return self.transport.call("search", run)

    def fetch(self, doc: str) -> str:
        def run() -> str:
            return self._record_text(doc)
        return self.transport.call("fetch", run)

    # ------------------------------------------------------------------

    def import_into(self, hacfs: "HacFileSystem", record_id: str,
                    dest_path: str) -> List[str]:
        """Clone a published classification as a local directory of
        permanent links; returns the created link paths.

        Entries that name local paths become ordinary symlinks; ``ns://doc``
        entries become remote links (usable when the same name space is
        mounted on the importer's side).  The published query is *not*
        attached — imported curation is someone else's judgement, kept as-is
        until the importer decides to re-query.
        """
        rec = self._records.get(record_id)
        if rec is None:
            raise KeyError(f"no such record: {record_id}")
        hacfs.makedirs(dest_path)
        created: List[str] = []
        for idx, entry in enumerate(rec.entries):
            text = entry
            if entry.startswith("hac") and ":ino" in entry:
                # exporter-side inode ids are meaningless here; skip them
                continue
            name = _link_name(text, idx)
            link_path = f"{dest_path.rstrip('/')}/{name}"
            if not hacfs.exists(link_path, follow=False):
                hacfs.symlink(text, link_path)
                created.append(link_path)
        return created


def _link_name(entry: str, idx: int) -> str:
    base = entry.rsplit("/", 1)[-1] or f"entry{idx}"
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in base)
    return safe or f"entry{idx}"
