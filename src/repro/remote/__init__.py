"""Remote file and query systems (paper §3).

HAC connects to other name spaces two ways: *syntactic* mount points graft
a whole file system into the tree (handled by the VFS), while *semantic*
mount points connect queries in the local HAC file system to results from a
remote query mechanism — a digital library, a web search engine, another
user's HAC file system.

* :mod:`repro.remote.namespace` — the NameSpace protocol every mountable
  query system implements, plus result records;
* :mod:`repro.remote.rpc` — a simulated RPC transport: latency charged to
  the virtual clock, call counting, deterministic failure injection;
* :mod:`repro.remote.searchsvc` — a simulated remote search service (the
  paper's "digital library with scientific articles");
* :mod:`repro.remote.remotefs` — another HAC file system exported as a
  name space, so users can search a coworker's personal classification;
* :mod:`repro.remote.semmount` — the semantic mount table, including
  *multiple* semantic mounts whose scopes union (all back-ends must speak
  the same query language);
* :mod:`repro.remote.registry` — the central database of shared semantic
  directories the paper sketches in §3.2 (publish, search, import).
"""

from repro.remote.namespace import NameSpace, RemoteDoc
from repro.remote.rpc import RpcTransport
from repro.remote.searchsvc import SimulatedSearchService
from repro.remote.semmount import SemanticMountTable

__all__ = [
    "NameSpace",
    "RemoteDoc",
    "RpcTransport",
    "SimulatedSearchService",
    "SemanticMountTable",
]
