"""Open-loop serving-latency harness: Poisson arrivals over virtual costs.

The serving ablation (``benchmarks/bench_serving.py``) asks a scheduling
question — *how long does a query wait when reads and writes contend for
one serving core?* — and wall-clock timing of a pure-Python simulator
cannot answer it deterministically.  So the harness separates the two
ingredients the question actually has:

* **Service time** is *virtual*: a :class:`CostMeter` converts the
  deterministic work counters each operation moves (device ops,
  tokenisation passes, docs scanned) into milliseconds with fixed
  weights.  Two runs of the same seed produce bit-identical service
  times, so every asserted ratio is pinned to counters, never to the
  host's clock — the deflake convention every bench in this repo follows
  (wall times are still *reported*, just never asserted).

* **Waiting time** comes from an open-loop single-server queue: arrivals
  are scheduled by a Poisson process per session (merged across
  sessions), and — unlike a closed loop, where a slow server politely
  slows the clients — late completions do not push arrivals back.  That
  is exactly the regime where a barrier hurts: a read arriving behind a
  drained batch queues for the whole batch's service time, and the p99
  collapses under write load.

The split also makes the harness trivially unit-testable: feed it a fake
``execute`` and fixed costs, and the queueing arithmetic is exact.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Sequence

from repro.util.stats import Counters

#: virtual milliseconds per unit of deterministic work — chosen so the
#: typical query costs ~1ms and a tokenisation-heavy drain costs tens
DEFAULT_WEIGHTS: Dict[str, float] = {
    "blockdev.read_ops": 0.05,
    "blockdev.write_ops": 0.12,
    "blockdev.meta_read_ops": 0.02,
    "blockdev.meta_write_ops": 0.08,
    "engine.tokenisations": 0.6,
    "engine.docs_scanned": 0.25,
    "engine.searches": 0.05,
}

#: fixed per-operation overhead (dispatch, parsing) in virtual ms
DEFAULT_FLOOR_MS = 0.05


class ServingConfig(NamedTuple):
    """One open-loop experiment: who arrives, how often, for how long."""

    rate_per_s: float = 200.0       # total arrival rate across all sessions
    duration_s: float = 10.0        # virtual experiment length
    read_fraction: float = 0.8      # P(an arrival is a query)
    sessions: int = 4               # concurrent open-loop sessions
    seed: int = 0


class Arrival(NamedTuple):
    """One scheduled operation."""

    at_ms: float
    session: int
    kind: str                       # 'read' | 'write'


class Sample(NamedTuple):
    """One completed operation, as measured by the queue simulation."""

    kind: str
    arrival_ms: float
    start_ms: float
    cost_ms: float                  # service time (virtual, deterministic)
    latency_ms: float               # completion - arrival (queueing + service)


def poisson_schedule(config: ServingConfig) -> List[Arrival]:
    """Merged per-session Poisson arrival schedule, time-ordered.

    Each session draws independent exponential gaps at its share of the
    total rate, so the merged stream is Poisson at ``rate_per_s`` and the
    schedule is a pure function of the config (seeded rng).
    """
    out: List[Arrival] = []
    session_rate = config.rate_per_s / max(1, config.sessions)
    horizon_ms = config.duration_s * 1000.0
    for session in range(config.sessions):
        rng = random.Random(config.seed * 1_000_003 + session)
        t = 0.0
        while True:
            t += rng.expovariate(session_rate) * 1000.0
            if t >= horizon_ms:
                break
            kind = "read" if rng.random() < config.read_fraction else "write"
            out.append(Arrival(t, session, kind))
    out.sort(key=lambda a: (a.at_ms, a.session))
    return out


class CostMeter:
    """Deterministic virtual service time from work-counter deltas.

    :param sources: zero-arg callable returning the live list of
        :class:`Counters` to sum over — a *callable* because replica
        counters attach lazily, on the first snapshot read.
    """

    def __init__(self, sources: Callable[[], Iterable[Counters]],
                 weights: Optional[Dict[str, float]] = None,
                 floor_ms: float = DEFAULT_FLOOR_MS):
        self._sources = sources
        self.weights = dict(DEFAULT_WEIGHTS if weights is None else weights)
        self.floor_ms = floor_ms

    def _weighted_total(self) -> float:
        total = 0.0
        for counters in self._sources():
            for name, weight in self.weights.items():
                total += counters.get(name) * weight
        return total

    def measure(self, fn: Callable[[], object]) -> "tuple[object, float]":
        """Run *fn*; returns ``(result, virtual cost in ms)``."""
        before = self._weighted_total()
        result = fn()
        return result, (self._weighted_total() - before) + self.floor_ms


def simulate(schedule: Sequence[Arrival],
             execute: Callable[[str], object],
             meter: CostMeter) -> List[Sample]:
    """Run *schedule* through a single-server open-loop queue.

    Operations execute in arrival order against one server: an arrival
    begins service at ``max(arrival, server free)``, and its latency is
    queueing delay plus its own deterministic service time.  The loop is
    open — arrivals never wait for earlier completions to be *issued* —
    which is what lets a barrier-induced convoy show up as p99 collapse
    rather than as a quietly stretched experiment.
    """
    samples: List[Sample] = []
    t_free = 0.0
    for arrival in schedule:
        _result, cost_ms = meter.measure(lambda: execute(arrival.kind))
        start = max(arrival.at_ms, t_free)
        t_free = start + cost_ms
        samples.append(Sample(arrival.kind, arrival.at_ms, start, cost_ms,
                              t_free - arrival.at_ms))
    return samples


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, min(len(ordered), math.ceil(pct / 100.0 * len(ordered))))
    return ordered[rank - 1]


def summarize(samples: Sequence[Sample]) -> Dict[str, Dict[str, float]]:
    """Per-kind latency distribution plus saturation throughput.

    Saturation throughput is the rate one server sustains at 100%%
    utilisation — operations divided by total *service* time (queueing
    excluded, since waiting consumes no server capacity).
    """
    out: Dict[str, Dict[str, float]] = {}
    for kind in sorted({s.kind for s in samples}):
        latencies = [s.latency_ms for s in samples if s.kind == kind]
        costs = [s.cost_ms for s in samples if s.kind == kind]
        out[kind] = {
            "count": float(len(latencies)),
            "p50_ms": percentile(latencies, 50.0),
            "p99_ms": percentile(latencies, 99.0),
            "p999_ms": percentile(latencies, 99.9),
            "mean_cost_ms": sum(costs) / len(costs),
            "max_ms": max(latencies),
        }
    total_cost = sum(s.cost_ms for s in samples)
    if total_cost > 0:
        out["all"] = {
            "count": float(len(samples)),
            "saturation_ops_per_s": 1000.0 * len(samples) / total_cost,
        }
    return out
