"""Benchmark support: timing harness, table rendering, paper expectations.

The actual benchmark entry points live in ``benchmarks/`` at the repository
root (one per paper table plus ablations); this package holds the shared
machinery so each bench file stays a readable experiment description.
"""

from repro.bench.harness import BenchResult, time_call
from repro.bench.serving import (CostMeter, ServingConfig, percentile,
                                 poisson_schedule, simulate, summarize)
from repro.bench.tables import PAPER

__all__ = ["BenchResult", "CostMeter", "PAPER", "ServingConfig",
           "percentile", "poisson_schedule", "simulate", "summarize",
           "time_call"]
