"""The paper's published numbers, for shape comparisons.

Benchmarks print measured values side by side with these.  We do not expect
absolute agreement — the substrate is a Python simulation, not SunOS on
1999 hardware — but the *shape* (who is slower, roughly by how much, where
the crossovers sit) should reproduce, and EXPERIMENTS.md records how well
it does.
"""

from __future__ import annotations

#: every number the evaluation section reports
PAPER = {
    "table1": {
        # Andrew benchmark seconds, per phase
        "unix": {"makedir": 2, "copy": 5, "scan": 5, "read": 8,
                 "make": 19, "total": 38},
        "hac": {"makedir": 4, "copy": 9, "scan": 8, "read": 14,
                "make": 22, "total": 57},
        # derived: HAC is ~46% slower overall; worst in makedir (2.0x),
        # least in make (~1.16x)
        "slowdown_total": 0.50,  # 57/38 - 1
    },
    "table2": {
        # % slowdown vs the native FS for user-level file systems
        "jade": 36.0,
        "pseudo": 33.41,
        "hac": 46.0,
    },
    "table3": {
        # indexing a 17,000-file / 150MB database
        "files": 17000,
        "megabytes": 150,
        "time_overhead_pct": 27.0,   # HAC vs direct Glimpse
        "space_overhead_pct": 15.0,
    },
    "table4": {
        # semantic-directory creation vs direct Glimpse search, by the
        # number of files the query matches
        "few": {"ratio": 4.0, "note": ">4x slower, tiny absolute cost"},
        "intermediate": {"ratio": 1.15},
        "many": {"ratio": 1.02},
    },
    "in_text": {
        # space overheads quoted in the prose of section 4
        "metadata_unix_kb": 210,
        "metadata_hac_kb": 222,
        "metadata_overhead_pct": 5.0,
        "shared_memory_per_process_kb": 16,
        "bitmap_bytes_per_semdir": "N/8",
        "bitmap_example_kb": 2,      # for ~17,000 indexed files
    },
}


def ratio(measured: float, baseline: float) -> float:
    """measured/baseline, guarding the zero-baseline case."""
    return measured / baseline if baseline else float("inf")


def slowdown_pct(measured: float, baseline: float) -> float:
    """Percent slowdown of *measured* relative to *baseline*."""
    return 100.0 * (ratio(measured, baseline) - 1.0)
