"""Timing and reporting helpers shared by all benchmark files.

pytest-benchmark measures the hot loops; this module covers what it does
not: one-shot phase timing (Andrew phases are not meaningfully repeatable —
Makedir can only run once per tree), ratio/shape assertions with generous
tolerances, and table rendering for the human-readable output the benches
``print`` (captured into ``bench_output.txt`` by the final run).
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.shell.formatting import render_table

T = TypeVar("T")


class BenchResult:
    """One measured quantity with an optional paper expectation.

    ``spans`` attaches the span breakdown of the traced call that produced
    the measurement (see :func:`traced_call`), so the JSON artefact can say
    *where* the time went, not just how much there was.
    """

    def __init__(self, name: str, measured: float,
                 paper: Optional[float] = None, unit: str = "",
                 spans: Optional[Dict[str, Dict[str, float]]] = None):
        self.name = name
        self.measured = measured
        self.paper = paper
        self.unit = unit
        self.spans = spans

    def row(self) -> List[str]:
        paper = f"{self.paper:g}" if self.paper is not None else "-"
        return [self.name, f"{self.measured:.4g}{self.unit}",
                f"{paper}{self.unit if self.paper is not None else ''}"]

    def to_obj(self) -> Dict[str, object]:
        obj: Dict[str, object] = {"name": self.name, "measured": self.measured}
        if self.unit:
            obj["unit"] = self.unit
        if self.paper is not None:
            obj["paper"] = self.paper
        obj["spans"] = self.spans or {}
        return obj


def time_call(fn: Callable[[], T]) -> "tuple[float, T]":
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def traced_call(obs, fn: Callable[[], T]) -> "tuple[float, T, Dict]":
    """Wall-clock one call under span capture; returns
    (seconds, result, span breakdown of exactly this call).

    The trace buffer is cleared first so the breakdown covers nothing but
    *fn*; capture is switched off afterwards unless it was already on.
    """
    was_enabled = obs.trace.enabled
    obs.trace.clear()
    obs.trace.enable()
    try:
        seconds, result = time_call(fn)
    finally:
        if not was_enabled:
            obs.trace.disable()
    return seconds, result, obs.trace.breakdown()


def merge_breakdowns(*breakdowns: Optional[Dict]) -> Dict:
    """Union of several span breakdowns (summed counts and times) — the
    bench-level fallback for rows that were not themselves traced."""
    out: Dict[str, Dict[str, float]] = {}
    for breakdown in breakdowns:
        for name, row in (breakdown or {}).items():
            agg = out.setdefault(name, {"count": 0, "wall_ms": 0.0,
                                        "self_ms": 0.0})
            agg["count"] += row["count"]
            agg["wall_ms"] = round(agg["wall_ms"] + row["wall_ms"], 6)
            agg["self_ms"] = round(agg["self_ms"] + row["self_ms"], 6)
    return out


def write_bench_json(path, title: str, results: Sequence[BenchResult],
                     spans: Optional[Dict] = None,
                     extra: Optional[Dict[str, object]] = None) -> None:
    """Write one ``BENCH_*.json`` artefact.  Rows without their own traced
    breakdown inherit the bench-level one, so every row carries spans."""
    rows = []
    for result in results:
        obj = result.to_obj()
        if not obj["spans"]:
            obj["spans"] = spans or {}
        rows.append(obj)
    payload: Dict[str, object] = {"bench": title, "rows": rows}
    if extra:
        payload.update(extra)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def report(title: str, results: Sequence[BenchResult]) -> str:
    table = render_table(["metric", "measured", "paper"],
                         [r.row() for r in results])
    text = f"\n=== {title} ===\n{table}\n"
    print(text)
    return text


def report_phases(title: str, rows: Dict[str, Dict[str, float]],
                  phases: Sequence[str]) -> str:
    """Phase-per-column comparison (the Table 1 layout)."""
    out_rows = []
    for system, timings in rows.items():
        out_rows.append([system] + [f"{timings.get(p, 0.0):.4f}" for p in phases])
    table = render_table(["system"] + list(phases), out_rows)
    text = f"\n=== {title} ===\n{table}\n"
    print(text)
    return text


def assert_shape(name: str, measured_ratio: float, low: float, high: float) -> None:
    """Assert a ratio lies in a generous band; failures carry context."""
    assert low <= measured_ratio <= high, (
        f"{name}: ratio {measured_ratio:.3f} outside expected band "
        f"[{low}, {high}] — the paper's shape did not reproduce")
