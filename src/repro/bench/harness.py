"""Timing and reporting helpers shared by all benchmark files.

pytest-benchmark measures the hot loops; this module covers what it does
not: one-shot phase timing (Andrew phases are not meaningfully repeatable —
Makedir can only run once per tree), ratio/shape assertions with generous
tolerances, and table rendering for the human-readable output the benches
``print`` (captured into ``bench_output.txt`` by the final run).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.shell.formatting import render_table

T = TypeVar("T")


class BenchResult:
    """One measured quantity with an optional paper expectation."""

    def __init__(self, name: str, measured: float,
                 paper: Optional[float] = None, unit: str = ""):
        self.name = name
        self.measured = measured
        self.paper = paper
        self.unit = unit

    def row(self) -> List[str]:
        paper = f"{self.paper:g}" if self.paper is not None else "-"
        return [self.name, f"{self.measured:.4g}{self.unit}",
                f"{paper}{self.unit if self.paper is not None else ''}"]


def time_call(fn: Callable[[], T]) -> "tuple[float, T]":
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def report(title: str, results: Sequence[BenchResult]) -> str:
    table = render_table(["metric", "measured", "paper"],
                         [r.row() for r in results])
    text = f"\n=== {title} ===\n{table}\n"
    print(text)
    return text


def report_phases(title: str, rows: Dict[str, Dict[str, float]],
                  phases: Sequence[str]) -> str:
    """Phase-per-column comparison (the Table 1 layout)."""
    out_rows = []
    for system, timings in rows.items():
        out_rows.append([system] + [f"{timings.get(p, 0.0):.4f}" for p in phases])
    table = render_table(["system"] + list(phases), out_rows)
    text = f"\n=== {title} ===\n{table}\n"
    print(text)
    return text


def assert_shape(name: str, measured_ratio: float, low: float, high: float) -> None:
    """Assert a ratio lies in a generous band; failures carry context."""
    assert low <= measured_ratio <= high, (
        f"{name}: ratio {measured_ratio:.3f} outside expected band "
        f"[{low}, {high}] — the paper's shape did not reproduce")
