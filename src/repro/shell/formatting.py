"""Listing and table formatting for the shell."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.vfs.inode import InodeType

_TYPE_CHAR = {
    InodeType.DIRECTORY: "d",
    InodeType.FILE: "-",
    InodeType.SYMLINK: "l",
}


def mode_string(node_type: InodeType, mode: int) -> str:
    """``drwxr-xr-x``-style rendering."""
    chars = [_TYPE_CHAR.get(node_type, "?")]
    for shift in (6, 3, 0):
        bits = (mode >> shift) & 0o7
        chars.append("r" if bits & 4 else "-")
        chars.append("w" if bits & 2 else "-")
        chars.append("x" if bits & 1 else "-")
    return "".join(chars)


def long_listing(rows: Sequence[Tuple[str, InodeType, int, int, float,
                                      Optional[str], Optional[str]]]) -> str:
    """Render ``ls -l`` rows.

    Each row: (name, type, mode, size, mtime, link target, classification).
    The classification column is the HAC twist: transient links show ``(t)``,
    permanent ``(p)`` — the distinction is otherwise hidden, as the paper
    intends.
    """
    lines = []
    width = max((len(str(r[3])) for r in rows), default=1)
    for name, node_type, mode, size, mtime, target, cls in rows:
        tag = {"transient": " (t)", "permanent": " (p)"}.get(cls or "", "")
        suffix = f" -> {target}" if target is not None else ""
        lines.append(f"{mode_string(node_type, mode)} {size:>{width}} "
                     f"t={mtime:<8g} {name}{suffix}{tag}")
    return "\n".join(lines)


def render_metrics(snapshot: Dict[str, object]) -> str:
    """Render an :meth:`Observability.snapshot` for the ``hacstat`` command:
    counters first, then histograms (count/mean/max), then the per-span-name
    breakdown with self-time split out from inclusive wall time."""
    sections: List[str] = []
    counters = snapshot.get("counters") or {}
    if counters:
        rows = [(name, f"{value:g}") for name, value in sorted(counters.items())]
        sections.append(render_table(("counter", "value"), rows))
    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = []
        for name in sorted(histograms):
            h = histograms[name]
            rows.append((name, h["count"], f"{h['mean']:.4g}",
                         f"{h['max']:.4g}"))
        sections.append(render_table(("histogram", "count", "mean", "max"),
                                     rows))
    spans = snapshot.get("spans") or {}
    if spans:
        rows = []
        for name in sorted(spans):
            b = spans[name]
            rows.append((name, b["count"], f"{b['wall_ms']:.3f}",
                         f"{b['self_ms']:.3f}"))
        sections.append(render_table(("span", "count", "wall_ms", "self_ms"),
                                     rows))
    dropped = snapshot.get("spans_dropped") or 0
    if dropped:
        sections.append(f"spans dropped: {dropped}")
    return "\n\n".join(sections) if sections else "(no metrics recorded)"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table with padded columns (benchmark output)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    out = []
    for idx, row in enumerate(cells):
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if idx == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)
