"""HacShell — the paper's command set over one HAC file system.

"Well-known file system commands, such as cd, ls, mkdir, mv, rm etc., can
be used to access and manipulate objects in the file system in the usual
way.  HAC also provides additional commands that manipulate queries and
semantic directories."  (§4)

The shell resolves relative paths against a current working directory and
maps each command onto :class:`~repro.core.hacfs.HacFileSystem`.  The
semantic commands follow the paper's names where it gives them: ``smkdir``
creates a semantic directory, ``squery``/``schquery`` read and change a
query (the paper calls these ``sreadin``/``srm``), ``sact`` extracts the
matching content of a link, ``smount`` adds a semantic mount point, and
``ssync`` re-evaluates everything depending on a directory.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import FileNotFound, InvalidArgument, NotADirectory
from repro.util import pathutil
from repro.core.hacfs import HacFileSystem
from repro.remote.namespace import NameSpace
from repro.shell.formatting import long_listing
from repro.vfs.filesystem import FileSystem


class HacShell:
    """One user's session: a cwd plus the command set."""

    def __init__(self, hacfs: Optional[HacFileSystem] = None):
        self.hacfs = hacfs if hacfs is not None else HacFileSystem()
        self.cwd = "/"
        #: the tenant facade queries route through (None = the host view)
        self.tenant = None

    # -- path handling ---------------------------------------------------------

    def resolve_path(self, path: str) -> str:
        """Make *path* absolute against the cwd (lexical; ``..`` is resolved
        by the VFS so symlinked directories behave correctly)."""
        if not path:
            return self.cwd
        return path if pathutil.is_absolute(path) else pathutil.join(self.cwd, path)

    # -- navigation ---------------------------------------------------------------

    def cd(self, path: str) -> str:
        target = self.resolve_path(path)
        res = self.hacfs.fs.resolve(target)
        if not res.node.is_dir:
            raise NotADirectory(target)
        self.cwd = self.hacfs._canonical_dir(target)
        return self.cwd

    def pwd(self) -> str:
        return self.cwd

    # -- listing ----------------------------------------------------------------

    def ls(self, path: str = "", long: bool = False) -> str:
        target = self.resolve_path(path)
        names = self.hacfs.listdir(target)
        if not long:
            return "\n".join(names)
        classifications = {}
        try:
            classifications = {name: cls for name, (cls, _t)
                               in self.hacfs.links(target).items()}
        except (FileNotFound, KeyError):
            pass
        rows = []
        for name in names:
            entry = pathutil.join(target, name)
            st = self.hacfs.lstat(entry)
            link_target = self.hacfs.readlink(entry) if st.is_symlink else None
            rows.append((name, st.type, st.attrs.mode, st.size, st.mtime,
                         link_target, classifications.get(name)))
        return long_listing(rows)

    def sls(self, path: str = "") -> List[Tuple[str, str, str]]:
        """Classified link listing: (name, classification, target)."""
        target = self.resolve_path(path)
        return sorted((name, cls, tgt) for name, (cls, tgt)
                      in self.hacfs.links(target).items())

    # -- ordinary commands ----------------------------------------------------------

    def mkdir(self, path: str) -> None:
        self.hacfs.mkdir(self.resolve_path(path))

    def rmdir(self, path: str) -> None:
        self.hacfs.rmdir(self.resolve_path(path))

    def touch(self, path: str) -> None:
        target = self.resolve_path(path)
        if not self.hacfs.exists(target, follow=False):
            self.hacfs.create(target)

    def write(self, path: str, text: str, append: bool = False) -> int:
        return self.hacfs.write_file(self.resolve_path(path),
                                     text.encode("utf-8"), append=append)

    def cat(self, path: str) -> str:
        return self.hacfs.read_file(self.resolve_path(path)).decode(
            "utf-8", errors="replace")

    def cp(self, src: str, dst: str) -> None:
        data = self.hacfs.read_file(self.resolve_path(src))
        self.hacfs.write_file(self.resolve_path(dst), data)

    def mv(self, src: str, dst: str) -> None:
        self.hacfs.rename(self.resolve_path(src), self.resolve_path(dst))

    def rm(self, path: str) -> None:
        self.hacfs.unlink(self.resolve_path(path))

    def ln(self, target: str, linkpath: str) -> None:
        self.hacfs.symlink(self.resolve_path(target),
                           self.resolve_path(linkpath))

    def stat(self, path: str):
        return self.hacfs.stat(self.resolve_path(path))

    # -- semantic commands -------------------------------------------------------------

    def smkdir(self, path: str, query: str) -> str:
        return self.hacfs.smkdir(self.resolve_path(path), query)

    def squery(self, path: str = "") -> Optional[str]:
        """Read a directory's query (the paper's ``sreadin``)."""
        return self.hacfs.get_query(self.resolve_path(path))

    def schquery(self, path: str, query: Optional[str]) -> None:
        """Change (or with None, detach) a directory's query."""
        self.hacfs.set_query(self.resolve_path(path), query)

    def sact(self, link_path: str) -> List[str]:
        return self.hacfs.sact(self.resolve_path(link_path))

    def ssync(self, path: str = "/", asynchronous: bool = False):
        """Reindex + re-evaluate *path*'s subtree.

        With ``asynchronous=True`` the sync is queued behind the
        maintenance scheduler's next drain instead of running inline —
        in batched mode it returns ``None`` immediately, in eager mode
        (nothing to defer behind) it degrades to a synchronous sync.
        """
        target = self.resolve_path(path)
        if asynchronous and self.hacfs.maintenance.request_sync(target):
            return None
        return self.hacfs.ssync(target)

    def smount(self, path: str, namespace: NameSpace) -> None:
        self.hacfs.smount(self.resolve_path(path), namespace)

    def sunmount(self, path: str, namespace_id: Optional[str] = None) -> None:
        self.hacfs.sunmount(self.resolve_path(path), namespace_id)

    def mount(self, path: str, fs: FileSystem) -> None:
        self.hacfs.mount(self.resolve_path(path), fs)

    def unmount(self, path: str) -> FileSystem:
        return self.hacfs.unmount(self.resolve_path(path))

    def sprohibited(self, path: str = "") -> List[str]:
        return self.hacfs.prohibited(self.resolve_path(path))

    def sscope(self, path: str = "") -> dict:
        """What the directory provides: local/remote/namespace composition
        plus the same staleness entries ``health()`` reports — one source
        of truth, so this display and ``health()`` always agree."""
        return self.hacfs.describe_scope(self.resolve_path(path))

    def spermanent(self, link_path: str) -> None:
        self.hacfs.make_permanent(self.resolve_path(link_path))

    def swatch(self, path: str) -> str:
        """Keep a subtree index-fresh on every write (eager mode)."""
        return self.hacfs.watch(self.resolve_path(path))

    def sunwatch(self, path: str) -> bool:
        return self.hacfs.unwatch(self.resolve_path(path))

    def fsck(self, repair: bool = False) -> List[str]:
        """Audit HAC's structures; returns rendered findings."""
        return [str(f) for f in self.hacfs.fsck(repair=repair)]

    # -- tenants -----------------------------------------------------------------

    def tenant_create(self, name: str,
                      max_inodes: Optional[int] = None,
                      max_bytes: Optional[int] = None,
                      max_docs: Optional[int] = None,
                      weight: int = 1) -> str:
        """Create a tenant namespace; returns its host scope root."""
        from repro.core.quota import QuotaSpec

        tenant = self.hacfs.tenants.create(
            name, quota=QuotaSpec(max_inodes=max_inodes, max_bytes=max_bytes,
                                  max_docs=max_docs, weight=weight))
        return tenant.root

    def tenant_list(self) -> dict:
        """Per-tenant root/usage/quota/pending, as ``health()`` reports."""
        return self.hacfs.tenants.describe()

    def tenant_use(self, name: Optional[str] = None) -> str:
        """Route subsequent ``glimpse`` calls through one tenant's facade
        (quota-aware, subtree-scoped); ``None`` returns to the host view."""
        if name is None:
            self.tenant = None
            return "(host)"
        self.tenant = self.hacfs.tenants.get(name)
        return self.tenant.name

    def tenant_quota(self, name: str,
                     max_inodes: Optional[int] = None,
                     max_bytes: Optional[int] = None,
                     max_docs: Optional[int] = None,
                     weight: int = 1) -> dict:
        """Replace a tenant's budgets; returns its refreshed describe row."""
        from repro.core.quota import QuotaSpec

        self.hacfs.tenants.set_quota(
            name, QuotaSpec(max_inodes=max_inodes, max_bytes=max_bytes,
                            max_docs=max_docs, weight=weight))
        return self.hacfs.tenants.describe()[name]

    # -- search cluster ----------------------------------------------------------

    def smkcluster(self, shards: int = 3) -> str:
        """Replace the CBA engine with a sharded search cluster and reindex
        the corpus into it (semantic directories re-evaluate against the
        cluster from here on)."""
        from repro.cba.backend import open_backend

        hacfs = self.hacfs
        old = hacfs.engine
        num_blocks = old.num_blocks
        factory = open_backend(f"cluster:{shards}")
        cluster = factory(hacfs._load_doc, counters=hacfs.counters,
                          clock=hacfs.clock, transducer=old.transducer,
                          num_blocks=num_blocks, fast_path=old.fast_path)
        hacfs.adopt_engine(cluster)
        return (f"sharded cluster with {shards} shard(s), "
                f"{len(cluster)} docs indexed")

    def shards(self) -> List[Tuple[str, int, str, int]]:
        """Per-shard rows ``(shard id, docs, health, rpc calls)`` — empty
        when the engine is not a cluster."""
        from repro.cluster import ShardedSearchCluster

        engine = self.hacfs.engine
        if not isinstance(engine, ShardedSearchCluster):
            return []
        health = engine.health()
        return [(sid, len(shard.engine), health[sid],
                 int(shard.transport.calls))
                for sid, shard in engine.shards.items()]

    def shards_kill(self, shard_id: str) -> str:
        """Partition one shard off (every RPC to it fails until revival)."""
        engine = self.hacfs.engine
        if not hasattr(engine, "kill_shard"):
            raise InvalidArgument(shard_id, "engine is not a sharded cluster")
        if shard_id not in engine.shards:
            raise InvalidArgument(shard_id, "no such shard")
        engine.kill_shard(shard_id)
        return shard_id

    def shards_restore(self, shard_id: str) -> str:
        """Heal a killed shard and force its breaker closed."""
        engine = self.hacfs.engine
        if not hasattr(engine, "revive_shard"):
            raise InvalidArgument(shard_id, "engine is not a sharded cluster")
        if shard_id not in engine.shards:
            raise InvalidArgument(shard_id, "no such shard")
        engine.revive_shard(shard_id)
        return shard_id

    # -- maintenance scheduler ----------------------------------------------------

    def sched_status(self) -> dict:
        """Snapshot of the maintenance scheduler (mode, queue, counters)."""
        return self.hacfs.maintenance.status()

    def sched_mode(self, mode: str) -> str:
        """Switch the scheduler between ``eager`` and ``batched``."""
        self.hacfs.maintenance.set_mode(mode)
        return self.hacfs.maintenance.mode

    def sched_drain(self) -> int:
        """Apply everything pending right now; returns ops applied."""
        return self.hacfs.maintenance.drain(reason="explicit")

    def sched_publish(self) -> int:
        """Force a snapshot publish of the engine's current state without
        draining the pending batch; returns the new version."""
        return self.hacfs.maintenance.publish()

    def sched_lag(self, replica: str, publishes: int) -> str:
        """Make replicas skip the next *publishes* publishes (the
        staleness-injection control behind ``sched lag``).

        On a cluster, ``shard0:r1`` lags one replica and a bare
        ``shard0`` lags the whole shard; on a monolithic engine the
        argument is a replica id (see ``snapshot_info()['replicas']``).
        """
        engine = self.hacfs.engine
        if hasattr(engine, "shards"):
            shard_id = replica.split(":", 1)[0]
            if shard_id not in engine.shards:
                raise InvalidArgument(replica, "no such shard")
            engine.set_replica_lag(
                shard_id, publishes,
                replica_id=replica if ":" in replica else None)
        else:
            engine.set_replica_lag(replica, publishes)
        return replica

    # -- admission control --------------------------------------------------------

    def admit_status(self) -> dict:
        """The admission gate's structured status (also in health())."""
        return self.hacfs.admission.status()

    def admit_on(self) -> dict:
        self.hacfs.admission.enable()
        return self.hacfs.admission.status()

    def admit_off(self) -> dict:
        self.hacfs.admission.disable()
        return self.hacfs.admission.status()

    # -- chaos soak ---------------------------------------------------------------

    def chaos_run(self, seed: int = 0, k: int = 0, steps: int = 40,
                  windows: int = 2, admission: bool = True) -> dict:
        """Run one seeded chaos soak in a *throwaway* twin world (this
        shell's file system is untouched) and return its report; the
        report is kept for ``chaos_status``."""
        # lazy import: repro.chaos builds worlds out of this module, so a
        # top-level import would be circular
        from repro.chaos import ChaosRun

        run = ChaosRun(seed=seed, k=k, steps=steps, windows=windows,
                       admission=admission)
        run.run()
        self._last_chaos = run.report()
        return self._last_chaos

    def chaos_status(self) -> Optional[dict]:
        """The report of the last ``chaos_run`` in this session, if any."""
        return getattr(self, "_last_chaos", None)

    # -- observability -----------------------------------------------------------

    def hacstat(self, prefix: str = "") -> dict:
        """Snapshot of counters, histograms, and the span breakdown,
        optionally restricted to counter names starting with *prefix*."""
        snap = self.hacfs.obs.snapshot()
        if prefix:
            snap["counters"] = {k: v for k, v in snap["counters"].items()
                                if k.startswith(prefix)}
        return snap

    def trace_on(self) -> None:
        self.hacfs.obs.enable()

    def trace_off(self) -> None:
        self.hacfs.obs.disable()

    def trace_clear(self) -> None:
        self.hacfs.obs.clear()

    def trace_spans(self, name: Optional[str] = None,
                    op_id: Optional[int] = None) -> List[dict]:
        return [s.to_obj() for s in
                self.hacfs.obs.trace.spans(name=name, op_id=op_id)]

    def trace_export(self, path: str) -> int:
        """Write the captured spans as JSONL *into the HAC file system*;
        returns the number of spans written."""
        text = self.hacfs.obs.trace.export_jsonl()
        count = len(self.hacfs.obs.trace.spans())
        self.hacfs.write_file(self.resolve_path(path), text.encode("utf-8"))
        return count

    def glimpse(self, query: str, scope_path: str = "/",
                consistency: str = "strong") -> List[str]:
        """Ad-hoc search without creating a semantic directory — the
        'regular glimpse' usage the Table 4 bench compares against.

        ``consistency='strong'`` (the default) keeps the read-your-writes
        barrier semantics: drain pending maintenance, then answer from the
        live engine.  ``consistency='snapshot'`` answers from the last
        *published* index version with no barrier at all — the query never
        waits on (or triggers) write-side work, at the cost of not seeing
        batched updates newer than the last publish.
        """
        from repro.cba.queryparser import parse_query
        from repro.cba import evaluator

        if consistency not in ("strong", "snapshot"):
            raise ValueError(f"unknown consistency level: {consistency!r}")
        if self.tenant is not None:
            return self.tenant.glimpse(query, scope_path=scope_path,
                                       consistency=consistency)
        # the admission gate may downgrade a strong read to snapshot while
        # back-ends are degraded (a no-op until 'admit on')
        consistency = self.hacfs.admission.admit_read(consistency)
        if consistency == "snapshot":
            return self._glimpse_snapshot(query, scope_path)
        # ad-hoc searches honour the same pre-query barrier as semantic
        # directories: never answer over a torn (undrained) batch
        self.hacfs.maintenance.barrier()
        ast = parse_query(query, resolve_dir=self.hacfs.dirmap.uid_of)
        scope = self.hacfs.scopes.provided(self.resolve_path(scope_path))
        hits = evaluator.evaluate(
            ast, self.hacfs.engine,
            resolve_dirref=lambda uid: self.hacfs.scopes.provided_by_uid(uid).local,
            scope=scope.local)
        out = []
        for doc_id in hits:
            doc = self.hacfs.engine.doc_by_id(doc_id)
            if doc is not None:
                out.append(doc.path)
        return sorted(out)

    def _glimpse_snapshot(self, query: str, scope_path: str) -> List[str]:
        """The zero-barrier read path: evaluate against the engine's
        published snapshot view.

        The content half of the query sees exactly the last published
        index version.  Directory scopes (the *scope_path* restriction and
        any ``DirRef`` operand) still resolve through the live directory
        state — they are set lookups, not index reads — so a query scoped
        to a semantic directory can mix a fresher membership with
        as-of-publish content; the property suite therefore fuzzes the
        content path, and callers needing scope-exact answers use
        ``consistency='strong'``.
        """
        from repro.cba.queryparser import parse_query
        from repro.cba import evaluator

        hacfs = self.hacfs
        view = hacfs.engine.snapshot_view()
        with hacfs.obs.trace.span("hac.glimpse_snapshot",
                                  version=view.version,
                                  skew=getattr(view, "skew", 0)) as span:
            ast = parse_query(query, resolve_dir=hacfs.dirmap.uid_of)
            target = self.resolve_path(scope_path)
            if hacfs._canonical_dir(target) == "/":
                scope = view.all_docs()
            else:
                scope = hacfs.scopes.provided(target).local & view.all_docs()
            hits = evaluator.evaluate(
                ast, view,
                resolve_dirref=lambda uid:
                    hacfs.scopes.provided_by_uid(uid).local,
                scope=scope)
            out = []
            for doc_id in hits:
                doc = view.doc_by_id(doc_id)
                if doc is not None:
                    out.append(doc.path)
            span.set(hits=len(hits))
        return sorted(out)
