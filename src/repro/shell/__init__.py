"""The user-facing command layer.

:class:`~repro.shell.session.HacShell` gives the paper's command set —
``cd``/``ls``/``mkdir``/``mv``/``rm``/``cat`` plus ``smkdir``/``squery``/
``ssync``/``sact``/``smount``/``sls`` — over one :class:`HacFileSystem`,
resolving paths against a current working directory the way a login shell
does.  :mod:`repro.shell.cli` wraps it in an interactive REPL (the ``hac``
entry point) for poking at a demo file system.
"""

from repro.shell.session import HacShell

__all__ = ["HacShell"]
