"""Interactive REPL for exploring a HAC file system (the ``hac`` script).

Starts with a small demo name space (notes, mail, and a mountable demo
"digital library") and accepts the shell's command set::

    hac> smkdir fingerprint fingerprint
    hac> ls -l fingerprint
    hac> sact fingerprint/msg0000.txt
    hac> help

This is a convenience for humans; programmatic users should drive
:class:`~repro.shell.session.HacShell` directly.
"""

from __future__ import annotations

import shlex
import sys
from typing import List, Optional

from repro.shell.session import HacShell
from repro.remote.searchsvc import SimulatedSearchService
from repro.workloads.mailgen import MailGenerator

HELP = """\
commands:
  ls [-l] [path]        list a directory (with -l, show link classifications)
  cd PATH | pwd         navigate
  mkdir/rmdir PATH      directories
  cat PATH              show a file (remote links fetch over 'the network')
  write PATH TEXT...    write a file
  mv SRC DST | rm PATH  move / remove (removing a query link prohibits it)
  ln TARGET LINK        symbolic link (permanent inside semantic dirs)
  smkdir PATH QUERY...  create a semantic directory
  squery [PATH]         show a directory's query
  sscope [PATH]         scope composition (local/remote/degraded breakdown)
  schquery PATH QUERY.. change a directory's query
  sls [PATH]            classified link listing
  sact LINK             show the matching lines behind a link
  ssync [--async] [PATH]  reindex + re-evaluate dependents (--async queues it)
  sched [status|mode M|drain|publish]  maintenance scheduler (modes: eager,
                        batched; publish forces a snapshot publish, no drain)
  sched lag ID N        lag replica ID (cluster: shard0 or shard0:r1) N publishes
  smount PATH demo      mount the demo digital library semantically
  smkcluster [K]        shard the content index across K engines (default 3)
  shards                per-shard doc counts, health, and RPC traffic
  shards kill|restore S partition shard S off / heal it again
  admit [status|on|off] breaker-driven admission gate (downgrade strong
                        reads, shed writes past the queue-depth bound)
  chaos run [SEED [K [STEPS]]]  seeded fault-injection soak in a twin
                        world, invariant-checked against a clean oracle
  chaos status          report of the last chaos run
  tenant create NAME [inodes=N] [bytes=N] [docs=N] [weight=N]
                        carve a tenant namespace with optional budgets
  tenant list           per-tenant root, usage, quota, and pending work
  tenant use [NAME|-]   route glimpse through a tenant facade (- = host)
  tenant quota NAME [inodes=N] [bytes=N] [docs=N] [weight=N]
                        replace a tenant's budgets / fair-share weight
  glimpse QUERY...      ad-hoc search (tenant-scoped under 'tenant use')
  swatch/sunwatch PATH  automatic index maintenance for a subtree
  fsck [--repair]       audit HAC's internal structures
  hacstat [PREFIX]      counters, histograms, and span breakdown
  trace on|off|clear    toggle span capture
  trace show [NAME]     dump captured spans (optionally one span name)
  trace export PATH     write spans as JSONL into the file system
  help | quit
"""


def build_demo_shell() -> HacShell:
    """A small populated name space so the REPL is interesting."""
    shell = HacShell()
    hacfs = shell.hacfs
    hacfs.makedirs("/notes")
    hacfs.write_file("/notes/fp-design.txt",
                     b"fingerprint matcher design notes: minutiae, ridges\n")
    hacfs.write_file("/notes/todo.txt", b"buy milk, call bob about the budget\n")
    MailGenerator().populate(hacfs, "/mail", count=10)
    hacfs.mkdir("/library")
    hacfs.ssync("/")
    return shell


_DEMO_LIBRARY_DOCS = {
    "fp-survey": "a survey of fingerprint recognition techniques",
    "nn-paper": "neural networks and their discontents",
    "glimpse-paper": "glimpse a tool to search through entire file systems",
}


def execute(shell: HacShell, line: str) -> Optional[str]:
    """Run one command line; returns output text (None to quit)."""
    try:
        argv = shlex.split(line)
    except ValueError as exc:
        return f"parse error: {exc}"
    if not argv:
        return ""
    cmd, args = argv[0], argv[1:]
    try:
        return _dispatch(shell, cmd, args)
    except SystemExit:
        return None
    except Exception as exc:  # the REPL must survive any command error
        return f"error: {exc}"


def _dispatch(shell: HacShell, cmd: str, args: List[str]) -> Optional[str]:
    if cmd in ("quit", "exit"):
        raise SystemExit
    if cmd == "help":
        return HELP
    if cmd == "ls":
        long = "-l" in args
        paths = [a for a in args if a != "-l"]
        return shell.ls(paths[0] if paths else "", long=long)
    if cmd == "cd":
        return shell.cd(args[0] if args else "/")
    if cmd == "pwd":
        return shell.pwd()
    if cmd == "mkdir":
        shell.mkdir(args[0])
        return ""
    if cmd == "rmdir":
        shell.rmdir(args[0])
        return ""
    if cmd == "cat":
        return shell.cat(args[0])
    if cmd == "write":
        shell.write(args[0], " ".join(args[1:]) + "\n")
        return ""
    if cmd == "mv":
        shell.mv(args[0], args[1])
        return ""
    if cmd == "rm":
        shell.rm(args[0])
        return ""
    if cmd == "ln":
        shell.ln(args[0], args[1])
        return ""
    if cmd == "smkdir":
        path = shell.smkdir(args[0], " ".join(args[1:]))
        return f"semantic directory {path}"
    if cmd == "squery":
        return str(shell.squery(args[0] if args else ""))
    if cmd == "sscope":
        desc = shell.sscope(args[0] if args else "")
        return "\n".join(f"{k}: {v}" for k, v in desc.items())
    if cmd == "schquery":
        shell.schquery(args[0], " ".join(args[1:]) or None)
        return ""
    if cmd == "sls":
        rows = shell.sls(args[0] if args else "")
        return "\n".join(f"{name}  [{cls}]  {tgt}" for name, cls, tgt in rows)
    if cmd == "sact":
        return "\n".join(shell.sact(args[0]))
    if cmd == "ssync":
        asynchronous = "--async" in args
        paths = [a for a in args if a != "--async"]
        plan = shell.ssync(paths[0] if paths else "/",
                           asynchronous=asynchronous)
        if plan is None:
            return "sync queued behind the next drain"
        return repr(plan)
    if cmd == "sched":
        return _sched_command(shell, args)
    if cmd == "smount":
        path = args[0] if args and args[0] != "demo" else "/library"
        service = SimulatedSearchService("demolib", documents=_DEMO_LIBRARY_DOCS)
        shell.smount(path, service)
        return f"mounted demo library at {path}"
    if cmd == "smkcluster":
        return shell.smkcluster(int(args[0]) if args else 3)
    if cmd == "shards":
        if args and args[0] in ("kill", "restore"):
            if len(args) < 2:
                return f"usage: shards {args[0]} SHARD"
            if args[0] == "kill":
                return f"killed {shell.shards_kill(args[1])}"
            return f"restored {shell.shards_restore(args[1])}"
        rows = shell.shards()
        if not rows:
            return "(engine is not a cluster — try 'smkcluster')"
        return "\n".join(f"{sid}  docs={docs}  {health}  calls={calls}"
                         for sid, docs, health, calls in rows)
    if cmd == "admit":
        return _admit_command(shell, args)
    if cmd == "chaos":
        return _chaos_command(shell, args)
    if cmd == "tenant":
        return _tenant_command(shell, args)
    if cmd == "glimpse":
        return "\n".join(shell.glimpse(" ".join(args)))
    if cmd == "swatch":
        return f"watching {shell.swatch(args[0])}"
    if cmd == "sunwatch":
        return "unwatched" if shell.sunwatch(args[0]) else "was not watched"
    if cmd == "fsck":
        findings = shell.fsck(repair="--repair" in args)
        return "\n".join(findings) if findings else "clean"
    if cmd == "hacstat":
        from repro.shell.formatting import render_metrics
        return render_metrics(shell.hacstat(args[0] if args else ""))
    if cmd == "trace":
        return _trace_command(shell, args)
    return f"unknown command: {cmd} (try help)"


def _sched_command(shell: HacShell, args: List[str]) -> str:
    sub = args[0] if args else "status"
    if sub == "status":
        status = shell.sched_status()
        return "\n".join(f"{k}: {v:g}" if isinstance(v, float) else f"{k}: {v}"
                         for k, v in status.items())
    if sub == "mode":
        if len(args) < 2:
            return "usage: sched mode eager|batched"
        return f"scheduler mode: {shell.sched_mode(args[1])}"
    if sub == "drain":
        return f"drained ({shell.sched_drain()} index ops)"
    if sub == "publish":
        return f"published snapshot version {shell.sched_publish()}"
    if sub == "lag":
        if len(args) < 3:
            return "usage: sched lag REPLICA PUBLISHES"
        lagged = shell.sched_lag(args[1], int(args[2]))
        return f"lagged {lagged} by {args[2]} publish(es)"
    return f"unknown sched subcommand: {sub} (status|mode|drain|publish|lag)"


def _render_status(status: dict) -> str:
    return "\n".join(f"{k}: {v}" for k, v in status.items())


def _admit_command(shell: HacShell, args: List[str]) -> str:
    sub = args[0] if args else "status"
    if sub == "status":
        return _render_status(shell.admit_status())
    if sub == "on":
        return _render_status(shell.admit_on())
    if sub == "off":
        return _render_status(shell.admit_off())
    return f"unknown admit subcommand: {sub} (status|on|off)"


def _chaos_command(shell: HacShell, args: List[str]) -> str:
    sub = args[0] if args else "status"
    if sub == "run":
        seed = int(args[1]) if len(args) > 1 else 0
        k = int(args[2]) if len(args) > 2 else 0
        steps = int(args[3]) if len(args) > 3 else 40
        report = shell.chaos_run(seed=seed, k=k, steps=steps)
        lines = [f"{key}: {report[key]}"
                 for key in ("seed", "k", "steps", "applied", "shed",
                             "failed", "crashes_hit", "recoveries", "ok")]
        lines.extend(f"violation: {v}" for v in report["violations"])
        return "\n".join(lines)
    if sub == "status":
        report = shell.chaos_status()
        if report is None:
            return "(no chaos run yet — try 'chaos run 1')"
        import json
        return json.dumps(report, indent=2, sort_keys=True, default=str)
    return f"unknown chaos subcommand: {sub} (run|status)"


def _parse_quota_args(args: List[str]) -> dict:
    """``inodes=10 bytes=4096 docs=5 weight=3`` → QuotaSpec kwargs."""
    keys = {"inodes": "max_inodes", "bytes": "max_bytes",
            "docs": "max_docs", "weight": "weight"}
    out: dict = {}
    for arg in args:
        key, _, value = arg.partition("=")
        if key not in keys or not value:
            raise ValueError(f"expected KEY=N with KEY in {sorted(keys)}, "
                             f"got {arg!r}")
        out[keys[key]] = int(value)
    return out


def _render_tenant_rows(described: dict) -> str:
    return "\n".join(
        f"{name}  root={row['root']}  inodes={row['usage']['inodes']}  "
        f"bytes={row['usage']['bytes']}  pending={row['pending']}  "
        f"quota={row['quota']}"
        for name, row in sorted(described.items()))


def _tenant_command(shell: HacShell, args: List[str]) -> str:
    sub = args[0] if args else "list"
    if sub == "create":
        if len(args) < 2:
            return "usage: tenant create NAME [inodes=N] [bytes=N] [docs=N] [weight=N]"
        root = shell.tenant_create(args[1], **_parse_quota_args(args[2:]))
        return f"tenant {args[1]} at {root}"
    if sub == "list":
        rows = shell.tenant_list()
        if not rows:
            return "(no tenants — try 'tenant create NAME')"
        return _render_tenant_rows(rows)
    if sub == "use":
        name = args[1] if len(args) > 1 and args[1] != "-" else None
        return f"querying as {shell.tenant_use(name)}"
    if sub == "quota":
        if len(args) < 2:
            return "usage: tenant quota NAME [inodes=N] [bytes=N] [docs=N] [weight=N]"
        row = shell.tenant_quota(args[1], **_parse_quota_args(args[2:]))
        return _render_tenant_rows({args[1]: row})
    return f"unknown tenant subcommand: {sub} (create|list|use|quota)"


def _trace_command(shell: HacShell, args: List[str]) -> str:
    import json

    sub = args[0] if args else "show"
    if sub == "on":
        shell.trace_on()
        return "tracing on"
    if sub == "off":
        shell.trace_off()
        return "tracing off"
    if sub == "clear":
        shell.trace_clear()
        return "trace buffer cleared"
    if sub == "show":
        spans = shell.trace_spans(name=args[1] if len(args) > 1 else None)
        if not spans:
            return "(no spans captured — try 'trace on')"
        return "\n".join(json.dumps(s, sort_keys=True) for s in spans)
    if sub == "export":
        if len(args) < 2:
            return "usage: trace export PATH"
        count = shell.trace_export(args[1])
        return f"wrote {count} spans to {shell.resolve_path(args[1])}"
    return f"unknown trace subcommand: {sub} (on|off|clear|show|export)"


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``hac`` console script."""
    shell = build_demo_shell()
    print("HAC demo shell — 'help' for commands, 'quit' to leave.")
    while True:
        try:
            line = input(f"hac:{shell.pwd()}> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        out = execute(shell, line)
        if out is None:
            return 0
        if out:
            print(out)


if __name__ == "__main__":
    sys.exit(main())
