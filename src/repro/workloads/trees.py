"""Random directory trees and operation sequences for property testing.

``build_random_tree`` materialises a seeded random hierarchy (directories,
files, symlinks) on any file-system layer; ``random_ops`` produces a stream
of feasible mutating operations against a live tree, used by the hypothesis
tests that hammer the scope-consistency invariant.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

WORDS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta",
         "fingerprint", "glimpse", "kernel", "socket", "parser")


def build_random_tree(fs, seed: int = 0, n_dirs: int = 6, n_files: int = 12,
                      n_links: int = 3, root: str = "/t") -> Tuple[List[str], List[str]]:
    """Create a random tree; returns ``(dir paths, file paths)``."""
    rng = random.Random(seed)
    fs.makedirs(root)
    dirs = [root]
    for i in range(n_dirs):
        parent = rng.choice(dirs)
        path = f"{parent}/d{i}"
        fs.mkdir(path)
        dirs.append(path)
    files = []
    for i in range(n_files):
        parent = rng.choice(dirs)
        path = f"{parent}/f{i}.txt"
        words = rng.choices(WORDS, k=rng.randint(5, 30))
        fs.write_file(path, (" ".join(words) + "\n").encode("utf-8"))
        files.append(path)
    for i in range(min(n_links, len(files))):
        parent = rng.choice(dirs)
        target = rng.choice(files)
        link = f"{parent}/l{i}"
        if not fs.exists(link, follow=False):
            fs.symlink(target, link)
    return dirs, files


def random_ops(fs, rng: random.Random, dirs: List[str], files: List[str],
               count: int = 10) -> List[str]:
    """Apply *count* random feasible mutations; returns a log of what ran."""
    log: List[str] = []
    for step in range(count):
        choice = rng.randrange(5)
        if choice == 0 and dirs:
            parent = rng.choice(dirs)
            path = f"{parent}/nd{step}"
            if not fs.exists(path):
                fs.mkdir(path)
                dirs.append(path)
                log.append(f"mkdir {path}")
        elif choice == 1 and dirs:
            parent = rng.choice(dirs)
            path = f"{parent}/nf{step}.txt"
            words = rng.choices(WORDS, k=rng.randint(3, 20))
            fs.write_file(path, (" ".join(words) + "\n").encode("utf-8"))
            if path not in files:
                files.append(path)
            log.append(f"write {path}")
        elif choice == 2 and files:
            victim = rng.choice(files)
            if fs.exists(victim, follow=False):
                fs.unlink(victim)
                files.remove(victim)
                log.append(f"unlink {victim}")
        elif choice == 3 and files and dirs:
            src = rng.choice(files)
            dst_dir = rng.choice(dirs)
            dst = f"{dst_dir}/mv{step}.txt"
            if fs.exists(src, follow=False) and not fs.exists(dst, follow=False):
                fs.rename(src, dst)
                files.remove(src)
                files.append(dst)
                log.append(f"rename {src} {dst}")
        elif choice == 4 and files:
            victim = rng.choice(files)
            if fs.exists(victim, follow=False):
                extra = " ".join(rng.choices(WORDS, k=5))
                fs.write_file(victim, (extra + "\n").encode("utf-8"), append=True)
                log.append(f"append {victim}")
    return log
