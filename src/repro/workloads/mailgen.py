"""Synthetic mail for the paper's running "fingerprint project" example.

The fingerprint semantic directory is supposed to gather project mail,
notes, source files, and articles scattered across the name space.  This
generator produces deterministic mailbox files with ``From:`` / ``To:`` /
``Subject:`` headers (which the SFS baseline's transducer also understands)
and topic-tagged bodies, so the examples and integration tests have a
realistic mixed corpus.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

DEFAULT_PEOPLE = ("alice", "bob", "carol", "dave", "erin")
DEFAULT_TOPICS = ("fingerprint", "budget", "lunch", "deadline", "glimpse")

_BODY_WORDS = (
    "the results look promising and we should discuss them next week "
    "please review the attached notes before the meeting and send any "
    "comments about the design the implementation is mostly done but the "
    "tests still fail on large inputs"
).split()


class MailGenerator:
    """Deterministic mail messages with controllable topic mix."""

    def __init__(self, people: Sequence[str] = DEFAULT_PEOPLE,
                 topics: Sequence[str] = DEFAULT_TOPICS, seed: int = 11):
        self.people = list(people)
        self.topics = list(topics)
        self.seed = seed

    def message(self, index: int) -> Tuple[Dict[str, str], str]:
        """Headers and body of message *index* (stable)."""
        rng = random.Random(self.seed * 65537 + index)
        sender = rng.choice(self.people)
        recipient = rng.choice([p for p in self.people if p != sender])
        topic = self.topics[index % len(self.topics)]
        headers = {
            "From": sender,
            "To": recipient,
            "Subject": f"{topic} update {index}",
            "Date": f"1999-0{1 + index % 9}-{1 + index % 27:02d}",
        }
        words = rng.choices(_BODY_WORDS, k=rng.randint(30, 80))
        insert_at = rng.randrange(len(words))
        words[insert_at:insert_at] = [topic, "project"]
        body_lines = [" ".join(words[i:i + 10]) for i in range(0, len(words), 10)]
        return headers, "\n".join(body_lines)

    def render(self, index: int) -> str:
        headers, body = self.message(index)
        head = "\n".join(f"{k}: {v}" for k, v in headers.items())
        return f"{head}\n\n{body}\n"

    def populate(self, fs, root: str = "/mail", count: int = 20) -> List[str]:
        """Write *count* messages under *root*; returns the paths."""
        root = root.rstrip("/") or "/mail"
        fs.makedirs(root)
        paths = []
        for index in range(count):
            path = f"{root}/msg{index:04d}.txt"
            fs.write_file(path, self.render(index).encode("utf-8"))
            paths.append(path)
        return paths

    def topic_of(self, index: int) -> str:
        return self.topics[index % len(self.topics)]
