"""Workload and corpus generators for the benchmarks and examples.

The paper evaluates on the Andrew benchmark (Table 1/2) and on a 17 000-file
/ 150 MB text database indexed by Glimpse (Table 3/4).  Neither artefact is
available, so this package generates deterministic synthetic equivalents:

* :mod:`repro.workloads.corpus` — seeded text corpus with a Zipf-flavoured
  vocabulary and *topic injection*: marker words placed into a controlled
  fraction of files, so Table 4's few/intermediate/many query selectivities
  are dialled in exactly;
* :mod:`repro.workloads.andrew` — the five-phase Andrew benchmark
  (Makedir / Copy / Scan / Read / Make) over any of our file-system layers;
* :mod:`repro.workloads.mailgen` — synthetic mail messages for the paper's
  running "fingerprint project" example;
* :mod:`repro.workloads.trees` — random directory trees for property tests.
"""

from repro.workloads.andrew import AndrewBenchmark, AndrewConfig
from repro.workloads.corpus import CorpusConfig, CorpusGenerator

__all__ = [
    "AndrewBenchmark",
    "AndrewConfig",
    "CorpusConfig",
    "CorpusGenerator",
]
