"""Deterministic synthetic text corpus with controllable query selectivity.

The generator builds a pseudo-word vocabulary from a seed, samples word
frequencies Zipf-style (a few very common words, a long tail), and spreads
files across a directory fan-out.  *Topics* are the selectivity control:
``topics={"fingerprint": 0.05}`` plants the marker word ``fingerprint`` in
5 % of the files (several times each, so the word also survives tokenised
previews), which is how the Table 4 bench dials in queries that match few,
intermediate, or many files.

Everything is pure functions of the seed: the same configuration always
produces byte-identical files.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


class CorpusConfig:
    """Shape of a generated corpus."""

    def __init__(self, n_files: int = 100, words_per_file: int = 200,
                 vocabulary: int = 2000, dirs: int = 10,
                 topics: Optional[Dict[str, float]] = None,
                 topic_repeats: int = 3, seed: int = 42):
        if n_files <= 0 or words_per_file <= 0 or vocabulary <= 0 or dirs <= 0:
            raise ValueError("corpus dimensions must be positive")
        self.n_files = n_files
        self.words_per_file = words_per_file
        self.vocabulary = vocabulary
        self.dirs = dirs
        #: topic word → fraction of files carrying it
        self.topics = dict(topics or {})
        self.topic_repeats = topic_repeats
        self.seed = seed


class CorpusGenerator:
    """Generates files (as strings) and writes them into a file system."""

    def __init__(self, config: Optional[CorpusConfig] = None):
        self.config = config if config is not None else CorpusConfig()
        self._rng = random.Random(self.config.seed)
        self._vocab = self._make_vocabulary()
        self._weights = self._zipf_weights(len(self._vocab))
        self._topic_sets: Dict[str, set] = {}

    # -- vocabulary -----------------------------------------------------------

    def _make_word(self, rng: random.Random) -> str:
        syllables = rng.randint(2, 4)
        return "".join(rng.choice(_CONSONANTS) + rng.choice(_VOWELS)
                       for _ in range(syllables))

    def _make_vocabulary(self) -> List[str]:
        rng = random.Random(self.config.seed * 7919 + 1)
        vocab = set()
        while len(vocab) < self.config.vocabulary:
            vocab.add(self._make_word(rng))
        # topic markers must never collide with background vocabulary
        for topic in self.config.topics:
            vocab.discard(topic.lower())
        return sorted(vocab)

    @staticmethod
    def _zipf_weights(n: int, s: float = 1.1) -> List[float]:
        return [1.0 / (rank ** s) for rank in range(1, n + 1)]

    # -- documents ---------------------------------------------------------------

    def topic_files(self, topic: str) -> List[int]:
        """Indices of the files that carry *topic* (deterministic)."""
        fraction = self.config.topics[topic]
        count = max(1, round(fraction * self.config.n_files))
        rng = random.Random((self.config.seed, topic).__hash__() & 0x7FFFFFFF)
        return sorted(rng.sample(range(self.config.n_files), count))

    def document(self, index: int) -> str:
        """The text of file *index* (stable across calls)."""
        rng = random.Random(self.config.seed * 104729 + index)
        words = rng.choices(self._vocab, weights=self._weights,
                            k=self.config.words_per_file)
        for topic in sorted(self.config.topics):
            if index in self._topic_sets.setdefault(
                    topic, set(self.topic_files(topic))):
                for _ in range(self.config.topic_repeats):
                    pos = rng.randrange(len(words) + 1)
                    words.insert(pos, topic.lower())
        lines = []
        for start in range(0, len(words), 12):
            lines.append(" ".join(words[start:start + 12]))
        return "\n".join(lines) + "\n"

    def documents(self) -> Iterator[Tuple[str, str]]:
        """Yield ``(relative path, text)`` for the whole corpus."""
        for index in range(self.config.n_files):
            yield self.relative_path(index), self.document(index)

    def relative_path(self, index: int) -> str:
        d = index % self.config.dirs
        return f"dir{d:03d}/file{index:05d}.txt"

    # -- materialisation ------------------------------------------------------------

    def populate(self, fs, root: str = "/corpus") -> List[str]:
        """Write the corpus into *fs* (anything with makedirs/write_file);
        returns the absolute paths written."""
        root = root.rstrip("/") or "/corpus"
        fs.makedirs(root)
        made_dirs = set()
        paths: List[str] = []
        for rel, text in self.documents():
            dirname, _, fname = rel.rpartition("/")
            dirpath = f"{root}/{dirname}"
            if dirpath not in made_dirs:
                fs.makedirs(dirpath)
                made_dirs.add(dirpath)
            path = f"{dirpath}/{fname}"
            fs.write_file(path, text.encode("utf-8"))
            paths.append(path)
        return paths

    def as_dict(self, prefix: str = "") -> Dict[str, str]:
        """The corpus as ``{name: text}`` — feeds remote search services."""
        return {prefix + rel: text for rel, text in self.documents()}

    def total_bytes(self) -> int:
        return sum(len(text) for _rel, text in self.documents())
