"""Digital-library workload: bulk ingest plus a Zipf-skewed query stream.

The second tenant archetype: a library tenant that ingests documents in
large batches (catalogue imports, not interactive edits) and then serves
a read-heavy query stream whose term popularity follows a Zipf law — a
few head terms dominate, with a long tail of rare ones.  Against the
code-repo churner it is the *starved* side of the fair-share story: a
bulk ingest parks one big batch in the maintenance queue and then mostly
reads.

No numpy: the Zipf draw is an inverse-CDF walk over precomputed
cumulative weights with ``random.Random``, deterministic from the seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence

_SUBJECTS = ("fingerprint", "retrieval", "compression", "networks",
             "caching", "consensus", "indexing", "storage")
_FILLER = (
    "survey methods evaluation corpus benchmark analysis architecture "
    "latency throughput replica snapshot hierarchy semantic content"
).split()


class ZipfSampler:
    """Zipf(s) over ranks ``1..n`` via inverse CDF (no numpy)."""

    def __init__(self, n: int, s: float = 1.2):
        if n < 1:
            raise ValueError("need at least one rank")
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        self.cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self.cdf.append(acc)

    def draw(self, rng: random.Random) -> int:
        """A 0-based rank, head-heavy."""
        u = rng.random()
        lo, hi = 0, len(self.cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo


class DigitalLibraryGenerator:
    """Deterministic bulk ingest and a Zipf query stream for one tenant."""

    def __init__(self, subjects: Sequence[str] = _SUBJECTS, seed: int = 37,
                 zipf_s: float = 1.2):
        self.subjects = list(subjects)
        self.seed = seed
        self.sampler = ZipfSampler(len(self.subjects), s=zipf_s)

    def render(self, index: int) -> str:
        rng = random.Random(self.seed * 65537 + index)
        subject = self.subjects[index % len(self.subjects)]
        words = rng.choices(_FILLER, k=rng.randint(20, 50))
        words.insert(rng.randrange(len(words)), subject)
        return f"title: {subject} volume {index}\n\n" + " ".join(words) + "\n"

    def ingest(self, tenant, count: int = 60, batch: int = 20) -> List[str]:
        """Bulk-import *count* documents in *batch*-sized waves, with a
        barrier after each wave (the catalogue import commits per batch)."""
        tenant.makedirs("/stacks")
        paths = []
        for index in range(count):
            path = f"/stacks/vol{index:04d}.txt"
            tenant.write_file(path, self.render(index).encode("utf-8"))
            paths.append(path)
            if (index + 1) % batch == 0:
                tenant.barrier()
        tenant.barrier()
        return paths

    def query_stream(self, count: int, offset: int = 0) -> List[str]:
        """*count* query terms, Zipf-skewed over the subject list."""
        out = []
        for i in range(count):
            rng = random.Random(self.seed * 65537 + 50_000 + offset + i)
            out.append(self.subjects[self.sampler.draw(rng)])
        return out

    def run_queries(self, tenant, count: int = 30,
                    consistency: str = "strong") -> int:
        """Issue the query stream through the facade; returns total hits."""
        hits = 0
        for term in self.query_stream(count):
            hits += len(tenant.glimpse(term, consistency=consistency))
        return hits
