"""The Andrew Benchmark, five phases, over any file-system layer (Table 1/2).

Phases exactly as the paper describes them:

1. **Makedir** — reconstruct the source directory hierarchy at the
   destination;
2. **Copy** — copy every source file into it;
3. **Scan** — recursively stat every file without reading data;
4. **Read** — read every byte of every file;
5. **Make** — "compile and link": tokenise every source file, build a
   symbol table, compute checksums, write one object file per source and a
   final linked binary.  Compute-bound, which is why the paper sees the
   least relative overhead here.

The benchmark drives a *target* object through a small uniform interface
(mkdir/write_file/read_file/stat/listdir/open/read/write/close).  Plain
:class:`FileSystem`, :class:`HacFileSystem`, :class:`JadeFileSystem` and
:class:`PseudoFileSystem` all satisfy it (the raw VFS through a tiny
adapter that owns a descriptor table).
"""

from __future__ import annotations

import random
import time
import zlib
from typing import Dict, List, Optional, Tuple

from repro.vfs.fd import FDTable
from repro.vfs.filesystem import FileSystem

PHASES = ("makedir", "copy", "scan", "read", "make")


class AndrewConfig:
    """Size of the synthetic source tree."""

    def __init__(self, dirs: int = 8, files_per_dir: int = 6,
                 functions_per_file: int = 12, seed: int = 7):
        self.dirs = dirs
        self.files_per_dir = files_per_dir
        self.functions_per_file = functions_per_file
        self.seed = seed


class RawFsAdapter:
    """Uniform interface over a plain :class:`FileSystem` (the "UNIX" row)."""

    def __init__(self, fs: FileSystem):
        self.fs = fs
        self.fdtable = FDTable()

    def mkdir(self, path: str) -> None:
        self.fs.mkdir(path)

    def write_file(self, path: str, data: bytes) -> int:
        return self.fs.write_file(path, data)

    def read_file(self, path: str) -> bytes:
        return self.fs.read_file(path)

    def stat(self, path: str):
        return self.fs.stat(path)

    def listdir(self, path: str) -> List[str]:
        return self.fs.listdir(path)

    def open(self, path: str, mode: str = "r") -> int:
        return self.fs.open(self.fdtable, path, mode)

    def read(self, fd: int, size: int = -1) -> bytes:
        return self.fs.read(self.fdtable, fd, size)

    def write(self, fd: int, data: bytes) -> int:
        return self.fs.write(self.fdtable, fd, data)

    def close(self, fd: int) -> None:
        self.fs.close(self.fdtable, fd)


def generate_source_tree(config: AndrewConfig) -> Dict[str, str]:
    """``{relative path: C-like source text}`` for the benchmark input."""
    rng = random.Random(config.seed)
    tree: Dict[str, str] = {}
    for d in range(config.dirs):
        for f in range(config.files_per_dir):
            name = f"module{d:02d}/src{f:02d}.c"
            lines = [f"/* generated module {d}.{f} */",
                     '#include "system.h"', ""]
            for g in range(config.functions_per_file):
                fname = f"fn_{d}_{f}_{g}"
                lines.append(f"int {fname}(int a, int b) {{")
                body = rng.randint(2, 6)
                for i in range(body):
                    op = rng.choice(["+", "-", "*", "^"])
                    lines.append(f"    a = (a {op} b) + {rng.randint(1, 999)};")
                lines.append("    return a;")
                lines.append("}")
                lines.append("")
            tree[name] = "\n".join(lines)
    return tree


class AndrewBenchmark:
    """Runs the five phases and reports per-phase wall-clock seconds."""

    def __init__(self, target, config: Optional[AndrewConfig] = None,
                 src_root: str = "/andrew/src", dst_root: str = "/andrew/dst"):
        self.target = target
        self.config = config if config is not None else AndrewConfig()
        self.src_root = src_root.rstrip("/")
        self.dst_root = dst_root.rstrip("/")
        self.source = generate_source_tree(self.config)

    # -- setup (not timed) -----------------------------------------------------

    def install_sources(self) -> None:
        made = set()
        for part in self._ancestor_dirs(self.src_root):
            self._mkdir_once(part, made)
        for rel in sorted(self.source):
            dirname = rel.rsplit("/", 1)[0]
            self._mkdir_once(f"{self.src_root}/{dirname}", made)
            self.target.write_file(f"{self.src_root}/{rel}",
                                   self.source[rel].encode("utf-8"))

    @staticmethod
    def _ancestor_dirs(path: str) -> List[str]:
        comps = [c for c in path.split("/") if c]
        return ["/" + "/".join(comps[:i + 1]) for i in range(len(comps))]

    def _mkdir_once(self, path: str, made: set) -> None:
        if path in made:
            return
        try:
            self.target.mkdir(path)
        except Exception:
            pass  # already exists
        made.add(path)

    # -- the phases ----------------------------------------------------------------

    def phase_makedir(self) -> None:
        made = set()
        for part in self._ancestor_dirs(self.dst_root):
            self._mkdir_once(part, made)
        dirs = sorted({rel.rsplit("/", 1)[0] for rel in self.source})
        for d in dirs:
            self.target.mkdir(f"{self.dst_root}/{d}")

    def phase_copy(self) -> None:
        for rel in sorted(self.source):
            data = self.target.read_file(f"{self.src_root}/{rel}")
            self.target.write_file(f"{self.dst_root}/{rel}", data)

    def phase_scan(self) -> int:
        count = 0
        stack = [self.dst_root]
        while stack:
            cur = stack.pop()
            for name in self.target.listdir(cur):
                path = f"{cur}/{name}"
                st = self.target.stat(path)
                count += 1
                is_dir = st.is_dir if hasattr(st, "is_dir") \
                    else st.get("nlink", 1) >= 2
                if is_dir:
                    stack.append(path)
        return count

    def phase_read(self) -> int:
        total = 0
        for rel in sorted(self.source):
            fd = self.target.open(f"{self.dst_root}/{rel}", "r")
            while True:
                chunk = self.target.read(fd, 4096)
                if not chunk:
                    break
                total += len(chunk)
            self.target.close(fd)
        return total

    def phase_make(self) -> str:
        """Tokenise, 'compile' each file to a .o, then 'link' a binary."""
        symbols: Dict[str, int] = {}
        objects: List[Tuple[str, int]] = []
        for rel in sorted(self.source):
            data = self.target.read_file(f"{self.dst_root}/{rel}")
            text = data.decode("utf-8")
            tokens = text.replace("(", " ").replace(")", " ").split()
            for tok in tokens:
                if tok.startswith("fn_"):
                    symbols[tok.rstrip("{")] = len(symbols)
            checksum = zlib.crc32(data)
            # a quadratic-ish "optimisation pass" to keep Make compute-bound
            acc = checksum
            for tok in tokens:
                acc = (acc * 1000003 + hash(tok)) & 0xFFFFFFFF
            obj_path = f"{self.dst_root}/{rel}.o"
            payload = f"OBJ {rel} {checksum} {acc} {len(tokens)}\n".encode()
            self.target.write_file(obj_path, payload * 8)
            objects.append((obj_path, acc))
        link = zlib.crc32(repr(sorted(symbols)).encode())
        for _path, acc in objects:
            link = (link ^ acc) * 2654435761 & 0xFFFFFFFF
        binary = f"{self.dst_root}/a.out"
        self.target.write_file(binary, f"BIN {link} {len(symbols)}\n"
                               .encode() * 64)
        return binary

    # -- driver --------------------------------------------------------------------

    def run(self) -> Dict[str, float]:
        """Install sources, run all five phases, return seconds per phase."""
        self.install_sources()
        timings: Dict[str, float] = {}
        for phase in PHASES:
            fn = getattr(self, f"phase_{phase}")
            start = time.perf_counter()
            fn()
            timings[phase] = time.perf_counter() - start
        timings["total"] = sum(timings[p] for p in PHASES)
        return timings
