"""Code-repository workload: many small files, high churn.

The multi-tenant story needs a workload that behaves like a source tree
being actively developed — hundreds of small files spread over nested
module directories, with a steady stream of edits, renames, and deletes
concentrated on a hot subset (most commits touch the same few files).
Driven through a :class:`~repro.core.tenant.Tenant` facade it exercises
exactly the pressure the fair-share drain is for: a churning code-repo
tenant floods the maintenance queue while a quieter tenant should still
see its own work drain promptly.

Everything is deterministic from the seed (same ``random.Random``
derivation as :mod:`repro.workloads.mailgen`), so two worlds populated
and churned with the same seed are bit-identical.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

_MODULES = ("core", "vfs", "index", "shell", "util")
_STEMS = ("matcher", "parser", "walker", "buffer", "codec", "router")
_WORDS = (
    "def parse tokenize buffer flush index lookup resolve cache evict "
    "merge split ridge minutiae fingerprint query scope tenant drain "
    "publish snapshot barrier shard segment journal intent replay"
).split()


class CodeRepoGenerator:
    """Deterministic source-tree population plus a churn stream."""

    def __init__(self, modules: Sequence[str] = _MODULES,
                 stems: Sequence[str] = _STEMS, seed: int = 23):
        self.modules = list(modules)
        self.stems = list(stems)
        self.seed = seed

    def _rng(self, index: int) -> random.Random:
        return random.Random(self.seed * 65537 + index)

    def file_path(self, index: int) -> str:
        rng = self._rng(index)
        module = rng.choice(self.modules)
        stem = rng.choice(self.stems)
        return f"/src/{module}/{stem}{index:03d}.py"

    def render(self, index: int, revision: int = 0) -> str:
        """Source text of file *index* at *revision* (stable)."""
        rng = random.Random(self.seed * 65537 + index * 257 + revision)
        lines = [f"# module {self.file_path(index)} rev {revision}"]
        for _ in range(rng.randint(3, 12)):
            lines.append(" ".join(rng.choices(_WORDS, k=rng.randint(4, 9))))
        return "\n".join(lines) + "\n"

    def populate(self, tenant, count: int = 40) -> List[str]:
        """Lay out *count* small files under ``/src/<module>/``."""
        paths = []
        made = set()
        for index in range(count):
            path = self.file_path(index)
            parent = path.rsplit("/", 1)[0]
            if parent not in made:
                tenant.makedirs(parent)
                made.add(parent)
            tenant.write_file(path, self.render(index).encode("utf-8"))
            paths.append(path)
        return paths

    def churn(self, tenant, paths: List[str], steps: int = 60,
              hot_fraction: float = 0.25) -> List[Tuple[str, str]]:
        """Run *steps* deterministic edit/rename/delete ops over *paths*.

        Edits dominate and concentrate on the hot subset (the files every
        commit touches); renames and deletes hit the cold tail.  *paths*
        is mutated to track the live set; returns the applied op log.
        """
        hot = max(1, int(len(paths) * hot_fraction))
        log: List[Tuple[str, str]] = []
        for step in range(steps):
            rng = self._rng(10_000 + step)
            op = rng.choices(("edit", "rename", "delete"), (6, 2, 1))[0]
            if not paths:
                break
            if op == "edit":
                path = paths[rng.randrange(min(hot, len(paths)))]
                # stable per-path content index (str hash is process-salted)
                doc = sum(path.encode("utf-8")) % 1000
                tenant.write_file(path, self.render(
                    doc, revision=step).encode("utf-8"))
            elif op == "rename":
                pos = rng.randrange(len(paths))
                path = paths[pos]
                target = path.replace(".py", f"_r{step}.py")
                tenant.rename(path, target)
                paths[pos] = target
            else:
                pos = rng.randrange(len(paths))
                path = paths.pop(pos)
                tenant.unlink(path)
            log.append((op, path))
        return log
