"""Per-process file descriptor tables.

The paper notes that HAC keeps an open file-descriptor table and attribute
cache per process (charged to the Copy and Read phases of the Andrew
benchmark).  Here a :class:`FDTable` stands for one process's table; the
shell owns one, benchmarks create their own.

Descriptors are small integers reused lowest-first, as on UNIX.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, TYPE_CHECKING

from repro.errors import BadFileDescriptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.vfs.filesystem import FileSystem
    from repro.vfs.inode import FileNode


class OpenFile:
    """State of one open regular file: node, mode bits, and offset."""

    __slots__ = ("fs", "node", "readable", "writable", "offset")

    def __init__(self, fs: "FileSystem", node: "FileNode",
                 readable: bool, writable: bool, offset: int = 0):
        self.fs = fs
        self.node = node
        self.readable = readable
        self.writable = writable
        self.offset = offset

    def __repr__(self):
        mode = ("r" if self.readable else "") + ("w" if self.writable else "")
        return f"OpenFile(ino={self.node.ino}, mode={mode!r}, offset={self.offset})"


class FDTable:
    """Maps small-integer descriptors to :class:`OpenFile` records."""

    def __init__(self):
        self._open: Dict[int, OpenFile] = {}
        self._free: List[int] = []
        self._next = 3  # 0/1/2 reserved, as a nod to stdio

    def install(self, open_file: OpenFile) -> int:
        if self._free:
            fd = heapq.heappop(self._free)
        else:
            fd = self._next
            self._next += 1
        self._open[fd] = open_file
        return fd

    def get(self, fd: int) -> OpenFile:
        try:
            return self._open[fd]
        except KeyError:
            raise BadFileDescriptor(str(fd)) from None

    def remove(self, fd: int) -> OpenFile:
        try:
            open_file = self._open.pop(fd)
        except KeyError:
            raise BadFileDescriptor(str(fd)) from None
        heapq.heappush(self._free, fd)
        return open_file

    def close_all(self) -> None:
        for fd in list(self._open):
            self.remove(fd)

    def __len__(self) -> int:
        return len(self._open)

    def __contains__(self, fd: int) -> bool:
        return fd in self._open

    def approximate_bytes(self) -> int:
        """Rough footprint of the table, for the space-overhead bench."""
        return 64 * len(self._open) + 16
