"""The hierarchical file-system substrate.

The paper layers HAC over a SunOS UNIX file system; this package is our
equivalent substrate — a POSIX-like, in-memory virtual file system with:

* inodes for regular files, directories and symbolic links
  (:mod:`repro.vfs.inode`);
* a simulated block device that accounts for every data and metadata I/O
  (:mod:`repro.vfs.blockdev`), so benchmark overheads come from work the
  code actually performs;
* full path resolution with symlink following and loop detection, and the
  usual operation set — mkdir/rmdir/create/open/read/write/rename/unlink/
  symlink/stat (:mod:`repro.vfs.filesystem`);
* per-process file-descriptor tables (:mod:`repro.vfs.fd`);
* a shared attribute cache mirroring the paper's shared-memory stat cache
  (:mod:`repro.vfs.attrcache`);
* syntactic mount points grafting one file system onto another
  (``FileSystem.mount``/``unmount``);
* recursive tree walking helpers (:mod:`repro.vfs.walker`).
"""

from repro.vfs.attrcache import AttributeCache
from repro.vfs.blockdev import BlockDevice
from repro.vfs.fd import FDTable, OpenFile
from repro.vfs.filesystem import FileSystem
from repro.vfs.inode import Attributes, DirNode, FileNode, Inode, InodeType, SymlinkNode

__all__ = [
    "AttributeCache",
    "BlockDevice",
    "FDTable",
    "OpenFile",
    "FileSystem",
    "Attributes",
    "DirNode",
    "FileNode",
    "Inode",
    "InodeType",
    "SymlinkNode",
]
