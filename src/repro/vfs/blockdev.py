"""Simulated block device with I/O accounting.

The VFS stores file bytes in memory, but every operation charges this device
as though it had touched disk: data reads/writes are charged per block,
metadata updates (inode writes, directory entries, HAC's per-directory
records) per record.  The counters let benchmarks report simulated I/O cost
next to wall-clock time, and the optional capacity limit produces honest
``ENOSPC`` behaviour for failure-injection tests.

The device also provides a small record store keyed by string — this is the
"disk" that HAC's MetaStore writes per-directory state to (the extra I/O the
paper blames for the Makedir/Copy overheads in Table 1).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import NoSpace
from repro.util.stats import Counters


class BlockDevice:
    """Accounting-only block device.

    :param block_size: bytes per block (default 4096, as in the paper's era
        of UNIX file systems... roughly).
    :param capacity_blocks: optional hard limit; exceeding it raises
        :class:`repro.errors.NoSpace`.
    :param counters: shared :class:`Counters`; the device writes under the
        ``blockdev.`` prefix.
    """

    def __init__(self, block_size: int = 4096,
                 capacity_blocks: Optional[int] = None,
                 counters: Optional[Counters] = None):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self.counters = counters if counters is not None else Counters()
        self._io = self.counters.scoped("blockdev")
        self._data_blocks = 0
        self._meta_bytes = 0
        self._records: Dict[str, bytes] = {}

    # -- capacity ------------------------------------------------------------

    def _blocks_for(self, nbytes: int) -> int:
        return (nbytes + self.block_size - 1) // self.block_size

    @property
    def used_blocks(self) -> int:
        return self._data_blocks + self._blocks_for(self._meta_bytes)

    @property
    def used_bytes(self) -> int:
        return self.used_blocks * self.block_size

    def _check_capacity(self, extra_blocks: int, path: str = "") -> None:
        if self.capacity_blocks is None:
            return
        if self.used_blocks + extra_blocks > self.capacity_blocks:
            raise NoSpace(path, f"device full ({self.capacity_blocks} blocks)")

    # -- data I/O -------------------------------------------------------------

    def charge_read(self, nbytes: int) -> None:
        blocks = max(1, self._blocks_for(nbytes))
        self._io.add("read_ops")
        self._io.add("read_blocks", blocks)

    def charge_write(self, nbytes: int) -> None:
        blocks = max(1, self._blocks_for(nbytes))
        self._io.add("write_ops")
        self._io.add("write_blocks", blocks)

    def allocate(self, old_nbytes: int, new_nbytes: int, path: str = "") -> None:
        """Adjust data-block accounting when a file grows or shrinks."""
        old_blocks = self._blocks_for(old_nbytes)
        new_blocks = self._blocks_for(new_nbytes)
        if new_blocks > old_blocks:
            self._check_capacity(new_blocks - old_blocks, path)
        self._data_blocks += new_blocks - old_blocks

    # -- metadata I/O ----------------------------------------------------------

    def charge_meta_read(self) -> None:
        self._io.add("meta_read_ops")

    def charge_meta_write(self) -> None:
        self._io.add("meta_write_ops")

    # -- record store (used by the HAC MetaStore) -------------------------------

    def write_record(self, key: str, data: bytes) -> None:
        old = len(self._records.get(key, b""))
        growth = self._blocks_for(self._meta_bytes - old + len(data)) \
            - self._blocks_for(self._meta_bytes)
        if growth > 0:
            self._check_capacity(growth, key)
        self._meta_bytes += len(data) - old
        self._records[key] = data
        self.charge_meta_write()
        self.charge_write(len(data))

    def read_record(self, key: str) -> Optional[bytes]:
        data = self._records.get(key)
        self.charge_meta_read()
        if data is not None:
            self.charge_read(len(data))
        return data

    def delete_record(self, key: str) -> bool:
        data = self._records.pop(key, None)
        self.charge_meta_write()
        if data is None:
            return False
        self._meta_bytes -= len(data)
        return True

    def record_keys(self):
        return list(self._records)

    @property
    def record_bytes(self) -> int:
        """Total bytes held by the record store (HAC metadata footprint)."""
        return self._meta_bytes
