"""Simulated block device with I/O accounting.

The VFS stores file bytes in memory, but every operation charges this device
as though it had touched disk: data reads/writes are charged per block,
metadata updates (inode writes, directory entries, HAC's per-directory
records) per record.  The counters let benchmarks report simulated I/O cost
next to wall-clock time, and the optional capacity limit produces honest
``ENOSPC`` behaviour for failure-injection tests.

The device also provides a small record store keyed by string — this is the
"disk" that HAC's MetaStore writes per-directory state to (the extra I/O the
paper blames for the Makedir/Copy overheads in Table 1).
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, FrozenSet, Iterable, Optional

from repro.errors import CorruptRecord, DeviceCrashed, NoSpace
from repro.obs.trace import NULL_TRACER
from repro.util.stats import Counters


class FaultPlan:
    """A deterministic schedule of device faults.

    All indices count *record-store writes and deletes* since the device was
    created (see :attr:`BlockDevice.record_write_index`), so a test can dial
    in "crash at exactly the Nth persistence step" and get the same crash
    point on every run — no seed/ordering coupling.

    :param crash_at: the write with this index raises
        :class:`~repro.errors.DeviceCrashed` *before* persisting anything,
        and the device freezes (all later writes fail the same way).
    :param tear_at: the write with this index persists a truncated payload
        whose stored checksum still covers the full intended payload (a torn
        sector), then crashes the device.  Reading the record afterwards
        raises :class:`~repro.errors.CorruptRecord`.
    :param enospc_at: write indices that raise a *transient*
        :class:`~repro.errors.NoSpace` without persisting; later writes
        succeed again (a full-then-freed disk).
    :param enospc_allocs: data-block allocation indices (growths charged via
        :meth:`BlockDevice.allocate`) that raise transient ``NoSpace``.
    """

    __slots__ = ("crash_at", "tear_at", "enospc_at", "enospc_allocs")

    def __init__(self, crash_at: Optional[int] = None,
                 tear_at: Optional[int] = None,
                 enospc_at: Iterable[int] = (),
                 enospc_allocs: Iterable[int] = ()):
        self.crash_at = crash_at
        self.tear_at = tear_at
        self.enospc_at: FrozenSet[int] = frozenset(enospc_at)
        self.enospc_allocs: FrozenSet[int] = frozenset(enospc_allocs)

    def __repr__(self):
        return (f"FaultPlan(crash_at={self.crash_at}, tear_at={self.tear_at}, "
                f"enospc_at={sorted(self.enospc_at)}, "
                f"enospc_allocs={sorted(self.enospc_allocs)})")


class BlockDevice:
    """Accounting-only block device.

    :param block_size: bytes per block (default 4096, as in the paper's era
        of UNIX file systems... roughly).
    :param capacity_blocks: optional hard limit; exceeding it raises
        :class:`repro.errors.NoSpace`.
    :param counters: shared :class:`Counters`; the device writes under the
        ``blockdev.`` prefix.
    """

    def __init__(self, block_size: int = 4096,
                 capacity_blocks: Optional[int] = None,
                 counters: Optional[Counters] = None):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self.counters = counters if counters is not None else Counters()
        self._io = self.counters.scoped("blockdev")
        self._data_blocks = 0
        self._meta_bytes = 0
        self._records: Dict[str, bytes] = {}
        #: per-record checksums; a mismatch on read means a torn write
        self._sums: Dict[str, int] = {}
        self.fault_plan: Optional[FaultPlan] = None
        self._crashed = False
        #: monotonically increasing index of record writes/deletes
        self.record_write_index = 0
        #: monotonically increasing index of data-block growths
        self.alloc_index = 0
        #: pre-write hook: callback(key, old_bytes_or_None) fired before a
        #: record write or delete persists — the intent journal's capture
        #: point.  The hook may itself write records (recursion is the
        #: hook's problem to avoid).
        self.record_hook: Optional[Callable[[str, Optional[bytes]], None]] = None
        #: observability hook (set by the owning HacFileSystem); record
        #: I/O emits zero-duration trace events through it when enabled
        self.tracer = NULL_TRACER

    # -- fault injection -------------------------------------------------------

    def set_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        self.fault_plan = plan

    def clear_faults(self) -> None:
        """Simulate the reboot: lift the fault plan and un-freeze writes."""
        self.fault_plan = None
        self._crashed = False

    @property
    def crashed(self) -> bool:
        return self._crashed

    def _fail_if_crashed(self, key: str) -> None:
        if self._crashed:
            raise DeviceCrashed(key, "device is down (injected crash)")

    def _next_write_index(self) -> int:
        idx = self.record_write_index
        self.record_write_index += 1
        return idx

    # -- capacity ------------------------------------------------------------

    def _blocks_for(self, nbytes: int) -> int:
        return (nbytes + self.block_size - 1) // self.block_size

    @property
    def used_blocks(self) -> int:
        return self._data_blocks + self._blocks_for(self._meta_bytes)

    @property
    def used_bytes(self) -> int:
        return self.used_blocks * self.block_size

    def _check_capacity(self, extra_blocks: int, path: str = "") -> None:
        if self.capacity_blocks is None:
            return
        if self.used_blocks + extra_blocks > self.capacity_blocks:
            raise NoSpace(path, f"device full ({self.capacity_blocks} blocks)")

    # -- data I/O -------------------------------------------------------------

    def charge_read(self, nbytes: int) -> None:
        blocks = max(1, self._blocks_for(nbytes))
        self._io.add("read_ops")
        self._io.add("read_blocks", blocks)

    def charge_write(self, nbytes: int) -> None:
        blocks = max(1, self._blocks_for(nbytes))
        self._io.add("write_ops")
        self._io.add("write_blocks", blocks)

    def allocate(self, old_nbytes: int, new_nbytes: int, path: str = "") -> None:
        """Adjust data-block accounting when a file grows or shrinks."""
        old_blocks = self._blocks_for(old_nbytes)
        new_blocks = self._blocks_for(new_nbytes)
        if new_blocks > old_blocks:
            plan = self.fault_plan
            idx = self.alloc_index
            self.alloc_index += 1
            if plan is not None and idx in plan.enospc_allocs:
                self._io.add("injected_enospc")
                raise NoSpace(path, "device full (injected)")
            self._check_capacity(new_blocks - old_blocks, path)
        self._data_blocks += new_blocks - old_blocks

    # -- metadata I/O ----------------------------------------------------------

    def charge_meta_read(self) -> None:
        self._io.add("meta_read_ops")

    def charge_meta_write(self) -> None:
        self._io.add("meta_write_ops")

    # -- record store (used by the HAC MetaStore) -------------------------------

    def write_record(self, key: str, data: bytes) -> None:
        self._fail_if_crashed(key)
        if self.record_hook is not None:
            # the journal captures the pre-image (durably) before the write
            self.record_hook(key, self._records.get(key))
        idx = self._next_write_index()
        plan = self.fault_plan
        if plan is not None:
            if idx in plan.enospc_at:
                self._io.add("injected_enospc")
                raise NoSpace(key, "device full (injected)")
            if plan.crash_at is not None and idx == plan.crash_at:
                self._crashed = True
                self._io.add("injected_crashes")
                raise DeviceCrashed(key, f"power lost at record write {idx}")
            if plan.tear_at is not None and idx == plan.tear_at:
                # persist a torn payload, but record the checksum of what
                # *should* have been written — exactly what a half-flushed
                # sector plus an out-of-band checksum looks like
                torn = data[:max(0, len(data) // 2)]
                self._store(key, torn, checksum=zlib.crc32(data))
                self._crashed = True
                self._io.add("injected_tears")
                raise DeviceCrashed(key, f"write {idx} torn; power lost")
        self._store(key, data, checksum=zlib.crc32(data))
        if key.startswith("wal:"):
            self._io.add("wal_bytes", len(data))
        if self.tracer.enabled:
            self.tracer.event("dev.write_record", key=key, nbytes=len(data))

    def _store(self, key: str, data: bytes, checksum: int) -> None:
        old = len(self._records.get(key, b""))
        growth = self._blocks_for(self._meta_bytes - old + len(data)) \
            - self._blocks_for(self._meta_bytes)
        if growth > 0:
            self._check_capacity(growth, key)
        self._meta_bytes += len(data) - old
        self._records[key] = data
        self._sums[key] = checksum
        self.charge_meta_write()
        self.charge_write(len(data))

    def read_record(self, key: str) -> Optional[bytes]:
        data = self._records.get(key)
        self.charge_meta_read()
        if self.tracer.enabled:
            self.tracer.event("dev.read_record", key=key,
                              nbytes=len(data) if data is not None else 0)
        if data is None:
            return None
        self.charge_read(len(data))
        if self._sums.get(key) != zlib.crc32(data):
            self._io.add("checksum_failures")
            raise CorruptRecord(key, "record checksum mismatch")
        return data

    def verify_record(self, key: str) -> bool:
        """True when the record exists and passes its checksum (no charge)."""
        data = self._records.get(key)
        return data is not None and self._sums.get(key) == zlib.crc32(data)

    def corrupt_record(self, key: str) -> bool:
        """Test helper: flip the stored payload under an unchanged checksum."""
        data = self._records.get(key)
        if data is None:
            return False
        self._records[key] = bytes(b ^ 0xFF for b in data[:1]) + data[1:]
        return True

    def delete_record(self, key: str) -> bool:
        self._fail_if_crashed(key)
        old = self._records.get(key)
        if self.record_hook is not None:
            self.record_hook(key, old)
        idx = self._next_write_index()
        plan = self.fault_plan
        if plan is not None and plan.crash_at is not None \
                and idx == plan.crash_at:
            self._crashed = True
            self._io.add("injected_crashes")
            raise DeviceCrashed(key, f"power lost at record delete {idx}")
        data = self._records.pop(key, None)
        self._sums.pop(key, None)
        self.charge_meta_write()
        if self.tracer.enabled:
            self.tracer.event("dev.delete_record", key=key,
                              existed=data is not None)
        if data is None:
            return False
        self._meta_bytes -= len(data)
        return True

    def record_keys(self):
        return list(self._records)

    @property
    def record_bytes(self) -> int:
        """Total bytes held by the record store (HAC metadata footprint)."""
        return self._meta_bytes
