"""Recursive traversal helpers over a :class:`~repro.vfs.filesystem.FileSystem`.

``walk`` mirrors :func:`os.walk`; ``iter_files`` yields every regular file
with its absolute path, optionally descending into syntactic mounts (the HAC
indexer uses this to enumerate its whole personal name space).  Symbolic
links are reported but never followed during traversal, so link cycles
cannot hang a walk.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.util import pathutil
from repro.vfs.filesystem import FileSystem
from repro.vfs.inode import DirNode, FileNode, Inode, SymlinkNode


def walk(fs: FileSystem, top: str = "/",
         cross_mounts: bool = True) -> Iterator[Tuple[str, List[str], List[str]]]:
    """Yield ``(dirpath, dirnames, filenames)`` top-down.

    ``dirnames`` may be pruned in place by the caller, as with ``os.walk``.
    Symlinks appear in ``filenames`` regardless of what they point at.
    """
    res = fs.resolve(top)
    if not res.node.is_dir:
        raise ValueError(f"walk() needs a directory, got {top}")
    stack: List[Tuple[str, FileSystem, DirNode]] = [
        (pathutil.normalize(top), res.fs, res.node)  # type: ignore[list-item]
    ]
    while stack:
        dirpath, cur_fs, dirnode = stack.pop()
        dirnames: List[str] = []
        filenames: List[str] = []
        children = {}
        for name in sorted(dirnode.entries):
            child = dirnode.entries[name]
            target_fs = cur_fs
            if child.is_dir and child.ino in cur_fs._mounts:
                if not cross_mounts:
                    continue
                target_fs = cur_fs._mounts[child.ino]
                child = target_fs.root
            if child.is_dir:
                dirnames.append(name)
                children[name] = (target_fs, child)
            else:
                filenames.append(name)
        yield dirpath, dirnames, filenames
        # honour caller-side pruning of dirnames
        for name in reversed(dirnames):
            if name in children:
                sub_fs, sub_node = children[name]
                stack.append((pathutil.join(dirpath, name), sub_fs, sub_node))


def iter_files(fs: FileSystem, top: str = "/",
               cross_mounts: bool = True) -> Iterator[Tuple[str, FileNode]]:
    """Yield ``(path, FileNode)`` for every regular file under *top*."""
    for dirpath, _dirnames, filenames in walk(fs, top, cross_mounts=cross_mounts):
        for name in filenames:
            path = pathutil.join(dirpath, name)
            res = fs.resolve(path, follow=False)
            if isinstance(res.node, FileNode):
                yield path, res.node


def iter_symlinks(fs: FileSystem, top: str = "/",
                  cross_mounts: bool = True) -> Iterator[Tuple[str, SymlinkNode]]:
    """Yield ``(path, SymlinkNode)`` for every symlink under *top*."""
    for dirpath, _dirnames, filenames in walk(fs, top, cross_mounts=cross_mounts):
        for name in filenames:
            path = pathutil.join(dirpath, name)
            res = fs.resolve(path, follow=False)
            if isinstance(res.node, SymlinkNode):
                yield path, res.node


def find(fs: FileSystem, top: str = "/",
         predicate: Optional[Callable[[str, Inode], bool]] = None,
         cross_mounts: bool = True) -> List[str]:
    """Paths of every node under *top* matching *predicate* (default: all)."""
    out: List[str] = []
    for dirpath, dirnames, filenames in walk(fs, top, cross_mounts=cross_mounts):
        for name in list(dirnames) + list(filenames):
            path = pathutil.join(dirpath, name)
            node = fs.resolve(path, follow=False).node
            if predicate is None or predicate(path, node):
                out.append(path)
    return sorted(out)


def tree_size(fs: FileSystem, top: str = "/") -> Tuple[int, int, int]:
    """Return ``(directories, files, symlinks)`` counts under *top*."""
    dirs = files = links = 0
    for _dirpath, dirnames, filenames in walk(fs, top):
        dirs += len(dirnames)
        for name in filenames:
            node = fs.resolve(pathutil.join(_dirpath, name), follow=False).node
            if node.is_symlink:
                links += 1
            else:
                files += 1
    return dirs, files, links
