"""Shared attribute cache.

The paper (Table 1 discussion): when HAC creates a file it also initialises
an attribute cache entry in shared memory "so that different processes can
access it", speeding up the Scan and Read phases.  This module reproduces
that cache: a bounded LRU keyed by ``(fsid, ino)`` holding attribute
snapshots, with explicit invalidation on writes/renames/unlinks.

The HAC layer populates it on create and stat; `stat` hits served from here
skip the simulated metadata read on the block device.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.util.lru import LRUCache
from repro.util.stats import Counters
from repro.vfs.inode import Attributes

#: approximate bytes per cached entry, used by the space-overhead bench
#: (the paper reports ~16 KB of shared memory per process overall).
ENTRY_BYTES = 56


class AttributeCache:
    """Bounded cache of ``key → Attributes`` snapshots.

    Keys are opaque hashables; HAC keys by normalised path so a cache hit
    skips both the name lookup's metadata read and the stat itself.
    """

    def __init__(self, capacity: int = 256, counters: Optional[Counters] = None):
        self._lru: LRUCache[Hashable, Attributes] = LRUCache(capacity)
        self._stats = (counters or Counters()).scoped("attrcache")

    def put(self, key: Hashable, attrs: Attributes) -> None:
        self._lru.put(key, attrs.copy())
        self._stats.add("put")

    def get(self, key: Hashable) -> Optional[Attributes]:
        attrs = self._lru.get(key)
        self._stats.add("hit" if attrs is not None else "miss")
        return attrs.copy() if attrs is not None else None

    def invalidate(self, key: Hashable) -> None:
        if self._lru.invalidate(key):
            self._stats.add("invalidate")

    def clear(self) -> None:
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hit_rate(self) -> float:
        return self._lru.hit_rate

    def approximate_bytes(self) -> int:
        """Rough shared-memory footprint of the cache."""
        return ENTRY_BYTES * len(self._lru)
