"""Flat full-path → inode map: the tree folded into a hash table.

Per "Folding a Tree into a Map" (Yodaiken) and "Reconstruct the
Directories for In-Memory File Systems" (Zhang & Yang), component-wise
``namei`` is replaced on the hot path by one dictionary probe over the
normalized absolute path.  The map is an *accelerator*, never an
authority: only resolutions that are provably literal are cached — the
walk followed no symbolic link, crossed no mount point, saw no ``..``
component, ended on a non-symlink node, and stayed inside the file
system the call was made on.  Under those rules a cached path equals
``path_of(node)`` exactly, so the owning file system can invalidate
with fs-local canonical keys computed from the mutated parent.

Coherence protocol (enforced by :class:`repro.vfs.filesystem.FileSystem`):

* ``unlink``/``rmdir`` — exact invalidation of the removed path.
* file ``rename`` — exact invalidation of both the old and new paths.
* directory ``rename`` — exact invalidation of the (replaced) new path,
  then :meth:`rebase_prefix`: every descendant entry is moved to its
  new-prefix key and stamped with a fresh generation *in one pass*, so
  post-rename stats on descendants hit the map without a tree walk.
* ``mount``/``unmount`` — prefix invalidation of the cover path (the
  covered subtree is shadowed or unshadowed wholesale).

Stale entries are **detected, not trusted**: invalidation tombstones an
entry (generation ``-1``) rather than silently deleting it, and lookup
evicts tombstones with a counted ``stale`` miss.  A liveness probe
(``is_live``) backstops the protocol — an entry whose node is no longer
registered in the owning file system is treated as stale even if no
invalidation ever named it.  The global :attr:`generation` counts
invalidation events; entries remember the generation they were inserted
(or rebased) under, which the rename-storm property test uses to prove
no resolution is ever served from before the invalidation that should
have killed it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.util.stats import Counters

#: tombstone generation: the entry was invalidated and must not be served
STALE = -1


class PathMap:
    """Normalized-full-path → node cache with generational invalidation.

    The map never resolves anything itself; the owning
    :class:`~repro.vfs.filesystem.FileSystem` inserts only literal,
    mount-local, symlink-free resolutions and invalidates with fs-local
    canonical keys (see the module docstring for the protocol).
    """

    def __init__(self, is_live: Optional[Callable[[object], bool]] = None,
                 counters: Optional[Counters] = None):
        #: path → (node, generation-at-insert); generation STALE == tombstone
        self._entries: Dict[str, Tuple[object, int]] = {}
        #: bumped once per invalidation *event* (not per entry touched)
        self.generation = 0
        self._is_live = is_live if is_live is not None else (lambda node: True)
        counters = counters if counters is not None else Counters()
        self._stats = counters.scoped("pathmap")

    # ------------------------------------------------------------------
    # lookup / insert
    # ------------------------------------------------------------------

    def lookup(self, path: str):
        """The cached node for *path*, or ``None`` (miss or detected-stale)."""
        entry = self._entries.get(path)
        if entry is None:
            self._stats.add("miss")
            return None
        node, gen = entry
        if gen == STALE or not self._is_live(node):
            # detected, not trusted: evict and report a counted stale miss
            del self._entries[path]
            self._stats.add("stale")
            self._stats.add("miss")
            return None
        self._stats.add("hit")
        return node

    def insert(self, path: str, node) -> None:
        """Cache *path* → *node* at the current generation."""
        self._entries[path] = (node, self.generation)
        self._stats.add("insert")

    def entry_generation(self, path: str) -> Optional[int]:
        """Generation stamp of the entry at *path* (``STALE`` if
        tombstoned, ``None`` if absent) — observability for tests."""
        entry = self._entries.get(path)
        return None if entry is None else entry[1]

    def live_keys(self) -> List[str]:
        """Every non-tombstoned cached path — the oracle input for the
        rename-storm property test (and ``hacstat``-style debugging)."""
        return [k for k, (_n, gen) in self._entries.items() if gen != STALE]

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------

    def invalidate(self, path: str) -> int:
        """Tombstone the exact entry at *path*; returns entries touched."""
        self.generation += 1
        touched = self._tombstone(path)
        self._stats.add("invalidated", touched)
        return touched

    def invalidate_prefix(self, path: str) -> int:
        """Tombstone *path* and every entry below it."""
        self.generation += 1
        touched = self._tombstone(path)
        prefix = path.rstrip("/") + "/"
        for key in [k for k in self._entries if k.startswith(prefix)]:
            touched += self._tombstone(key)
        self._stats.add("invalidated", touched)
        return touched

    def rebase_prefix(self, old: str, new: str) -> int:
        """Move the entry at *old* and every descendant entry to its
        *new*-prefix key in one pass, stamping each with a fresh
        generation.  Returns entries moved.  Used on directory rename:
        the nodes themselves are unchanged, only their canonical paths
        shifted, so the entries stay servable at their new keys.
        """
        self.generation += 1
        prefix = old.rstrip("/") + "/"
        moved = 0
        moves: List[Tuple[str, str, object]] = []
        for key, (node, gen) in self._entries.items():
            if gen == STALE:
                continue
            if key == old:
                moves.append((key, new, node))
            elif key.startswith(prefix):
                moves.append((key, new.rstrip("/") + "/" + key[len(prefix):],
                              node))
        for key, target, node in moves:
            del self._entries[key]
            self._entries[target] = (node, self.generation)
            moved += 1
        self._stats.add("rebased", moved)
        return moved

    def clear(self) -> int:
        """Drop everything (mount-table surgery, restore)."""
        self.generation += 1
        dropped = len(self._entries)
        self._entries.clear()
        self._stats.add("invalidated", dropped)
        return dropped

    # ------------------------------------------------------------------
    # internals / introspection
    # ------------------------------------------------------------------

    def _tombstone(self, path: str) -> int:
        entry = self._entries.get(path)
        if entry is None or entry[1] == STALE:
            return 0
        self._entries[path] = (entry[0], STALE)
        return 1

    def __len__(self) -> int:
        return sum(1 for _, gen in self._entries.values() if gen != STALE)

    def __repr__(self):
        return (f"PathMap(entries={len(self)}, "
                f"generation={self.generation})")
