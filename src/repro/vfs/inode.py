"""Inode types for the VFS.

Three node kinds exist, as in the paper's substrate: regular files,
directories, and symbolic links.  Every node carries POSIX-ish attributes
and a parent pointer + name, so the absolute path of any live inode can be
reconstructed (the HAC layer leans on this to keep link targets resolvable
across renames).

Directories own a name → child mapping; ``.`` and ``..`` are not stored as
entries — path resolution handles them via the parent pointers.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Optional


class InodeType(enum.Enum):
    FILE = "file"
    DIRECTORY = "directory"
    SYMLINK = "symlink"


class Attributes:
    """Mutable stat-like attribute block.

    ``size`` for directories counts entries; for symlinks, the target length.
    """

    __slots__ = ("mode", "size", "ctime", "mtime", "atime", "nlink")

    def __init__(self, mode: int, size: int = 0, ctime: float = 0.0,
                 mtime: float = 0.0, atime: float = 0.0, nlink: int = 1):
        self.mode = mode
        self.size = size
        self.ctime = ctime
        self.mtime = mtime
        self.atime = atime
        self.nlink = nlink

    def copy(self) -> "Attributes":
        return Attributes(self.mode, self.size, self.ctime,
                          self.mtime, self.atime, self.nlink)

    def as_dict(self) -> Dict[str, float]:
        return {
            "mode": self.mode,
            "size": self.size,
            "ctime": self.ctime,
            "mtime": self.mtime,
            "atime": self.atime,
            "nlink": self.nlink,
        }

    def __repr__(self):
        return (f"Attributes(mode={oct(self.mode)}, size={self.size}, "
                f"mtime={self.mtime})")


class Inode:
    """Base class for all node kinds."""

    type: InodeType

    __slots__ = ("ino", "attrs", "parent", "name")

    def __init__(self, ino: int, mode: int, now: float):
        self.ino = ino
        self.attrs = Attributes(mode=mode, ctime=now, mtime=now, atime=now)
        #: the containing directory (None only for a file system root or a
        #: node that has been unlinked but is still open).
        self.parent: Optional["DirNode"] = None
        #: the name this node has inside ``parent``.
        self.name: str = ""

    @property
    def is_dir(self) -> bool:
        return self.type is InodeType.DIRECTORY

    @property
    def is_file(self) -> bool:
        return self.type is InodeType.FILE

    @property
    def is_symlink(self) -> bool:
        return self.type is InodeType.SYMLINK

    def __repr__(self):
        return f"{type(self).__name__}(ino={self.ino}, name={self.name!r})"


class FileNode(Inode):
    """Regular file holding its bytes in memory."""

    type = InodeType.FILE

    __slots__ = ("data",)

    def __init__(self, ino: int, mode: int, now: float):
        super().__init__(ino, mode, now)
        self.data = bytearray()

    def resize(self, new_size: int) -> None:
        if new_size < len(self.data):
            del self.data[new_size:]
        else:
            self.data.extend(b"\x00" * (new_size - len(self.data)))
        self.attrs.size = len(self.data)


class DirNode(Inode):
    """Directory mapping entry names to child inodes."""

    type = InodeType.DIRECTORY

    __slots__ = ("entries",)

    def __init__(self, ino: int, mode: int, now: float):
        super().__init__(ino, mode, now)
        self.entries: Dict[str, Inode] = {}
        self.attrs.nlink = 2  # "." and the parent's entry

    def lookup(self, name: str) -> Optional[Inode]:
        return self.entries.get(name)

    def attach(self, name: str, node: Inode) -> None:
        """Insert *node* under *name*, wiring its parent pointer."""
        self.entries[name] = node
        node.parent = self
        node.name = name
        self.attrs.size = len(self.entries)
        if node.is_dir:
            self.attrs.nlink += 1

    def detach(self, name: str) -> Inode:
        """Remove the entry *name*; the node keeps running if it is open."""
        node = self.entries.pop(name)
        node.parent = None
        node.name = ""
        self.attrs.size = len(self.entries)
        if node.is_dir:
            self.attrs.nlink -= 1
        return node

    def names(self) -> Iterator[str]:
        return iter(sorted(self.entries))

    def is_empty(self) -> bool:
        return not self.entries


class SymlinkNode(Inode):
    """Symbolic link storing a target path string (may dangle)."""

    type = InodeType.SYMLINK

    __slots__ = ("target",)

    def __init__(self, ino: int, mode: int, now: float, target: str):
        super().__init__(ino, mode, now)
        self.target = target
        self.attrs.size = len(target)


def path_of(node: Inode) -> str:
    """Reconstruct the absolute path of a live node inside its file system.

    Raises :class:`ValueError` for a node detached from the tree (unlinked
    but still open), since it no longer *has* a path.  A file-system root is
    recognised by its ``"/"`` name (set by :class:`FileSystem`); a detached
    node has no parent *and* an empty name.
    """
    parts = []
    cur: Optional[Inode] = node
    while cur is not None and cur.parent is not None:
        parts.append(cur.name)
        cur = cur.parent
    if cur is None or cur.name != "/":
        raise ValueError(f"node {node!r} is detached from the tree")
    return "/" + "/".join(reversed(parts))
