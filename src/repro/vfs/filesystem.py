"""The POSIX-like virtual file system.

One :class:`FileSystem` owns a tree of inodes rooted at ``/``.  Path
resolution follows symbolic links (with an ELOOP bound), crosses syntactic
mount points into other :class:`FileSystem` instances, and resolves ``..``
correctly across mount boundaries by keeping an explicit crossing stack.

All byte and metadata traffic is charged to the attached
:class:`repro.vfs.blockdev.BlockDevice`, so higher layers (HAC, the Jade and
Pseudo baselines) inherit honest I/O accounting for free.

The API takes absolute paths; the shell layer translates a user's working
directory.  Operations raise the errno-flavoured exceptions from
:mod:`repro.errors`.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    BadFileDescriptor,
    CrossDevice,
    DeviceBusy,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    SymlinkLoop,
)
from repro.obs.trace import NULL_TRACER
from repro.util import pathutil
from repro.util.clock import VirtualClock
from repro.util.stats import Counters
from repro.vfs.blockdev import BlockDevice
from repro.vfs.fd import FDTable, OpenFile
from repro.vfs.pathmap import PathMap
from repro.vfs.inode import (
    Attributes,
    DirNode,
    FileNode,
    Inode,
    InodeType,
    SymlinkNode,
    path_of,
)

#: maximum number of symlink expansions before ELOOP (Linux uses 40).
MAX_SYMLINK_FOLLOWS = 40

_fsid_counter = itertools.count(1)


class StatResult:
    """Snapshot of an inode's identity and attributes."""

    __slots__ = ("fsid", "ino", "type", "attrs")

    def __init__(self, fsid: str, ino: int, node_type: InodeType, attrs: Attributes):
        self.fsid = fsid
        self.ino = ino
        self.type = node_type
        self.attrs = attrs

    @property
    def is_dir(self) -> bool:
        return self.type is InodeType.DIRECTORY

    @property
    def is_file(self) -> bool:
        return self.type is InodeType.FILE

    @property
    def is_symlink(self) -> bool:
        return self.type is InodeType.SYMLINK

    @property
    def size(self) -> int:
        return self.attrs.size

    @property
    def mtime(self) -> float:
        return self.attrs.mtime

    def __repr__(self):
        return f"StatResult({self.fsid}:{self.ino}, {self.type.value}, size={self.size})"


class Resolved:
    """Result of path resolution: the owning file system and the node."""

    __slots__ = ("fs", "node")

    def __init__(self, fs: "FileSystem", node: Inode):
        self.fs = fs
        self.node = node


class FileSystem:
    """An in-memory hierarchical file system with syntactic mount support."""

    def __init__(self, name: str = "fs",
                 clock: Optional[VirtualClock] = None,
                 counters: Optional[Counters] = None,
                 device: Optional[BlockDevice] = None,
                 fsid: Optional[str] = None,
                 path_map: bool = True):
        self.name = name
        # fsid defaults to a process-unique id; callers needing runs that
        # are reproducible across processes (the chaos soak hashes doc
        # keys — which embed the fsid — onto shards) pin it explicitly
        self.fsid = fsid if fsid is not None else f"{name}#{next(_fsid_counter)}"
        self.clock = clock if clock is not None else VirtualClock()
        self.counters = counters if counters is not None else Counters()
        self._ops = self.counters.scoped("vfs")
        self.device = device if device is not None else BlockDevice(counters=self.counters)
        self._next_ino = itertools.count(2)
        self.root = DirNode(ino=1, mode=0o755, now=self.clock.now)
        self.root.name = "/"  # lets path_of() recognise the root
        self._inodes: Dict[int, Inode] = {1: self.root}
        #: covered-directory ino → mounted file system
        self._mounts: Dict[int, "FileSystem"] = {}
        #: optional hooks fired after mutating operations; the HAC layer
        #: subscribes to feed its watch/maintenance pipeline (dirty-set
        #: tracking), tests subscribe for assertions.  Signature:
        #: callback(event: str, **details).
        self.observers: List[Callable[..., None]] = []
        #: observability hook (wired by HacFileSystem); syscalls emit trace
        #: events through it when enabled — one attribute check when not
        self.tracer = NULL_TRACER
        #: the tree folded into a map (see repro.vfs.pathmap): literal
        #: resolutions are served from one dict probe; mutators keep it
        #: coherent with fs-local canonical keys.  None == walk-only.
        self._pathmap: Optional[PathMap] = (
            PathMap(is_live=self._node_is_live, counters=self.counters)
            if path_map else None)

    def _node_is_live(self, node) -> bool:
        return self._inodes.get(node.ino) is node

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _notify(self, event: str, **details) -> None:
        for cb in self.observers:
            cb(event, **details)

    def _new_ino(self) -> int:
        return next(self._next_ino)

    def _register(self, node: Inode) -> None:
        self._inodes[node.ino] = node

    def node_by_ino(self, ino: int) -> Optional[Inode]:
        """The live node with this ino, or None when freed."""
        return self._inodes.get(ino)

    def path_of_ino(self, ino: int) -> Optional[str]:
        """Absolute path (within this FS) of a live, attached inode."""
        node = self._inodes.get(ino)
        if node is None:
            return None
        try:
            return path_of(node)
        except ValueError:
            return None

    # ------------------------------------------------------------------
    # path resolution
    # ------------------------------------------------------------------

    def resolve(self, path: str, follow: bool = True) -> Resolved:
        """Resolve *path* to its node, following mounts (and symlinks unless
        ``follow=False`` for the final component)."""
        self._ops.add("namei")
        if self.tracer.enabled:
            self.tracer.event("vfs.namei", path=path)
        fs, node = self._resolve_norm(pathutil.normalize(path), follow=follow)
        return Resolved(fs, node)

    def _resolve_parent(self, path: str) -> Tuple["FileSystem", DirNode, str]:
        """Resolve all but the last component; returns (fs, parent, name).

        The final name must be a plain component (not empty, ``.`` or ``..``).
        """
        norm = pathutil.normalize(path)
        parent_path, name = pathutil.split(norm)
        if not name or name in (".", ".."):
            raise InvalidArgument(path, "operation needs a plain final component")
        fs, node = self._resolve_norm(parent_path, follow=True)
        if not node.is_dir:
            raise NotADirectory(parent_path)
        # a mount covering the parent was already followed by _walk
        return fs, node, name  # type: ignore[return-value]

    def _resolve_norm(self, norm: str,
                      follow: bool) -> Tuple["FileSystem", Inode]:
        """Map-first resolution of a normalized path.

        A cached entry is only ever a literal, mount-local, non-symlink
        resolution (see :meth:`_walk`'s cacheability rules), so a hit is
        valid for both ``follow`` modes and always owned by *self*.
        """
        pm = self._pathmap
        if pm is not None:
            node = pm.lookup(norm)
            if node is not None:
                return self, node
        fs, node, literal = self._walk(norm, follow_last=follow)
        if (pm is not None and literal and fs is self
                and not node.is_symlink):
            pm.insert(norm, node)
        return fs, node

    def _walk(self, path: str,
              follow_last: bool) -> Tuple["FileSystem", Inode, bool]:
        """Component walk; returns ``(fs, node, literal)``.

        *literal* is True when the resolution is safe to cache in the
        path map: no symlink was followed, no mount boundary crossed,
        and no ``..`` component seen — i.e. the normalized input path
        IS the node's fs-local canonical path.
        """
        norm = pathutil.normalize(path)
        comps = list(pathutil.split_components(norm))
        # stack of (host_fs, covered_dirnode) for each mount crossing
        stack: List[Tuple[FileSystem, DirNode]] = []
        fs: FileSystem = self
        cur: Inode = self.root
        follows = 0
        literal = True
        steps = 0
        while comps:
            steps += 1
            comp = comps.pop(0)
            if comp == "..":
                literal = False
                if cur is fs.root:
                    if stack:
                        fs, covered = stack.pop()
                        cur = covered.parent or covered
                    # else: ".." at the top root stays put (POSIX)
                else:
                    if not cur.is_dir:
                        self._ops.add("walk_steps", steps)
                        raise NotADirectory(norm)
                    cur = cur.parent if cur.parent is not None else fs.root
                continue
            if not cur.is_dir:
                self._ops.add("walk_steps", steps)
                raise NotADirectory(norm)
            child = cur.lookup(comp)  # type: ignore[union-attr]
            if child is None:
                self._ops.add("walk_steps", steps)
                raise FileNotFound(norm)
            is_last = not comps
            if child.is_symlink and (not is_last or follow_last):
                literal = False
                follows += 1
                if follows > MAX_SYMLINK_FOLLOWS:
                    self._ops.add("walk_steps", steps)
                    raise SymlinkLoop(norm)
                target = child.target  # type: ignore[union-attr]
                tcomps = pathutil.split_components(target)
                if pathutil.is_absolute(target):
                    # absolute targets restart from the top-level root
                    stack.clear()
                    fs = self
                    cur = self.root
                comps = tcomps + comps
                continue
            if child.is_dir and child.ino in fs._mounts:
                literal = False
                stack.append((fs, child))  # type: ignore[arg-type]
                fs = fs._mounts[child.ino]
                cur = fs.root
                continue
            cur = child
        if steps:
            self._ops.add("walk_steps", steps)
        return fs, cur, literal

    # ------------------------------------------------------------------
    # path-map coherence (see repro.vfs.pathmap for the protocol)
    # ------------------------------------------------------------------

    def _pm_key(self, parent: DirNode, name: str) -> Optional[str]:
        """Fs-local canonical path of *name* under *parent*, or None when
        the parent chain is detached (entry cannot be cached either)."""
        try:
            ppath = path_of(parent)
        except ValueError:
            return None
        return pathutil.join(ppath, name)

    def reset_path_map(self) -> None:
        """Drop every cached resolution and bump the map generation.

        For callers that hand the live tree to a new owner (crash-recovery
        reopen pins the fsid and reuses this very instance): entries cached
        before the handover would otherwise revalidate as live and serve
        resolutions the new owner never vetted.
        """
        pm = self._pathmap
        if pm is not None:
            pm.clear()

    def _pm_invalidate(self, parent: DirNode, name: str,
                       prefix: bool = False) -> None:
        """Invalidate the map entry for ``parent/name`` on *this* fs."""
        pm = self._pathmap
        if pm is None:
            return
        key = self._pm_key(parent, name)
        if key is None:
            pm.clear()
            return
        if prefix:
            pm.invalidate_prefix(key)
        else:
            pm.invalidate(key)

    # ------------------------------------------------------------------
    # directories
    # ------------------------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755) -> StatResult:
        self._ops.add("mkdir")
        if self.tracer.enabled:
            self.tracer.event("vfs.mkdir", path=path)
        fs, parent, name = self._resolve_parent(path)
        if parent.lookup(name) is not None:
            raise FileExists(path)
        node = DirNode(ino=fs._new_ino(), mode=mode, now=self.clock.now)
        fs._register(node)
        parent.attach(name, node)
        parent.attrs.mtime = self.clock.now
        fs.device.charge_meta_write()
        self._notify("mkdir", path=pathutil.normalize(path), fs=fs, node=node)
        return StatResult(fs.fsid, node.ino, node.type, node.attrs.copy())

    def makedirs(self, path: str, mode: int = 0o755) -> None:
        """Create every missing ancestor, then the leaf (no error if present)."""
        norm = pathutil.normalize(path)
        built = "/"
        for comp in pathutil.split_components(norm):
            built = pathutil.join(built, comp)
            try:
                res = self.resolve(built)
                if not res.node.is_dir:
                    raise NotADirectory(built)
            except FileNotFound:
                self.mkdir(built, mode=mode)

    def rmdir(self, path: str) -> None:
        self._ops.add("rmdir")
        fs, parent, name = self._resolve_parent(path)
        node = parent.lookup(name)
        if node is None:
            raise FileNotFound(path)
        if not node.is_dir:
            raise NotADirectory(path)
        if node.ino in fs._mounts:
            raise DeviceBusy(path, "is a mount point")
        if not node.is_empty():  # type: ignore[union-attr]
            raise DirectoryNotEmpty(path)
        fs._pm_invalidate(parent, name)
        parent.detach(name)
        del fs._inodes[node.ino]
        parent.attrs.mtime = self.clock.now
        fs.device.charge_meta_write()
        self._notify("rmdir", path=pathutil.normalize(path), fs=fs, node=node)

    def listdir(self, path: str) -> List[str]:
        self._ops.add("listdir")
        res = self.resolve(path)
        if not res.node.is_dir:
            raise NotADirectory(path)
        res.node.attrs.atime = self.clock.now
        res.fs.device.charge_meta_read()
        return list(res.node.names())  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # files
    # ------------------------------------------------------------------

    def create(self, path: str, mode: int = 0o644,
               exist_ok: bool = False) -> StatResult:
        """Create an empty regular file."""
        self._ops.add("create")
        fs, parent, name = self._resolve_parent(path)
        existing = parent.lookup(name)
        if existing is not None:
            if exist_ok and existing.is_file:
                return StatResult(fs.fsid, existing.ino, existing.type,
                                  existing.attrs.copy())
            raise FileExists(path)
        node = FileNode(ino=fs._new_ino(), mode=mode, now=self.clock.now)
        fs._register(node)
        parent.attach(name, node)
        parent.attrs.mtime = self.clock.now
        fs.device.charge_meta_write()
        self._notify("create", path=pathutil.normalize(path), fs=fs, node=node)
        return StatResult(fs.fsid, node.ino, node.type, node.attrs.copy())

    def write_file(self, path: str, data: bytes, append: bool = False) -> int:
        """Whole-file write helper; creates the file when missing."""
        self._ops.add("write_file")
        if self.tracer.enabled:
            self.tracer.event("vfs.write_file", path=path, nbytes=len(data))
        if isinstance(data, str):
            raise InvalidArgument(path, "write_file takes bytes")
        created = False
        try:
            res = self.resolve(path)
            node = res.node
            fs = res.fs
            if node.is_dir:
                raise IsADirectory(path)
        except FileNotFound:
            self.create(path)
            created = True
            res = self.resolve(path)
            node, fs = res.node, res.fs
        assert isinstance(node, FileNode)
        old = len(node.data)
        new_len = old + len(data) if append else len(data)
        # allocate before touching the bytes: ENOSPC must leave the old
        # content intact, and must not leave behind a file this call created
        try:
            fs.device.allocate(old, new_len, path)
        except Exception:
            if created:
                self.unlink(path)
            raise
        if append:
            node.data.extend(data)
        else:
            node.data[:] = data
        fs.device.charge_write(len(data))
        node.attrs.size = len(node.data)
        node.attrs.mtime = self.clock.now
        self._notify("write", path=pathutil.normalize(path), fs=fs, node=node)
        return len(data)

    def read_file(self, path: str) -> bytes:
        self._ops.add("read_file")
        if self.tracer.enabled:
            self.tracer.event("vfs.read_file", path=path)
        res = self.resolve(path)
        node = res.node
        if node.is_dir:
            raise IsADirectory(path)
        if not node.is_file:
            raise InvalidArgument(path, "not a regular file")
        assert isinstance(node, FileNode)
        res.fs.device.charge_read(len(node.data))
        node.attrs.atime = self.clock.now
        return bytes(node.data)

    def truncate(self, path: str, size: int = 0) -> None:
        self._ops.add("truncate")
        res = self.resolve(path)
        node = res.node
        if not node.is_file:
            raise InvalidArgument(path, "not a regular file")
        assert isinstance(node, FileNode)
        old = len(node.data)
        res.fs.device.allocate(old, size, path)
        node.resize(size)
        node.attrs.mtime = self.clock.now
        self._notify("write", path=pathutil.normalize(path), fs=res.fs, node=node)

    def unlink(self, path: str) -> None:
        self._ops.add("unlink")
        if self.tracer.enabled:
            self.tracer.event("vfs.unlink", path=path)
        fs, parent, name = self._resolve_parent(path)
        node = parent.lookup(name)
        if node is None:
            raise FileNotFound(path)
        if node.is_dir:
            raise IsADirectory(path)
        fs._pm_invalidate(parent, name)
        parent.detach(name)
        del fs._inodes[node.ino]
        if isinstance(node, FileNode):
            fs.device.allocate(len(node.data), 0, path)
        parent.attrs.mtime = self.clock.now
        fs.device.charge_meta_write()
        self._notify("unlink", path=pathutil.normalize(path), fs=fs, node=node)

    # ------------------------------------------------------------------
    # symbolic links
    # ------------------------------------------------------------------

    def symlink(self, target: str, linkpath: str) -> StatResult:
        """Create a symbolic link at *linkpath* pointing at *target*."""
        self._ops.add("symlink")
        fs, parent, name = self._resolve_parent(linkpath)
        if parent.lookup(name) is not None:
            raise FileExists(linkpath)
        node = SymlinkNode(ino=fs._new_ino(), mode=0o777,
                           now=self.clock.now, target=target)
        fs._register(node)
        parent.attach(name, node)
        parent.attrs.mtime = self.clock.now
        fs.device.charge_meta_write()
        self._notify("symlink", path=pathutil.normalize(linkpath),
                     fs=fs, node=node, target=target)
        return StatResult(fs.fsid, node.ino, node.type, node.attrs.copy())

    def readlink(self, path: str) -> str:
        self._ops.add("readlink")
        res = self.resolve(path, follow=False)
        if not res.node.is_symlink:
            raise InvalidArgument(path, "not a symbolic link")
        res.fs.device.charge_meta_read()
        return res.node.target  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # rename
    # ------------------------------------------------------------------

    def rename(self, old: str, new: str) -> None:
        """POSIX-style rename; replaces same-kind targets, refuses to move a
        directory into its own subtree or across mount boundaries."""
        self._ops.add("rename")
        if self.tracer.enabled:
            self.tracer.event("vfs.rename", old=old, new=new)
        old_norm = pathutil.normalize(old)
        new_norm = pathutil.normalize(new)
        if old_norm == "/":
            raise InvalidArgument(old, "cannot rename the root")
        ofs, oparent, oname = self._resolve_parent(old_norm)
        nfs, nparent, nname = self._resolve_parent(new_norm)
        node = oparent.lookup(oname)
        if node is None:
            raise FileNotFound(old)
        if ofs is not nfs:
            raise CrossDevice(new, "rename across mount points")
        if node.is_dir and self._subtree_has_mounts(ofs, node):
            raise DeviceBusy(old, "subtree contains mount points")
        if node.is_dir:
            # refuse to move a directory under itself
            probe: Optional[Inode] = nparent
            while probe is not None:
                if probe is node:
                    raise InvalidArgument(new, "cannot move a directory into itself")
                probe = probe.parent
        existing = nparent.lookup(nname)
        if existing is not None:
            if existing is node:
                return
            if node.is_dir:
                if not existing.is_dir:
                    raise NotADirectory(new)
                if existing.ino in nfs._mounts:
                    raise DeviceBusy(new, "is a mount point")
                if not existing.is_empty():  # type: ignore[union-attr]
                    raise DirectoryNotEmpty(new)
            else:
                if existing.is_dir:
                    raise IsADirectory(new)
            nparent.detach(nname)
            del nfs._inodes[existing.ino]
            if isinstance(existing, FileNode):
                nfs.device.allocate(len(existing.data), 0, new)
        # canonical keys while both parents are still attached; the moved
        # node's descendants keep their entries via a one-pass rebase
        old_key = ofs._pm_key(oparent, oname)
        new_key = ofs._pm_key(nparent, nname)
        oparent.detach(oname)
        nparent.attach(nname, node)
        pm = ofs._pathmap
        if pm is not None:
            if old_key is None or new_key is None:
                pm.clear()
            else:
                pm.invalidate(new_key)
                if node.is_dir:
                    pm.rebase_prefix(old_key, new_key)
                else:
                    pm.invalidate(old_key)
        now = self.clock.now
        oparent.attrs.mtime = now
        nparent.attrs.mtime = now
        node.attrs.ctime = now
        ofs.device.charge_meta_write()
        nfs.device.charge_meta_write()
        self._notify("rename", old=old_norm, new=new_norm, fs=nfs, node=node)

    @staticmethod
    def _subtree_has_mounts(fs: "FileSystem", node: Inode) -> bool:
        if not fs._mounts:
            return False
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur.ino in fs._mounts:
                return True
            if cur.is_dir:
                stack.extend(cur.entries.values())  # type: ignore[union-attr]
        return False

    # ------------------------------------------------------------------
    # stat and predicates
    # ------------------------------------------------------------------

    def stat(self, path: str) -> StatResult:
        self._ops.add("stat")
        res = self.resolve(path, follow=True)
        res.fs.device.charge_meta_read()
        return StatResult(res.fs.fsid, res.node.ino, res.node.type,
                          res.node.attrs.copy())

    def lstat(self, path: str) -> StatResult:
        self._ops.add("lstat")
        res = self.resolve(path, follow=False)
        res.fs.device.charge_meta_read()
        return StatResult(res.fs.fsid, res.node.ino, res.node.type,
                          res.node.attrs.copy())

    def exists(self, path: str, follow: bool = True) -> bool:
        try:
            self.resolve(path, follow=follow)
            return True
        except (FileNotFound, NotADirectory, SymlinkLoop):
            return False

    def isdir(self, path: str) -> bool:
        try:
            return self.resolve(path).node.is_dir
        except (FileNotFound, NotADirectory, SymlinkLoop):
            return False

    def isfile(self, path: str) -> bool:
        try:
            return self.resolve(path).node.is_file
        except (FileNotFound, NotADirectory, SymlinkLoop):
            return False

    def islink(self, path: str) -> bool:
        try:
            return self.resolve(path, follow=False).node.is_symlink
        except (FileNotFound, NotADirectory, SymlinkLoop):
            return False

    def chmod(self, path: str, mode: int) -> None:
        res = self.resolve(path)
        res.node.attrs.mode = mode
        res.node.attrs.ctime = self.clock.now
        res.fs.device.charge_meta_write()

    def utime(self, path: str, mtime: Optional[float] = None) -> None:
        res = self.resolve(path)
        res.node.attrs.mtime = self.clock.now if mtime is None else mtime
        res.fs.device.charge_meta_write()

    # ------------------------------------------------------------------
    # descriptor-based I/O
    # ------------------------------------------------------------------

    def open(self, table: FDTable, path: str, mode: str = "r") -> int:
        """Open *path*; modes are ``r``, ``w`` (truncate/create), ``a``
        (append/create), ``rw``."""
        self._ops.add("open")
        if mode not in ("r", "w", "a", "rw"):
            raise InvalidArgument(path, f"bad open mode {mode!r}")
        try:
            res = self.resolve(path)
            node, fs = res.node, res.fs
            if node.is_dir:
                raise IsADirectory(path)
            if not node.is_file:
                raise InvalidArgument(path, "not a regular file")
        except FileNotFound:
            if mode == "r":
                raise
            self.create(path)
            res = self.resolve(path)
            node, fs = res.node, res.fs
        assert isinstance(node, FileNode)
        if mode == "w":
            fs.device.allocate(len(node.data), 0, path)
            node.resize(0)
            node.attrs.mtime = self.clock.now
        offset = len(node.data) if mode == "a" else 0
        readable = mode in ("r", "rw")
        writable = mode in ("w", "a", "rw")
        open_file = OpenFile(fs=fs, node=node, readable=readable,
                             writable=writable, offset=offset)
        return table.install(open_file)

    def read(self, table: FDTable, fd: int, size: int = -1) -> bytes:
        self._ops.add("read")
        of = table.get(fd)
        if not of.readable:
            raise BadFileDescriptor(str(fd), "not open for reading")
        node = of.node
        end = len(node.data) if size < 0 else min(len(node.data), of.offset + size)
        data = bytes(node.data[of.offset:end])
        of.offset = end
        of.fs.device.charge_read(len(data))
        node.attrs.atime = self.clock.now
        return data

    def write(self, table: FDTable, fd: int, data: bytes) -> int:
        self._ops.add("write")
        of = table.get(fd)
        if not of.writable:
            raise BadFileDescriptor(str(fd), "not open for writing")
        node = of.node
        old = len(node.data)
        end = of.offset + len(data)
        if end > old:
            of.fs.device.allocate(old, end)
            node.resize(end)
        node.data[of.offset:end] = data
        of.offset = end
        node.attrs.size = len(node.data)
        node.attrs.mtime = self.clock.now
        of.fs.device.charge_write(len(data))
        try:
            node_path = path_of(node)
        except ValueError:
            node_path = ""
        self._notify("write", path=node_path, fs=of.fs, node=node)
        return len(data)

    def lseek(self, table: FDTable, fd: int, offset: int, whence: int = 0) -> int:
        of = table.get(fd)
        if whence == 0:
            new = offset
        elif whence == 1:
            new = of.offset + offset
        elif whence == 2:
            new = len(of.node.data) + offset
        else:
            raise InvalidArgument(str(fd), f"bad whence {whence}")
        if new < 0:
            raise InvalidArgument(str(fd), "negative seek position")
        of.offset = new
        return new

    def close(self, table: FDTable, fd: int) -> None:
        self._ops.add("close")
        table.remove(fd)

    # ------------------------------------------------------------------
    # mounts
    # ------------------------------------------------------------------

    def mount(self, path: str, fs: "FileSystem") -> None:
        """Graft *fs* over the directory at *path* (a syntactic mount)."""
        self._ops.add("mount")
        res = self.resolve(path)
        if not res.node.is_dir:
            raise NotADirectory(path)
        if res.node is res.fs.root and res.fs is not self:
            raise DeviceBusy(path, "already a mount point")
        if res.node.ino in res.fs._mounts:
            raise DeviceBusy(path, "already a mount point")
        if fs is self:
            raise InvalidArgument(path, "cannot mount a file system on itself")
        pm = res.fs._pathmap
        if pm is not None:
            cover = res.fs.path_of_ino(res.node.ino)
            if cover is None:
                pm.clear()
            else:
                pm.invalidate_prefix(cover)
        res.fs._mounts[res.node.ino] = fs
        self._notify("mount", path=pathutil.normalize(path), fs=res.fs, mounted=fs)

    def unmount(self, path: str) -> "FileSystem":
        """Detach the file system mounted at *path*; returns it."""
        self._ops.add("unmount")
        # resolve the *covered* directory: walk to the mounted root, then
        # find it via the parent chain is messy — resolve parent instead.
        norm = pathutil.normalize(path)
        if norm == "/":
            raise InvalidArgument(path, "cannot unmount the root")
        fs, parent, name = self._resolve_parent(norm)
        covered = parent.lookup(name)
        if covered is None:
            raise FileNotFound(path)
        if covered.ino not in fs._mounts:
            raise InvalidArgument(path, "not a mount point")
        mounted = fs._mounts.pop(covered.ino)
        fs._pm_invalidate(parent, name, prefix=True)
        self._notify("unmount", path=norm, fs=fs, unmounted=mounted)
        return mounted

    def mounts(self) -> List[Tuple[str, "FileSystem"]]:
        """(cover path, mounted fs) pairs for mounts directly on this FS."""
        out = []
        for ino, mounted in self._mounts.items():
            cover = self.path_of_ino(ino)
            if cover is not None:
                out.append((cover, mounted))
        return sorted(out)

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------

    def du(self, path: str = "/") -> int:
        """Total bytes of file data at/below *path* (this FS only)."""
        res = self.resolve(path)
        total = 0
        stack = [res.node]
        while stack:
            node = stack.pop()
            if isinstance(node, FileNode):
                total += len(node.data)
            elif node.is_dir:
                stack.extend(node.entries.values())  # type: ignore[union-attr]
        return total

    def inode_count(self) -> int:
        return len(self._inodes)

    def __repr__(self):
        return f"FileSystem({self.fsid}, inodes={len(self._inodes)})"
