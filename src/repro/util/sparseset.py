"""Sparse result-set representation (the paper's §4 future work).

"We plan to improve this in future by using better sparse-set
representations, so that it is possible to index a very large number of
files."  The flat N/8 bitmap costs N/8 bytes per stored result even when a
semantic directory holds three links out of ten million files.

:class:`SparseSet` is that improvement, Roaring-style: the id space is
split into 65 536-wide chunks; each populated chunk stores its members
either as a sorted ``array('H')`` of low 16-bit halves (sparse chunks) or
as an 8 KiB bitmap (dense chunks), switching representation at the
break-even point (4 096 members, where 2 bytes/member equals the bitmap).
Size is then proportional to membership for sparse data and bounded by
N/8 + chunk directory for dense data.

The API mirrors :class:`repro.util.bitmap.Bitmap` (add/discard/contains/
iteration/algebra/serialisation), so it can stand in wherever result sets
flow; ``benchmarks/bench_ablation_sparseset.py`` quantifies the trade.
"""

from __future__ import annotations

import struct
from array import array
from typing import Dict, Iterable, Iterator

CHUNK_BITS = 16
CHUNK_SIZE = 1 << CHUNK_BITS          # ids per chunk
_LOW_MASK = CHUNK_SIZE - 1
#: members at which an array chunk (2 B each) outgrows an 8 KiB bitmap
DENSE_THRESHOLD = CHUNK_SIZE // 16

_ARRAY = 0
_BITMAP = 1

_POPCOUNT = bytes(bin(i).count("1") for i in range(256))


class _Chunk:
    """One 65 536-id chunk: sorted uint16 array or 8 KiB bitmap."""

    __slots__ = ("kind", "data")

    def __init__(self):
        self.kind = _ARRAY
        self.data = array("H")

    # -- membership ----------------------------------------------------------

    def __contains__(self, low: int) -> bool:
        if self.kind == _ARRAY:
            idx = _bisect(self.data, low)
            return idx < len(self.data) and self.data[idx] == low
        byte, bit = divmod(low, 8)
        return bool(self.data[byte] & (1 << bit))

    def add(self, low: int) -> None:
        if self.kind == _ARRAY:
            idx = _bisect(self.data, low)
            if idx < len(self.data) and self.data[idx] == low:
                return
            self.data.insert(idx, low)
            if len(self.data) > DENSE_THRESHOLD:
                self._to_bitmap()
        else:
            byte, bit = divmod(low, 8)
            self.data[byte] |= 1 << bit

    def discard(self, low: int) -> None:
        if self.kind == _ARRAY:
            idx = _bisect(self.data, low)
            if idx < len(self.data) and self.data[idx] == low:
                del self.data[idx]
        else:
            byte, bit = divmod(low, 8)
            self.data[byte] &= ~(1 << bit) & 0xFF
            # demote when sparse again (hysteresis at half the threshold)
            if len(self) < DENSE_THRESHOLD // 2:
                self._to_array()

    def _to_bitmap(self) -> None:
        bits = bytearray(CHUNK_SIZE // 8)
        for low in self.data:
            bits[low // 8] |= 1 << (low % 8)
        self.kind = _BITMAP
        self.data = bits

    def _to_array(self) -> None:
        arr = array("H", list(self))
        self.kind = _ARRAY
        self.data = arr

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        if self.kind == _ARRAY:
            return len(self.data)
        return sum(_POPCOUNT[b] for b in self.data)

    def __iter__(self) -> Iterator[int]:
        if self.kind == _ARRAY:
            return iter(self.data)
        return self._iter_bitmap()

    def _iter_bitmap(self) -> Iterator[int]:
        for byte_idx, byte in enumerate(self.data):
            if not byte:
                continue
            base = byte_idx * 8
            for bit in range(8):
                if byte & (1 << bit):
                    yield base + bit

    def nbytes(self) -> int:
        if self.kind == _ARRAY:
            return 2 * len(self.data)
        return len(self.data)

    def copy(self) -> "_Chunk":
        dup = _Chunk.__new__(_Chunk)
        dup.kind = self.kind
        dup.data = array("H", self.data) if self.kind == _ARRAY \
            else bytearray(self.data)
        return dup


def _bisect(arr: array, value: int) -> int:
    lo, hi = 0, len(arr)
    while lo < hi:
        mid = (lo + hi) // 2
        if arr[mid] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


class SparseSet:
    """A Roaring-style growable set of non-negative integers."""

    __slots__ = ("_chunks",)

    def __init__(self, ids: Iterable[int] = ()):
        self._chunks: Dict[int, _Chunk] = {}
        for i in ids:
            self.add(i)

    # -- element operations ----------------------------------------------------

    def add(self, i: int) -> None:
        if i < 0:
            raise ValueError(f"ids must be non-negative, got {i}")
        chunk = self._chunks.get(i >> CHUNK_BITS)
        if chunk is None:
            chunk = self._chunks[i >> CHUNK_BITS] = _Chunk()
        chunk.add(i & _LOW_MASK)

    def discard(self, i: int) -> None:
        if i < 0:
            return
        high = i >> CHUNK_BITS
        chunk = self._chunks.get(high)
        if chunk is not None:
            chunk.discard(i & _LOW_MASK)
            if not len(chunk):
                del self._chunks[high]

    def __contains__(self, i: int) -> bool:
        if i < 0:
            return False
        chunk = self._chunks.get(i >> CHUNK_BITS)
        return chunk is not None and (i & _LOW_MASK) in chunk

    # -- set algebra -------------------------------------------------------------

    def __or__(self, other: "SparseSet") -> "SparseSet":
        out = self.copy()
        for i in other:
            out.add(i)
        return out

    def __and__(self, other: "SparseSet") -> "SparseSet":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        out = SparseSet()
        for i in small:
            if i in large:
                out.add(i)
        return out

    def __sub__(self, other: "SparseSet") -> "SparseSet":
        out = SparseSet()
        for i in self:
            if i not in other:
                out.add(i)
        return out

    def issubset(self, other: "SparseSet") -> bool:
        return all(i in other for i in self)

    def intersects(self, other: "SparseSet") -> bool:
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return any(i in large for i in small)

    # -- inspection ----------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks.values())

    def __bool__(self) -> bool:
        return bool(self._chunks)

    def __iter__(self) -> Iterator[int]:
        for high in sorted(self._chunks):
            base = high << CHUNK_BITS
            for low in self._chunks[high]:
                yield base + low

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseSet):
            return NotImplemented
        return len(self) == len(other) and all(i in other for i in self)

    def __repr__(self):
        n = len(self)
        head = ", ".join(str(i) for _i, i in zip(range(8), self))
        suffix = ", ..." if n > 8 else ""
        return f"SparseSet({{{head}{suffix}}} n={n})"

    def copy(self) -> "SparseSet":
        out = SparseSet()
        out._chunks = {h: c.copy() for h, c in self._chunks.items()}
        return out

    @property
    def nbytes(self) -> int:
        """Serialised size — the number the paper's future work cares about."""
        # 6 bytes of directory per chunk (high half + kind + length)
        return sum(6 + c.nbytes() for c in self._chunks.values())

    def max_id(self) -> int:
        if not self._chunks:
            return -1
        high = max(self._chunks)
        return (high << CHUNK_BITS) + max(self._chunks[high])

    # -- serialisation ----------------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray(struct.pack(">I", len(self._chunks)))
        for high in sorted(self._chunks):
            chunk = self._chunks[high]
            payload = chunk.data.tobytes() if chunk.kind == _ARRAY \
                else bytes(chunk.data)
            out += struct.pack(">IBI", high, chunk.kind, len(payload))
            out += payload
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SparseSet":
        out = cls()
        (count,) = struct.unpack_from(">I", data, 0)
        offset = 4
        for _ in range(count):
            high, kind, length = struct.unpack_from(">IBI", data, offset)
            offset += 9
            payload = data[offset:offset + length]
            offset += length
            chunk = _Chunk.__new__(_Chunk)
            chunk.kind = kind
            if kind == _ARRAY:
                arr = array("H")
                arr.frombytes(payload)
                chunk.data = arr
            else:
                chunk.data = bytearray(payload)
            out._chunks[high] = chunk
        if offset != len(data):
            raise ValueError(f"{len(data) - offset} trailing bytes")
        return out
