"""The global UID ↔ directory-path map (paper §2.5).

Queries may reference other directories by path (``"fingerprint AND
/projects/fbi"``).  If queries stored raw path names, every rename would
invalidate every query referring to the renamed directory or anything under
it.  The paper's fix, reproduced here: HAC keeps one global mapping from
stable unique identifiers to current path names and stores only UIDs inside
query ASTs.  A rename then updates this map once instead of rewriting
queries.

:class:`GlobalDirectoryMap` owns that mapping.  A rename of ``/a`` to ``/b``
must also re-root every registered path under ``/a`` — the map handles the
whole subtree in :meth:`rename_subtree`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from repro.util import pathutil


class UidAllocator:
    """Monotonic allocator for directory UIDs (never reused)."""

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)

    def allocate(self) -> int:
        return next(self._counter)


class GlobalDirectoryMap:
    """Bidirectional map between directory UIDs and their current paths.

    The root directory is always registered with UID 0 at path ``/``.
    """

    ROOT_UID = 0

    def __init__(self):
        self._alloc = UidAllocator(start=1)
        self._uid_to_path: Dict[int, str] = {self.ROOT_UID: "/"}
        self._path_to_uid: Dict[str, int] = {"/": self.ROOT_UID}

    # -- registration --------------------------------------------------------

    def register(self, path: str) -> int:
        """Register a new directory; returns its fresh UID."""
        norm = pathutil.normalize(path)
        if norm in self._path_to_uid:
            raise ValueError(f"path already registered: {norm}")
        uid = self._alloc.allocate()
        self._uid_to_path[uid] = norm
        self._path_to_uid[norm] = uid
        return uid

    def unregister(self, path: str) -> int:
        """Remove a directory from the map (on rmdir); returns its UID."""
        norm = pathutil.normalize(path)
        uid = self._path_to_uid.pop(norm)
        del self._uid_to_path[uid]
        return uid

    # -- lookup ---------------------------------------------------------------

    def uid_of(self, path: str) -> Optional[int]:
        return self._path_to_uid.get(pathutil.normalize(path))

    def path_of(self, uid: int) -> Optional[str]:
        return self._uid_to_path.get(uid)

    def __contains__(self, path: str) -> bool:
        return pathutil.normalize(path) in self._path_to_uid

    def __len__(self) -> int:
        return len(self._uid_to_path)

    def uids(self) -> Iterator[int]:
        return iter(list(self._uid_to_path))

    def items(self) -> Iterator[Tuple[int, str]]:
        return iter(list(self._uid_to_path.items()))

    # -- rename ---------------------------------------------------------------

    def rename_subtree(self, old_path: str, new_path: str) -> List[Tuple[int, str, str]]:
        """Re-root every registered path at or below *old_path*.

        Returns ``[(uid, old, new), ...]`` for the affected directories so the
        caller can update any per-path side tables (e.g. semantic-dir state
        keyed by path).
        """
        old = pathutil.normalize(old_path)
        new = pathutil.normalize(new_path)
        if old == "/":
            raise ValueError("cannot rename the root")
        moved: List[Tuple[int, str, str]] = []
        for path, uid in list(self._path_to_uid.items()):
            if pathutil.is_ancestor(old, path, strict=False):
                rebased = pathutil.rebase(path, old, new)
                moved.append((uid, path, rebased))
        for uid, src, dst in moved:
            del self._path_to_uid[src]
        for uid, src, dst in moved:
            if dst in self._path_to_uid:
                raise ValueError(f"rename collides with registered path: {dst}")
            self._path_to_uid[dst] = uid
            self._uid_to_path[uid] = dst
        return moved

    def subtree_uids(self, path: str, strict: bool = False) -> List[int]:
        """UIDs of every registered directory at/below *path*."""
        norm = pathutil.normalize(path)
        return [
            uid
            for p, uid in self._path_to_uid.items()
            if pathutil.is_ancestor(norm, p, strict=strict)
        ]

    # -- persistence ----------------------------------------------------------

    def snapshot(self) -> Dict[int, str]:
        """A copy of the UID→path table, for the MetaStore."""
        return dict(self._uid_to_path)

    def load_snapshot(self, snapshot: Dict[int, str]) -> None:
        """Replace the whole table *in place* (rollback/recovery reload).

        In place matters: other components hold this map's bound methods
        (``uid_of``/``path_of``), so recovery must mutate the live object
        rather than swap in a new one.
        """
        self._uid_to_path = dict(snapshot)
        self._path_to_uid = {p: u for u, p in snapshot.items()}
        if self.ROOT_UID not in self._uid_to_path:
            self._uid_to_path[self.ROOT_UID] = "/"
            self._path_to_uid["/"] = self.ROOT_UID
        self._alloc = UidAllocator(start=max(self._uid_to_path) + 1)

    @classmethod
    def restore(cls, snapshot: Dict[int, str]) -> "GlobalDirectoryMap":
        gm = cls()
        gm.load_snapshot(snapshot)
        return gm
