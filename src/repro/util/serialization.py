"""Self-describing record codec for the MetaStore.

HAC persists per-directory state (query text, permanent/transient/prohibited
target sets, the global directory map) to disk; the paper charges that I/O to
the Makedir phase of the Andrew benchmark.  We serialise those records with a
tiny, dependency-free codec rather than pickle so that (a) the byte counts we
report in the space-overhead bench are honest and stable, and (b) records are
forward-readable in tests.

Supported values: ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
and ``list`` / ``dict`` (string keys) of the same.  The format is a one-byte
type tag followed by a big-endian length/value — deliberately boring.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"M"


class SerializationError(ValueError):
    """Raised for unsupported values or corrupt byte streams."""


def dumps(value: Any) -> bytes:
    """Encode *value* to bytes."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def loads(data: bytes) -> Any:
    """Decode bytes produced by :func:`dumps`."""
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise SerializationError(f"{len(data) - offset} trailing bytes")
    return value


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
        out += _TAG_INT + struct.pack(">I", len(raw)) + raw
    elif isinstance(value, float):
        out += _TAG_FLOAT + struct.pack(">d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR + struct.pack(">I", len(raw)) + raw
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES + struct.pack(">I", len(value)) + bytes(value)
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST + struct.pack(">I", len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        out += _TAG_DICT + struct.pack(">I", len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(f"dict keys must be str, got {type(key).__name__}")
            _encode(key, out)
            _encode(item, out)
    else:
        raise SerializationError(f"unsupported type: {type(value).__name__}")


def _need(data: bytes, offset: int, count: int) -> None:
    if offset + count > len(data):
        raise SerializationError("truncated record")


def _decode(data: bytes, offset: int) -> Tuple[Any, int]:
    _need(data, offset, 1)
    tag = data[offset:offset + 1]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_FLOAT:
        _need(data, offset, 8)
        return struct.unpack(">d", data[offset:offset + 8])[0], offset + 8
    if tag in (_TAG_INT, _TAG_STR, _TAG_BYTES, _TAG_LIST, _TAG_DICT):
        _need(data, offset, 4)
        length = struct.unpack(">I", data[offset:offset + 4])[0]
        offset += 4
        if tag == _TAG_INT:
            _need(data, offset, length)
            raw = data[offset:offset + length]
            return int.from_bytes(raw, "big", signed=True), offset + length
        if tag == _TAG_STR:
            _need(data, offset, length)
            return data[offset:offset + length].decode("utf-8"), offset + length
        if tag == _TAG_BYTES:
            _need(data, offset, length)
            return bytes(data[offset:offset + length]), offset + length
        if tag == _TAG_LIST:
            items: List[Any] = []
            for _ in range(length):
                item, offset = _decode(data, offset)
                items.append(item)
            return items, offset
        mapping: Dict[str, Any] = {}
        for _ in range(length):
            key, offset = _decode(data, offset)
            if not isinstance(key, str):
                raise SerializationError("corrupt dict key")
            value, offset = _decode(data, offset)
            mapping[key] = value
        return mapping, offset
    raise SerializationError(f"unknown tag {tag!r} at offset {offset - 1}")
