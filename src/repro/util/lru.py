"""A bounded least-recently-used mapping.

Backs the per-process attribute cache (:mod:`repro.vfs.attrcache`): the paper
keeps recently stat-ed file attributes in shared memory so Scan/Read phases
avoid re-fetching inode metadata.  Eviction statistics are exposed so the
space-overhead bench can report cache footprints.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


class LRUCache(Generic[K, V]):
    """Mapping with a capacity; inserting beyond it evicts the oldest entry."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert/refresh; returns the evicted ``(key, value)`` if any."""
        if key in self._data:
            self._data.move_to_end(key)
            self._data[key] = value
            return None
        self._data[key] = value
        if len(self._data) > self.capacity:
            self.evictions += 1
            return self._data.popitem(last=False)
        return None

    def invalidate(self, key: K) -> bool:
        """Drop *key*; True when it was present."""
        return self._data.pop(key, _MISSING) is not _MISSING

    def clear(self) -> None:
        self._data.clear()

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        return iter(list(self._data))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
