"""Compact bit-set over non-negative integer ids.

The paper stores the result of each semantic directory's query as a bitmap of
``N/8`` bytes, where ``N`` is the number of indexed files ("we use bitmaps
since it is simple to implement and has speed advantages for Glimpse").  This
module is that representation: a growable bit vector with the set algebra the
scope-consistency algorithm needs (and/or/difference), plus population count
and iteration for materialising symbolic links.

The backing store is a single Python big integer: CPython's arbitrary-
precision ints do word-at-a-time boolean algebra in C, so ``|``/``&``/``&~``
over whole result sets are one interpreter operation instead of a Python
loop over bytes, and popcount is ``int.bit_count()``.  The serialized form
is unchanged from the byte-array implementation this replaced: little-endian
``N/8`` bytes, bit ``i % 8`` of byte ``i // 8``, trailing zero bytes trimmed
so that equality and ``nbytes`` reflect the logical set, not the allocation
history.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Bitmap:
    """A growable set of non-negative integers stored one bit per id.

    >>> b = Bitmap([1, 9])
    >>> 9 in b and 1 in b
    True
    >>> sorted(b | Bitmap([2]))
    [1, 2, 9]
    """

    __slots__ = ("_n",)

    def __init__(self, ids: Iterable[int] = ()):
        # bulk kernel: stage bits in a bytearray, then one int.from_bytes —
        # per-id ``n |= 1 << i`` would copy the whole integer every time
        buf = bytearray()
        for i in ids:
            if i < 0:
                raise ValueError(f"bitmap ids must be non-negative, got {i}")
            byte = i >> 3
            if byte >= len(buf):
                buf.extend(b"\x00" * (byte + 1 - len(buf)))
            buf[byte] |= 1 << (i & 7)
        self._n = int.from_bytes(buf, "little")

    # -- construction -------------------------------------------------------

    @classmethod
    def from_ids(cls, ids: Iterable[int]) -> "Bitmap":
        """Bulk-construct from an iterable of ids (no per-id method calls)."""
        return cls(ids)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Bitmap":
        """Rebuild a bitmap from :meth:`to_bytes` output."""
        bm = cls()
        bm._n = int.from_bytes(data, "little")
        return bm

    def to_bytes(self) -> bytes:
        """Serialise to the paper's N/8-byte on-disk form."""
        return self._n.to_bytes((self._n.bit_length() + 7) // 8, "little")

    def copy(self) -> "Bitmap":
        bm = Bitmap()
        bm._n = self._n
        return bm

    # -- element operations --------------------------------------------------

    def add(self, i: int) -> None:
        if i < 0:
            raise ValueError(f"bitmap ids must be non-negative, got {i}")
        self._n |= 1 << i

    def discard(self, i: int) -> None:
        if i < 0:
            return
        self._n &= ~(1 << i)

    def __contains__(self, i: int) -> bool:
        return i >= 0 and (self._n >> i) & 1 == 1

    # -- set algebra ---------------------------------------------------------

    def __or__(self, other: "Bitmap") -> "Bitmap":
        result = Bitmap()
        result._n = self._n | other._n
        return result

    def __and__(self, other: "Bitmap") -> "Bitmap":
        result = Bitmap()
        result._n = self._n & other._n
        return result

    def __sub__(self, other: "Bitmap") -> "Bitmap":
        result = Bitmap()
        result._n = self._n & ~other._n
        return result

    def __ior__(self, other: "Bitmap") -> "Bitmap":
        self._n |= other._n
        return self

    def __iand__(self, other: "Bitmap") -> "Bitmap":
        self._n &= other._n
        return self

    def __isub__(self, other: "Bitmap") -> "Bitmap":
        self._n &= ~other._n
        return self

    def intersects(self, other: "Bitmap") -> bool:
        return (self._n & other._n) != 0

    def issubset(self, other: "Bitmap") -> bool:
        return (self._n & ~other._n) == 0

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return self._n.bit_count()

    def __bool__(self) -> bool:
        return self._n != 0

    def __iter__(self) -> Iterator[int]:
        n = self._n
        while n:
            lsb = n & -n
            yield lsb.bit_length() - 1
            n ^= lsb

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self._n == other._n

    def __hash__(self):
        return hash(self._n)

    def __repr__(self) -> str:
        members = list(self)
        if len(members) > 12:
            head = ", ".join(str(m) for m in members[:12])
            return f"Bitmap({{{head}, ... {len(members)} ids}})"
        return f"Bitmap({{{', '.join(str(m) for m in members)}}})"

    @property
    def nbytes(self) -> int:
        """Bytes the on-disk form occupies — the paper's N/8 figure."""
        return (self._n.bit_length() + 7) // 8

    def max_id(self) -> int:
        """Largest member, or -1 when empty."""
        return self._n.bit_length() - 1
