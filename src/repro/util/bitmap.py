"""Compact bit-set over non-negative integer ids.

The paper stores the result of each semantic directory's query as a bitmap of
``N/8`` bytes, where ``N`` is the number of indexed files ("we use bitmaps
since it is simple to implement and has speed advantages for Glimpse").  This
module is that representation: a growable bit vector with the set algebra the
scope-consistency algorithm needs (and/or/difference), plus population count
and iteration for materialising symbolic links.

The implementation keeps a ``bytearray`` and normalises trailing zero bytes
away so that equality and ``nbytes`` reflect the logical set, not the
allocation history.
"""

from __future__ import annotations

from typing import Iterable, Iterator

_POPCOUNT = bytes(bin(i).count("1") for i in range(256))


class Bitmap:
    """A growable set of non-negative integers stored one bit per id.

    >>> b = Bitmap([1, 9])
    >>> 9 in b and 1 in b
    True
    >>> sorted(b | Bitmap([2]))
    [1, 2, 9]
    """

    __slots__ = ("_bits",)

    def __init__(self, ids: Iterable[int] = ()):
        self._bits = bytearray()
        for i in ids:
            self.add(i)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes) -> "Bitmap":
        """Rebuild a bitmap from :meth:`to_bytes` output."""
        bm = cls()
        bm._bits = bytearray(data)
        bm._trim()
        return bm

    def to_bytes(self) -> bytes:
        """Serialise to the paper's N/8-byte on-disk form."""
        return bytes(self._bits)

    def copy(self) -> "Bitmap":
        bm = Bitmap()
        bm._bits = bytearray(self._bits)
        return bm

    # -- element operations --------------------------------------------------

    def add(self, i: int) -> None:
        if i < 0:
            raise ValueError(f"bitmap ids must be non-negative, got {i}")
        byte, bit = divmod(i, 8)
        if byte >= len(self._bits):
            self._bits.extend(b"\x00" * (byte + 1 - len(self._bits)))
        self._bits[byte] |= 1 << bit

    def discard(self, i: int) -> None:
        if i < 0:
            return
        byte, bit = divmod(i, 8)
        if byte < len(self._bits):
            self._bits[byte] &= ~(1 << bit) & 0xFF
            self._trim()

    def __contains__(self, i: int) -> bool:
        if i < 0:
            return False
        byte, bit = divmod(i, 8)
        return byte < len(self._bits) and bool(self._bits[byte] & (1 << bit))

    # -- set algebra ---------------------------------------------------------

    def __or__(self, other: "Bitmap") -> "Bitmap":
        short, long_ = sorted((self._bits, other._bits), key=len)
        out = bytearray(long_)
        for idx, byte in enumerate(short):
            out[idx] |= byte
        result = Bitmap()
        result._bits = out
        return result

    def __and__(self, other: "Bitmap") -> "Bitmap":
        n = min(len(self._bits), len(other._bits))
        out = bytearray(n)
        for idx in range(n):
            out[idx] = self._bits[idx] & other._bits[idx]
        result = Bitmap()
        result._bits = out
        result._trim()
        return result

    def __sub__(self, other: "Bitmap") -> "Bitmap":
        out = bytearray(self._bits)
        n = min(len(out), len(other._bits))
        for idx in range(n):
            out[idx] &= ~other._bits[idx] & 0xFF
        result = Bitmap()
        result._bits = out
        result._trim()
        return result

    def __ior__(self, other: "Bitmap") -> "Bitmap":
        if len(other._bits) > len(self._bits):
            self._bits.extend(b"\x00" * (len(other._bits) - len(self._bits)))
        for idx, byte in enumerate(other._bits):
            self._bits[idx] |= byte
        return self

    def __iand__(self, other: "Bitmap") -> "Bitmap":
        n = min(len(self._bits), len(other._bits))
        del self._bits[n:]
        for idx in range(n):
            self._bits[idx] &= other._bits[idx]
        self._trim()
        return self

    def __isub__(self, other: "Bitmap") -> "Bitmap":
        n = min(len(self._bits), len(other._bits))
        for idx in range(n):
            self._bits[idx] &= ~other._bits[idx] & 0xFF
        self._trim()
        return self

    def intersects(self, other: "Bitmap") -> bool:
        n = min(len(self._bits), len(other._bits))
        return any(self._bits[i] & other._bits[i] for i in range(n))

    def issubset(self, other: "Bitmap") -> bool:
        if len(self._bits) > len(other._bits):
            # any set bit beyond other's extent breaks the subset relation
            if any(self._bits[len(other._bits):]):
                return False
        n = min(len(self._bits), len(other._bits))
        return all((self._bits[i] & ~other._bits[i] & 0xFF) == 0 for i in range(n))

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return sum(_POPCOUNT[b] for b in self._bits)

    def __bool__(self) -> bool:
        return any(self._bits)

    def __iter__(self) -> Iterator[int]:
        for byte_idx, byte in enumerate(self._bits):
            if not byte:
                continue
            base = byte_idx * 8
            for bit in range(8):
                if byte & (1 << bit):
                    yield base + bit

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self):
        return hash(bytes(self._bits))

    def __repr__(self) -> str:
        members = list(self)
        if len(members) > 12:
            head = ", ".join(str(m) for m in members[:12])
            return f"Bitmap({{{head}, ... {len(members)} ids}})"
        return f"Bitmap({{{', '.join(str(m) for m in members)}}})"

    @property
    def nbytes(self) -> int:
        """Bytes the on-disk form occupies — the paper's N/8 figure."""
        return len(self._bits)

    def max_id(self) -> int:
        """Largest member, or -1 when empty."""
        for byte_idx in range(len(self._bits) - 1, -1, -1):
            byte = self._bits[byte_idx]
            if byte:
                return byte_idx * 8 + byte.bit_length() - 1
        return -1

    # -- internals -----------------------------------------------------------

    def _trim(self) -> None:
        while self._bits and self._bits[-1] == 0:
            del self._bits[-1]
