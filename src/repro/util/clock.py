"""Virtual time for the simulated system.

Everything time-related in the reproduction — inode mtimes, index snapshot
times, the periodic reindex scheduler of §2.4, RPC latency accounting — runs
off one :class:`VirtualClock` so tests and benchmarks are deterministic.

The clock only moves when advanced explicitly (``advance``/``tick``), or when
a component charges simulated latency to it (the RPC layer and block device
do this).  Timers fire during ``advance`` in timestamp order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class Timer:
    """Handle for a scheduled callback; cancel with :meth:`cancel`."""

    __slots__ = ("deadline", "interval", "callback", "cancelled", "name")

    def __init__(self, deadline: float, interval: Optional[float],
                 callback: Callable[[], None], name: str):
        self.deadline = deadline
        self.interval = interval
        self.callback = callback
        self.cancelled = False
        self.name = name

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self):
        kind = "periodic" if self.interval else "one-shot"
        return f"Timer({self.name!r}, {kind}, deadline={self.deadline})"


class VirtualClock:
    """A monotonically advancing simulated clock with timers."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: List[Tuple[float, int, Timer]] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward, firing due timers in order."""
        if seconds < 0:
            raise ValueError("the clock cannot run backwards")
        deadline = self._now + seconds
        while self._heap and self._heap[0][0] <= deadline:
            when, _, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = max(self._now, when)
            timer.callback()
            if timer.interval and not timer.cancelled:
                timer.deadline = when + timer.interval
                heapq.heappush(self._heap, (timer.deadline, next(self._seq), timer))
        self._now = deadline

    def tick(self) -> None:
        """Advance by one second — convenient for mtimes in tests."""
        self.advance(1.0)

    def schedule(self, delay: float, callback: Callable[[], None],
                 name: str = "timer") -> Timer:
        """Run *callback* once, *delay* seconds from now."""
        timer = Timer(self._now + delay, None, callback, name)
        heapq.heappush(self._heap, (timer.deadline, next(self._seq), timer))
        return timer

    def schedule_periodic(self, interval: float, callback: Callable[[], None],
                          name: str = "periodic") -> Timer:
        """Run *callback* every *interval* seconds until cancelled."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        timer = Timer(self._now + interval, interval, callback, name)
        heapq.heappush(self._heap, (timer.deadline, next(self._seq), timer))
        return timer

    def pending(self) -> List[Timer]:
        """Live timers, soonest first (for introspection in tests)."""
        return [t for _, _, t in sorted(self._heap) if not t.cancelled]
