"""Shared low-level utilities for the HAC reproduction.

Nothing in this package knows about file systems or queries; these are the
data structures the substrates are built from:

* :mod:`repro.util.bitmap` — the compact N/8-byte file-set representation
  the paper uses for stored query results.
* :mod:`repro.util.pathutil` — pure-string path algebra (normalise, split,
  join, ancestry tests).
* :mod:`repro.util.idmap` — the global UID ↔ directory-path map that keeps
  queries valid across renames (paper §2.5).
* :mod:`repro.util.clock` — a virtual clock with timers, used for mtimes and
  for the periodic reindex scheduler.
* :mod:`repro.util.lru` — a bounded LRU mapping (attribute cache).
* :mod:`repro.util.stats` — hierarchical counters for instrumentation.
* :mod:`repro.util.serialization` — a small self-describing record codec used
  by the MetaStore to persist per-directory HAC state.
"""

from repro.util.bitmap import Bitmap
from repro.util.clock import VirtualClock
from repro.util.idmap import GlobalDirectoryMap, UidAllocator
from repro.util.lru import LRUCache
from repro.util.stats import Counters

__all__ = [
    "Bitmap",
    "VirtualClock",
    "GlobalDirectoryMap",
    "UidAllocator",
    "LRUCache",
    "Counters",
]
