"""Pure-string path algebra for the VFS.

All VFS paths use ``/`` separators and are rooted at ``/``.  These helpers
never touch a file system; resolution of ``..`` against symlinks is the job
of :meth:`repro.vfs.filesystem.FileSystem._namei`, which works component by
component.  What lives here is the lexical layer: normalisation, splitting,
joining, and ancestry tests used throughout the semantic layer (e.g. to find
which semantic directories are affected by a rename).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

SEP = "/"
ROOT = "/"


def is_absolute(path: str) -> bool:
    """True when *path* starts at the root."""
    return path.startswith(SEP)


def split_components(path: str) -> List[str]:
    """Split into non-empty components; ``.`` components are dropped.

    ``..`` components are preserved — collapsing them lexically would be
    wrong in the presence of symlinks.

    >>> split_components("/a//b/./c")
    ['a', 'b', 'c']
    """
    return [c for c in path.split(SEP) if c and c != "."]


def normalize(path: str) -> str:
    """Lexically normalise an absolute path (no ``..`` collapsing).

    >>> normalize("/a//b/./c/")
    '/a/b/c'
    >>> normalize("///")
    '/'
    """
    if not is_absolute(path):
        raise ValueError(f"expected absolute path, got {path!r}")
    comps = split_components(path)
    return ROOT + SEP.join(comps)


def canonical(path: str) -> str:
    """Normalise leniently: a bare name is coerced under the root.

    Foreign search back-ends register plain document identifiers as their
    "path" (the engine never walks them), so the path dimension treats
    such names as living directly under ``/`` rather than rejecting them.

    >>> canonical("fp-survey")
    '/fp-survey'
    >>> canonical("/a//b/")
    '/a/b'
    """
    return normalize(path if is_absolute(path) else ROOT + path)


def join(base: str, *parts: str) -> str:
    """Join path fragments; an absolute fragment resets the result.

    >>> join("/a", "b", "c")
    '/a/b/c'
    >>> join("/a", "/x", "y")
    '/x/y'
    """
    result = base
    for part in parts:
        if not part:
            continue
        if is_absolute(part):
            result = part
        elif result.endswith(SEP):
            result = result + part
        else:
            result = result + SEP + part
    return normalize(result) if is_absolute(result) else result


def split(path: str) -> Tuple[str, str]:
    """Split into ``(parent, basename)``.

    >>> split("/a/b/c")
    ('/a/b', 'c')
    >>> split("/a")
    ('/', 'a')
    >>> split("/")
    ('/', '')
    """
    norm = normalize(path)
    if norm == ROOT:
        return ROOT, ""
    parent, _, name = norm.rpartition(SEP)
    return (parent or ROOT), name


def basename(path: str) -> str:
    return split(path)[1]


def dirname(path: str) -> str:
    return split(path)[0]


def is_ancestor(ancestor: str, path: str, strict: bool = True) -> bool:
    """True when *ancestor* is a path prefix of *path* (component-wise).

    >>> is_ancestor("/a/b", "/a/b/c")
    True
    >>> is_ancestor("/a/b", "/a/bc")
    False
    >>> is_ancestor("/a", "/a", strict=False)
    True
    """
    a = normalize(ancestor)
    p = normalize(path)
    if a == p:
        return not strict
    if a == ROOT:
        return True
    return p.startswith(a + SEP)


def relative_to(path: str, ancestor: str) -> str:
    """Components of *path* below *ancestor*, joined by ``/``.

    >>> relative_to("/a/b/c", "/a")
    'b/c'
    """
    if not is_ancestor(ancestor, path, strict=False):
        raise ValueError(f"{path!r} is not under {ancestor!r}")
    a = normalize(ancestor)
    p = normalize(path)
    if a == p:
        return ""
    if a == ROOT:
        return p[1:]
    return p[len(a) + 1:]


def rebase(path: str, old_ancestor: str, new_ancestor: str) -> str:
    """Translate *path* from under *old_ancestor* to under *new_ancestor*.

    Used when a rename moves a whole subtree: every tracked path below the
    old location must be re-rooted below the new one.

    >>> rebase("/a/b/c", "/a/b", "/x")
    '/x/c'
    """
    rel = relative_to(path, old_ancestor)
    return join(normalize(new_ancestor), rel) if rel else normalize(new_ancestor)


def ancestors(path: str) -> Iterator[str]:
    """Yield every proper ancestor from the root down.

    >>> list(ancestors("/a/b/c"))
    ['/', '/a', '/a/b']
    """
    norm = normalize(path)
    if norm == ROOT:
        return
    yield ROOT
    comps = split_components(norm)
    cur = ""
    for comp in comps[:-1]:
        cur = cur + SEP + comp
        yield cur


def depth(path: str) -> int:
    """Number of components below the root (root itself has depth 0)."""
    return len(split_components(normalize(path)))
