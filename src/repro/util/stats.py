"""Hierarchical instrumentation counters.

Every substrate (block device, VFS, CBA engine, HAC core, RPC transport)
charges its work to a :class:`Counters` instance.  Benchmarks read these to
report *simulated* cost (I/O operations, bytes moved, queries evaluated)
alongside wall-clock time, which keeps the paper-shape comparisons meaningful
even though Python timings are noisy.

Counter names are dotted (``"vfs.namei"``, ``"blockdev.read_blocks"``);
:meth:`Counters.scoped` returns a view that prefixes a component name so a
module never has to repeat its own prefix.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class Counters:
    """A named bag of monotonically increasing numeric counters."""

    def __init__(self):
        self._values: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        self._values[name] += amount

    def get(self, name: str) -> float:
        return self._values.get(name, 0.0)

    def reset(self) -> None:
        self._values.clear()

    def snapshot(self) -> Dict[str, float]:
        return dict(self._values)

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._values.items()))

    def total(self, prefix: str) -> float:
        """Sum of every counter under a dotted prefix."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sum(v for k, v in self._values.items()
                   if k == prefix or k.startswith(dotted))

    def scoped(self, prefix: str) -> "ScopedCounters":
        return ScopedCounters(self, prefix)

    def diff(self, before: Dict[str, float]) -> Dict[str, float]:
        """Counters that changed since a :meth:`snapshot`."""
        out = {}
        for name, value in self._values.items():
            delta = value - before.get(name, 0.0)
            if delta:
                out[name] = delta
        return out

    def __repr__(self):
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"Counters({body})"


class ScopedCounters:
    """View over a :class:`Counters` that prefixes every name."""

    __slots__ = ("_parent", "_prefix")

    def __init__(self, parent: Counters, prefix: str):
        self._parent = parent
        self._prefix = prefix.rstrip(".")

    def add(self, name: str, amount: float = 1.0) -> None:
        self._parent.add(f"{self._prefix}.{name}", amount)

    def get(self, name: str) -> float:
        return self._parent.get(f"{self._prefix}.{name}")

    def scoped(self, prefix: str) -> "ScopedCounters":
        return ScopedCounters(self._parent, f"{self._prefix}.{prefix}")
