"""The scatter-gather coordinator over K partitioned Glimpse shards.

The cluster keeps the paper's CBA contract — the coordinator implements the
same engine protocol :class:`~repro.cba.engine.CBAEngine` exposes to HAC
(maintenance, ``search`` over a scope bitmap, ``extract``, persistence) —
while the index itself is partitioned across shards by rendezvous hashing
(:mod:`repro.cluster.shardmap`) and queried over simulated RPC
(:mod:`repro.cluster.shard`).

Bit-identical answers are the design invariant, and three decisions carry
it:

* **Global doc ids.**  The coordinator owns the authoritative registry and
  assigns every document a global id; shards index under that id with the
  same ``num_blocks``, so block assignment (``doc_id % num_blocks``) — and
  with it every candidate-block computation — matches the monolith exactly.

* **Plan once, globally.**  The query is planned at the coordinator with
  document frequencies *summed* across shards (df and corpus size are
  additive over a partition), so the planner's stable sort produces the
  identical planned AST.  Candidate blocks are then evaluated once over
  the *union* of per-term block postings gathered in a probe phase — the
  union must happen per term, because block candidacy does not distribute
  over ``And``/``Phrase`` at whole-query granularity — and the resulting
  global block set is shipped to every shard.  A shard must never
  substitute its own narrower candidacy: a term it has never seen can
  still make one of its blocks a candidate through a collocated document
  on another shard, and Glimpse's block-granularity semantics (stopword
  regions included) depend on exactly that collocation.

* **Gather by masked union.**  Per-shard result bitmaps are already in the
  global id space, so the merge is a union masked by each shard's member
  bitmap — the doc-id translation table degenerates to the identity, which
  is the point of global ids.

Degradation is partial, never fatal: a shard whose transport fails (with
:class:`~repro.errors.ShardUnavailable`, or whose breaker is open —
:class:`~repro.errors.CircuitOpen`; both are
:class:`~repro.errors.BackendUnavailable`) is skipped in both phases, its
id lands in :attr:`ShardedSearchCluster.missing_shards`, and the query
returns exactly the union of the surviving shards' answers.  HAC reads and
resets the flag around each semantic-directory re-evaluation and surfaces
it the way PR 2 surfaces ``degraded_remote``.
"""

from __future__ import annotations

from typing import (Callable, Dict, Hashable, Iterable, List, NamedTuple,
                    Optional, Set, Tuple)

from repro.errors import BackendUnavailable, ShardUnavailable
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_TRACER
from repro.util import pathutil
from repro.util.bitmap import Bitmap
from repro.util.clock import VirtualClock
from repro.util.stats import Counters
from repro.cba import agrep, planner
from repro.cba.engine import CBAEngine, Document
from repro.cba.glimpse import DEFAULT_NUM_BLOCKS, eval_blocks, estimate_docs
from repro.cba.incremental import ReindexPlan, plan_reindex
from repro.cba.queryast import (
    And,
    FieldTerm,
    MatchAll,
    Node,
    Not,
    Or,
    Phrase,
    ScopeTerm,
    Term,
)
from repro.cba.tokenizer import DEFAULT_STOPWORDS
from repro.cba.transducers import Transducer
from repro.remote.rpc import CircuitBreaker, RetryPolicy, RpcTransport
from repro.cluster.shard import SearchShard
from repro.cluster.shardmap import Move, ShardMap

#: default shard breaker: trips fast (queries hit every shard, so a dead
#: one fails often) and cools down on the shared virtual clock
BREAKER_THRESHOLD = 3
BREAKER_COOLDOWN = 30.0


def _probe_terms(node: Node, out: Set[str]) -> None:
    """Every string :func:`~repro.cba.glimpse.eval_blocks` may look up —
    exactly the postings the probe phase must fetch from each shard."""
    if isinstance(node, Term):
        out.add(node.word)
    elif isinstance(node, FieldTerm):
        out.add(f"{node.field}:{node.value}")
    elif isinstance(node, Phrase):
        out.update(node.words)
    elif isinstance(node, (And, Or)):
        for child in node.children:
            _probe_terms(child, out)
    elif isinstance(node, ScopeTerm):
        pass  # the path dimension has no term postings: blocks are
        # path-blind, so a scope nominates every occupied block and the
        # pruning happens per shard through each engine's CAS index
    elif isinstance(node, Not):
        _probe_terms(node.child, out)
    # Approx / MatchAll consult no term postings


class _ClusterSelectivity:
    """Planner-facing view: document frequencies summed across shards.

    df and corpus size are additive over a partition, so estimates — and
    the planner's stable sort — match the monolithic engine exactly.  (A
    real deployment would ship these statistics on shard heartbeats; here
    the coordinator reads them directly, off the query path.)
    """

    def __init__(self, cluster: "ShardedSearchCluster"):
        self._cluster = cluster

    def _df(self, term: str) -> int:
        return sum(shard.engine.index.lexicon.df(term)
                   for shard in self._cluster.shards.values())

    def _scope_count(self, prefix: str) -> int:
        # scope counts are additive over a partition, exactly like df
        return sum(shard.engine.scope_count(prefix)
                   for shard in self._cluster.shards.values())

    def estimate_docs(self, node: Node) -> int:
        return estimate_docs(node, self._df, len(self._cluster),
                             self._scope_count)


class _ViewSelectivity:
    """Planner statistics over a snapshot view's chosen replicas.

    Same additive-df argument as :class:`_ClusterSelectivity`, read from
    the replica indexes instead of the live shard engines, so planning on
    the snapshot path orders conjunctions exactly as the live path would
    have *at the publish point*.
    """

    def __init__(self, view: "ClusterSnapshotView"):
        self._view = view

    def _df(self, term: str) -> int:
        return sum(replica.index.lexicon.df(term)
                   for replica in self._view.replicas.values())

    def _scope_count(self, prefix: str) -> int:
        return sum(replica.scope_count(prefix)
                   for replica in self._view.replicas.values())

    def estimate_docs(self, node: Node) -> int:
        return estimate_docs(node, self._df, len(self._view),
                             self._scope_count)


class ClusterSnapshotView:
    """A consistent cut across per-shard read replicas.

    Construction is the routing step: for every shard the freshest
    attached replica is chosen (the shard engine's own freshness-aware
    rotation), and the cut's ``version`` is the *minimum* replica version
    — with lockstep publishes and no injected lag every replica agrees,
    and ``skew`` is 0.  Queries then re-run the coordinator's two-phase
    algebra entirely in-process over the chosen replicas: per-term block
    postings unioned across replicas, one global ``eval_blocks``, then
    per-replica block verification merged by masked union.  Same
    invariants (global ids, plan-once, union-per-term), same bits — as of
    the cut — with no RPC, no drain, and no shared engine state touched.
    """

    def __init__(self, cluster: "ShardedSearchCluster"):
        self._cluster = cluster
        self.replicas = {sid: shard.engine.snapshot_view()
                         for sid, shard in cluster.shards.items()}
        versions = [r.version for r in self.replicas.values()]
        self.version = min(versions) if versions else 0
        self.skew = (max(versions) - self.version) if versions else 0
        self.fast_path = cluster.fast_path
        self.counters = cluster.counters
        self.index = _ViewSelectivity(self)

    def all_docs(self) -> Bitmap:
        out = Bitmap()
        for replica in self.replicas.values():
            out |= replica.all_docs()
        return out

    def doc_by_id(self, doc_id: int) -> Optional[Document]:
        for replica in self.replicas.values():
            doc = replica.doc_by_id(doc_id)
            if doc is not None:
                return doc
        return None

    def doc_by_key(self, key: Hashable) -> Optional[Document]:
        for replica in self.replicas.values():
            doc = replica.doc_by_key(key)
            if doc is not None:
                return doc
        return None

    def estimate_docs(self, node: Node) -> int:
        return self.index.estimate_docs(node)

    def __len__(self) -> int:
        return sum(len(replica) for replica in self.replicas.values())

    def search(self, query: Node, scope: Optional[Bitmap] = None) -> Bitmap:
        """The zero-barrier scatter-gather, replayed over the cut."""
        cluster = self._cluster
        cluster._stats.add("snapshot_searches")
        if scope is not None and not scope:
            return Bitmap()
        with cluster._tracer.span("cluster.snapshot_search",
                                  version=self.version,
                                  skew=self.skew) as span:
            universe = self.all_docs() if scope is None else scope
            if self.fast_path:
                query = planner.plan(query, self.index, cluster._stats)
            if isinstance(query, MatchAll):
                span.set(mode="matchall", hits=len(universe))
                return universe.copy()
            if self.fast_path and planner.provably_empty(
                    query, self.index._df, cluster._indexable,
                    self.index._scope_count):
                cluster._stats.add("planner_empty_shortcircuit")
                span.set(mode="empty", hits=0)
                return Bitmap()

            terms: Set[str] = set()
            _probe_terms(query, terms)
            term_blocks: Dict[str, Bitmap] = {}
            occupied = Bitmap()
            for replica in self.replicas.values():
                occupied |= replica.index.occupied_blocks()
                for term in terms:
                    blocks = replica.index.blocks_with_term(term)
                    seen = term_blocks.get(term)
                    if seen is None:
                        term_blocks[term] = blocks
                    else:
                        seen |= blocks

            def lookup(term: str) -> Bitmap:
                found = term_blocks.get(term)
                return found.copy() if found is not None else Bitmap()

            blocks = eval_blocks(query, lookup, occupied)
            result = Bitmap()
            for replica in self.replicas.values():
                members = replica.all_docs()
                replica_scope = members if scope is None else scope & members
                if not replica_scope:
                    continue
                hits = replica.search_blocks(query, blocks, replica_scope)
                result |= hits & members
            span.set(blocks=len(blocks), hits=len(result))
            return result

    def __repr__(self) -> str:
        return (f"ClusterSnapshotView(version={self.version}, "
                f"skew={self.skew}, docs={len(self)})")


class RebalancePlan(NamedTuple):
    """The deterministic work a shard-set change implies."""

    #: documents changing owners, in global-doc-id order
    moves: List[Move]
    #: per affected shard, the §2.4 reindex plan executed on it
    shard_plans: Dict[str, ReindexPlan]

    @property
    def docs_moved(self) -> int:
        return len(self.moves)


class ShardedSearchCluster:
    """K :class:`CBAEngine` shards behind one engine-protocol facade.

    Drop-in for a single engine everywhere HAC talks to one: semantic
    directories, the consistency cascade, ``ssync``/reindex, persistence.
    """

    def __init__(self, loader: Callable[[Hashable], str],
                 shard_ids: Iterable[str] = ("shard0", "shard1", "shard2"),
                 *,
                 num_blocks: int = DEFAULT_NUM_BLOCKS,
                 min_term_length: int = 2,
                 stopwords: Optional[Set[str]] = None,
                 transducer: Optional[Transducer] = None,
                 counters: Optional[Counters] = None,
                 fast_path: bool = True,
                 clock: Optional[VirtualClock] = None,
                 latency: float = 0.05,
                 seed: int = 0,
                 retry_factory: Optional[Callable[[str], RetryPolicy]] = None,
                 breaker_factory: Optional[
                     Callable[[str], CircuitBreaker]] = None,
                 replicas_per_shard: int = 1,
                 segmented: bool = False,
                 cas: bool = True):
        self.loader = loader
        self.counters = counters if counters is not None else Counters()
        self._stats = self.counters.scoped("cluster")
        self.clock = clock if clock is not None else VirtualClock()
        self.num_blocks = num_blocks
        self.min_term_length = min_term_length
        self.stopwords = DEFAULT_STOPWORDS if stopwords is None else stopwords
        self.transducer = transducer
        self.fast_path = fast_path
        #: shard engines keep segmented (memtable + frozen segment)
        #: storage, so per-shard publishes hand replicas segment lists
        self.segmented = segmented
        #: shard engines keep a CAS path dimension (subtree scope probes)
        self._cas_enabled = cas
        self.latency = latency
        self.seed = seed
        self._retry_factory = retry_factory
        self._breaker_factory = breaker_factory
        self._tracer = NULL_TRACER
        self._metrics = NULL_METRICS
        #: serving tier: cluster-wide published version (shard engines are
        #: published in lockstep, seeded at build so versions agree) and
        #: how many read replicas each shard attaches on first snapshot use
        self._published_version = 0
        self.replicas_per_shard = replicas_per_shard
        self.shardmap = ShardMap(shard_ids)
        self.shards: Dict[str, SearchShard] = {
            sid: self._build_shard(sid) for sid in self.shardmap.shard_ids}
        #: planner selectivity source (same attribute name as the engine's
        #: block index, so ``evaluator`` and ``planner`` code is agnostic)
        self.index = _ClusterSelectivity(self)
        self._docs: Dict[int, Document] = {}
        self._by_key: Dict[Hashable, int] = {}
        self._owners: Dict[int, str] = {}
        self._members: Dict[str, Bitmap] = {
            sid: Bitmap() for sid in self.shardmap.shard_ids}
        self._all = Bitmap()
        self._dirty = Bitmap()
        self._next_doc_id = 0
        #: shards skipped since the last :meth:`reset_missing_shards` —
        #: the degradation flag HAC turns into per-directory staleness
        self.missing_shards: Set[str] = set()

    def _build_shard(self, shard_id: str) -> SearchShard:
        engine = CBAEngine(loader=self.loader, num_blocks=self.num_blocks,
                           min_term_length=self.min_term_length,
                           stopwords=self.stopwords,
                           transducer=self.transducer,
                           cache_size=0,  # answers depend on shipped blocks
                           counters=self.counters, fast_path=self.fast_path,
                           segmented=self.segmented, cas=self._cas_enabled)
        engine.tracer = self._tracer
        engine.metrics = self._metrics
        # a shard added mid-life starts at the cluster's published version,
        # so lockstep publishes keep every shard's version equal
        engine._published_version = self._published_version
        breaker = (self._breaker_factory(shard_id) if self._breaker_factory
                   else CircuitBreaker(failure_threshold=BREAKER_THRESHOLD,
                                       cooldown=BREAKER_COOLDOWN,
                                       counters=self.counters,
                                       name=f"shard.{shard_id}"))
        retry = self._retry_factory(shard_id) if self._retry_factory else None
        transport = RpcTransport(name=f"shard.{shard_id}", clock=self.clock,
                                 latency=self.latency, seed=self.seed,
                                 counters=self.counters, retry=retry,
                                 breaker=breaker, tracer=self._tracer,
                                 error_cls=ShardUnavailable)
        return SearchShard(shard_id, engine, transport)

    # ------------------------------------------------------------------
    # observability plumbing (HacFileSystem assigns these attributes)
    # ------------------------------------------------------------------

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self._tracer = value
        for shard in self.shards.values():
            shard.engine.tracer = value
            shard.transport.tracer = value
            if shard.transport.breaker is not None:
                shard.transport.breaker.tracer = value

    @property
    def metrics(self):
        return self._metrics

    @metrics.setter
    def metrics(self, value) -> None:
        self._metrics = value
        for shard in self.shards.values():
            shard.engine.metrics = value

    # ------------------------------------------------------------------
    # registry (authoritative; shard registries are routing copies)
    # ------------------------------------------------------------------

    def doc_by_id(self, doc_id: int) -> Optional[Document]:
        return self._docs.get(doc_id)

    def doc_by_key(self, key: Hashable) -> Optional[Document]:
        doc_id = self._by_key.get(key)
        return self._docs.get(doc_id) if doc_id is not None else None

    def doc_id_of(self, key: Hashable) -> Optional[int]:
        return self._by_key.get(key)

    def all_docs(self) -> Bitmap:
        return self._all.copy()

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._by_key

    def mtime_snapshot(self) -> Dict[Hashable, float]:
        return {doc.key: doc.mtime for doc in self._docs.values()}

    def shard_of(self, key: Hashable) -> str:
        """Current owner of *key* (placement for unindexed keys)."""
        doc_id = self._by_key.get(key)
        if doc_id is not None:
            return self._owners[doc_id]
        return self.shardmap.owner(key)

    def members(self, shard_id: str) -> Bitmap:
        """Global doc ids living on *shard_id*."""
        return self._members[shard_id].copy()

    # ------------------------------------------------------------------
    # maintenance — applied synchronously; only queries cross the network
    # (a dead shard is a partition in front of an index that stays
    # current, so revival needs no resync — see repro.cluster.shard)
    # ------------------------------------------------------------------

    def reserve_doc_id(self) -> int:
        """Claim the next global doc id without indexing anything yet.

        The maintenance scheduler reserves ids at enqueue time so a
        coalesced batch assigns the same ids — hence the same
        ``doc_id % num_blocks`` block placement — the eager sequence
        would have.  Reserved ids that never get used stay burned;
        ids are never reused either way.
        """
        doc_id = self._next_doc_id
        self._next_doc_id += 1
        return doc_id

    def index_document(self, key: Hashable, path: str, mtime: float,
                       text: Optional[str] = None,
                       doc_id: Optional[int] = None) -> int:
        if key in self._by_key:
            raise ValueError(f"document already indexed: {key!r}")
        if text is None:
            text = self.loader(key)
        if doc_id is None:
            doc_id = self.reserve_doc_id()
        elif doc_id in self._docs:
            raise ValueError(f"doc id already in use: {doc_id}")
        else:
            self._next_doc_id = max(self._next_doc_id, doc_id + 1)
        owner = self.shardmap.owner(key)
        self.shards[owner].engine.index_document(key, path, mtime, text=text,
                                                 doc_id=doc_id)
        self._docs[doc_id] = Document(doc_id, key, path, mtime, len(text))
        self._by_key[key] = doc_id
        self._owners[doc_id] = owner
        self._members[owner].add(doc_id)
        self._all.add(doc_id)
        self._dirty.add(doc_id)
        self._stats.add("indexed")
        return doc_id

    def remove_document(self, key: Hashable) -> int:
        doc_id = self._by_key.pop(key, None)
        if doc_id is None:
            raise KeyError(f"document not indexed: {key!r}")
        owner = self._owners.pop(doc_id)
        self.shards[owner].engine.remove_document(key)
        del self._docs[doc_id]
        self._members[owner].discard(doc_id)
        self._all.discard(doc_id)
        self._dirty.add(doc_id)
        self._stats.add("removed")
        return doc_id

    def update_document(self, key: Hashable, path: str, mtime: float,
                        text: Optional[str] = None) -> int:
        doc_id = self._by_key.get(key)
        if doc_id is None:
            raise KeyError(f"document not indexed: {key!r}")
        if text is None:
            text = self.loader(key)
        self.shards[self._owners[doc_id]].engine.update_document(
            key, path, mtime, text=text)
        self._docs[doc_id] = Document(doc_id, key, path, mtime, len(text))
        self._dirty.add(doc_id)
        self._stats.add("updated")
        return doc_id

    def rename_document(self, key: Hashable, new_path: str) -> None:
        doc_id = self._by_key.get(key)
        if doc_id is None:
            raise KeyError(f"document not indexed: {key!r}")
        self.shards[self._owners[doc_id]].engine.rename_document(key, new_path)
        self._docs[doc_id] = self._docs[doc_id]._replace(path=new_path)

    def rebase_paths(self, old_prefix: str, new_prefix: str) -> int:
        """Directory rename: the engine's one-pass path rebase, mirrored
        into the authoritative registry and fanned out to every shard
        (each shard rebases its own registry slice and CAS prefix keys).
        Maintenance-side like all mutations — no RPC.  Returns documents
        moved in the coordinator registry."""
        old_prefix = pathutil.normalize(old_prefix)
        new_prefix = pathutil.normalize(new_prefix)
        moved = 0
        for doc_id, doc in list(self._docs.items()):
            if pathutil.is_ancestor(old_prefix, doc.path, strict=False):
                self._docs[doc_id] = doc._replace(
                    path=pathutil.rebase(doc.path, old_prefix, new_prefix))
                moved += 1
        for shard in self.shards.values():
            shard.engine.rebase_paths(old_prefix, new_prefix)
        if moved:
            self._stats.add("paths_rebased", moved)
        return moved

    # ------------------------------------------------------------------
    # the path dimension (per-shard CAS indexes, merged by global ids)
    # ------------------------------------------------------------------

    @property
    def cas(self):
        """Truthy when the shard engines keep a CAS path dimension.  The
        coordinator holds no CAS index of its own: subtree probes scatter
        to the shards and merge by union — shard answers are already
        global doc ids, so the merge is exact."""
        return True if self._cas_enabled else None

    def _indexable(self, word: str) -> bool:
        return len(word) >= self.min_term_length and word not in self.stopwords

    def scope_docs(self, prefix: str) -> Bitmap:
        """Global ids registered under *prefix*: union of per-shard
        probes.  Read directly off the shard engines like the planner
        statistics — scope resolution is maintenance-side, not a query
        RPC, so it stays whole while shards are partitioned off."""
        out = Bitmap()
        for shard in self.shards.values():
            out |= shard.engine.scope_docs(prefix)
        return out

    def scope_count(self, prefix: str) -> int:
        """Documents under *prefix*, summed across shards (additive over
        a partition, exactly like document frequency)."""
        return self.index._scope_count(prefix)

    def reindex(self, current: Iterable[Tuple[Hashable, str, float]],
                previous: Optional[Dict[Hashable, float]] = None) -> ReindexPlan:
        """Same contract as :meth:`CBAEngine.reindex`, routed per owner."""
        listing = {key: (path, mtime) for key, path, mtime in current}
        baseline = self.mtime_snapshot() if previous is None else previous
        plan = plan_reindex(baseline,
                            {key: mtime for key, (_path, mtime) in listing.items()})
        for key in plan.removed:
            self.remove_document(key)
        for key in plan.added:
            path, mtime = listing[key]
            self.index_document(key, path, mtime)
        for key in plan.changed:
            path, mtime = listing[key]
            self.update_document(key, path, mtime)
        for key, (path, mtime) in listing.items():
            doc_id = self._by_key.get(key)
            if doc_id is not None and self._docs[doc_id].path != path:
                if self.transducer is not None:
                    self.update_document(key, path, mtime)
                else:
                    self.rename_document(key, path)
        self._stats.add("reindex_runs")
        return plan

    def dirty_docs(self) -> Bitmap:
        return self._dirty.copy()

    def clear_query_cache(self) -> None:
        for shard in self.shards.values():
            shard.engine.clear_query_cache()

    # ------------------------------------------------------------------
    # the scatter-gather query path
    # ------------------------------------------------------------------

    def search(self, query: Node, scope: Optional[Bitmap] = None) -> Bitmap:
        """Two-phase distributed evaluation; bit-identical to the monolith.

        Phase 1 (*probe*) gathers each reachable shard's per-term block
        postings and occupied blocks; the coordinator unions them per term
        and evaluates the candidate-block algebra once, globally.  Phase 2
        (*scatter*) ships the planned query plus the global block set to
        each shard for verification; the gather step unions the per-shard
        bitmaps masked by shard membership.

        A planned ``MatchAll`` short-circuits from the coordinator's own
        registry without touching the network — which also means it stays
        whole while shards are down, exactly like the monolith's
        registry-only answer.

        Shards unreachable in either phase are recorded in
        :attr:`missing_shards` and the result is the union of the
        survivors' answers — partial, never an exception.
        """
        self._stats.add("searches")
        if scope is not None and not scope:
            return Bitmap()
        with self._tracer.span("cluster.search") as span:
            universe = self._all if scope is None else scope
            if self.fast_path:
                with self._tracer.span("cluster.plan"):
                    query = planner.plan(query, self.index, self._stats)
            if isinstance(query, MatchAll):
                span.set(mode="matchall", hits=len(universe))
                return universe.copy()
            if self.fast_path and planner.provably_empty(
                    query, self.index._df, self._indexable,
                    self.index._scope_count):
                # summed df / scope counts prove emptiness exactly as the
                # monolith's lexicon would: skip both scatter phases
                self._stats.add("planner_empty_shortcircuit")
                span.set(mode="empty", hits=0)
                return Bitmap()

            terms: Set[str] = set()
            _probe_terms(query, terms)
            wanted = sorted(terms)
            term_blocks: Dict[str, Bitmap] = {}
            occupied = Bitmap()
            occupied_by: Dict[str, Bitmap] = {}
            reachable: List[str] = []
            missing: Set[str] = set()
            for sid, shard in self.shards.items():
                try:
                    with self._tracer.span("cluster.probe", shard=sid):
                        probe = shard.probe(wanted)
                except BackendUnavailable:
                    missing.add(sid)
                    continue
                reachable.append(sid)
                occupied |= probe.occupied
                occupied_by[sid] = probe.occupied
                for term, blocks in probe.term_blocks.items():
                    seen = term_blocks.get(term)
                    if seen is None:
                        term_blocks[term] = blocks
                    else:
                        seen |= blocks

            def lookup(term: str) -> Bitmap:
                found = term_blocks.get(term)
                return found.copy() if found is not None else Bitmap()

            blocks = eval_blocks(query, lookup, occupied)
            self._metrics.observe("cluster.candidate_blocks", len(blocks))
            self._metrics.observe("cluster.fanout", len(reachable))

            result = Bitmap()
            for sid in reachable:
                shard = self.shards[sid]
                shard_members = self._members[sid]
                shard_scope = None if scope is None else scope & shard_members
                if shard_scope is not None and not shard_scope:
                    continue  # nothing in scope lives here; skip the RPC
                shard_blocks = len(blocks & occupied_by[sid])
                self._stats.add(f"shard.{sid}.candidate_blocks", shard_blocks)
                self._metrics.observe(f"cluster.shard.{sid}.candidate_blocks",
                                      shard_blocks)
                try:
                    with self._tracer.span("cluster.scatter", shard=sid):
                        hits = shard.search(query, blocks, shard_scope)
                except BackendUnavailable:
                    missing.add(sid)
                    continue
                result |= hits & shard_members

            if missing:
                self.missing_shards |= missing
                self._stats.add("partial_results")
            span.set(blocks=len(blocks), hits=len(result),
                     shards=len(self.shards), missing=sorted(missing))
            return result

    def search_blocks(self, query: Node, blocks: Bitmap,
                      scope: Optional[Bitmap] = None) -> Bitmap:
        """Phase 2 only: verify *query* against caller-nominated candidate
        *blocks* (the :class:`~repro.cba.backend.SearchBackend` entry
        point; :meth:`search` probes for its own candidates first).
        Unreachable shards degrade to partial results, like any scatter."""
        self._stats.add("block_searches")
        if scope is not None and not scope:
            return Bitmap()
        with self._tracer.span("cluster.search_blocks") as span:
            result = Bitmap()
            missing: Set[str] = set()
            for sid, shard in self.shards.items():
                shard_members = self._members[sid]
                shard_scope = None if scope is None else scope & shard_members
                if shard_scope is not None and not shard_scope:
                    continue
                try:
                    with self._tracer.span("cluster.scatter", shard=sid):
                        hits = shard.search(query, blocks, shard_scope)
                except BackendUnavailable:
                    missing.add(sid)
                    continue
                result |= hits & shard_members
            if missing:
                self.missing_shards |= missing
                self._stats.add("partial_results")
            span.set(blocks=len(blocks), hits=len(result),
                     missing=sorted(missing))
            return result

    def reset_missing_shards(self) -> Set[str]:
        """Clear and return the accumulated degradation flag (callers
        bracket a unit of work — e.g. one semantic-dir re-evaluation —
        with reset-before / read-after)."""
        missing, self.missing_shards = self.missing_shards, set()
        return missing

    def estimate_docs(self, node: Node) -> int:
        """Planner selectivity over the summed per-shard statistics."""
        return self.index.estimate_docs(node)

    def extract(self, key: Hashable, query: Node) -> List[str]:
        return agrep.matching_lines(self.loader(key), query)

    # ------------------------------------------------------------------
    # serving tier: lockstep shard publishes and the consistent-cut view
    # ------------------------------------------------------------------

    def publish(self) -> int:
        """Publish every shard engine in lockstep; returns the new
        cluster-wide version.

        Maintenance is coordinator-side and synchronous, so at publish
        time every shard engine is at rest at the same logical point —
        one version bump per shard yields per-shard versions that always
        agree with the cluster's (replica versions can trail only through
        deliberate lag injection).
        """
        with self._tracer.span("cluster.publish") as span:
            self._published_version += 1
            for shard in self.shards.values():
                shard.engine.publish()
            span.set(version=self._published_version,
                     shards=len(self.shards))
        self._stats.add("publishes")
        return self._published_version

    def _ensure_replicas(self) -> None:
        for sid, shard in self.shards.items():
            engine = shard.engine
            while len(engine.replicas) < self.replicas_per_shard:
                engine.attach_replica(f"{sid}:r{len(engine.replicas)}")

    def snapshot_view(self) -> ClusterSnapshotView:
        """A consistent cut over the freshest replica of every shard."""
        self._ensure_replicas()
        self._stats.add("snapshot_reads")
        return ClusterSnapshotView(self)

    def snapshot_info(self) -> Dict[str, object]:
        """Cluster version, buffered op counts, and the flat replica list
        (replica ids are ``<shard>:<replica>``)."""
        replicas: List[Dict[str, object]] = []
        shard_versions: Dict[str, int] = {}
        pending = 0
        for sid, shard in self.shards.items():
            info = shard.engine.snapshot_info()
            shard_versions[sid] = info["version"]
            pending += info["pending_ops"]
            replicas.extend(info["replicas"])
        return {
            "version": self._published_version,
            "pending_ops": pending,
            "replicas": replicas,
            "shards": shard_versions,
        }

    def set_replica_lag(self, shard_id: str, publishes: int,
                        replica_id: Optional[str] = None) -> None:
        """Lag one shard's replicas (or one specific replica) by
        *publishes* publishes — the staleness-injection control."""
        engine = self.shards[shard_id].engine
        if replica_id is not None:
            engine.set_replica_lag(replica_id, publishes)
            return
        for replica in engine.replicas:
            replica.lag = publishes

    # ------------------------------------------------------------------
    # fault controls and health (tests, shell, benchmarks)
    # ------------------------------------------------------------------

    def kill_shard(self, shard_id: str) -> None:
        """Partition *shard_id* off: every RPC to it fails until revival.
        Its index silently stays current (maintenance is coordinator-side),
        so revival restores whole answers with no resync."""
        transport = self.shards[shard_id].transport
        transport.fail_on = None
        transport.failure_rate = 1.0
        self._stats.add("kills")

    def revive_shard(self, shard_id: str) -> None:
        transport = self.shards[shard_id].transport
        transport.fail_on = None
        transport.failure_rate = 0.0
        if transport.breaker is not None:
            transport.breaker.record_success()
        self._stats.add("revivals")

    def breakers(self) -> Dict[str, CircuitBreaker]:
        """Shard id → its transport's breaker (only monitored shards)."""
        return {sid: shard.transport.breaker
                for sid, shard in self.shards.items()
                if shard.transport.breaker is not None}

    def health(self) -> Dict[str, str]:
        """Shard id → ``down`` / breaker state / ``unmonitored``."""
        out: Dict[str, str] = {}
        for sid, shard in self.shards.items():
            transport = shard.transport
            if transport.failure_rate >= 1.0:
                out[sid] = "down"
            elif transport.breaker is not None:
                out[sid] = transport.breaker.state
            else:
                out[sid] = "unmonitored"
        return out

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------

    def add_shard(self, shard_id: str) -> RebalancePlan:
        new_map = self.shardmap.with_shard(shard_id)
        self.shards[shard_id] = self._build_shard(shard_id)
        self._members[shard_id] = Bitmap()
        return self._rebalance(new_map)

    def remove_shard(self, shard_id: str) -> RebalancePlan:
        new_map = self.shardmap.without_shard(shard_id)
        plan = self._rebalance(new_map)  # drains the doomed shard
        del self.shards[shard_id]
        del self._members[shard_id]
        self.missing_shards.discard(shard_id)
        return plan

    def _rebalance(self, new_map: ShardMap) -> RebalancePlan:
        """Move exactly the documents whose rendezvous owner changed.

        The moved-doc list is deterministic (global-doc-id order) and the
        per-shard work is expressed as §2.4 reindex plans — each source
        shard sees its outgoing documents as removals, each destination
        its incoming ones as additions — so the fan-out reuses the same
        incremental machinery as any ``ssync``.  Moves re-read document
        text through the loader, like any reindex addition.
        """
        with self._tracer.span("cluster.rebalance") as span:
            keys = [self._docs[doc_id].key for doc_id in sorted(self._docs)]
            moves = self.shardmap.moves(new_map, keys)
            outgoing: Dict[str, Dict[Hashable, float]] = {}
            incoming: Dict[str, Dict[Hashable, float]] = {}
            for move in moves:
                mtime = self.doc_by_key(move.key).mtime
                outgoing.setdefault(move.source, {})[move.key] = mtime
                incoming.setdefault(move.dest, {})[move.key] = mtime
            shard_plans = {
                sid: plan_reindex(outgoing.get(sid, {}), incoming.get(sid, {}))
                for sid in sorted(set(outgoing) | set(incoming))}
            for move in moves:
                doc_id = self._by_key[move.key]
                doc = self._docs[doc_id]
                text = self.loader(move.key)
                self.shards[move.source].engine.remove_document(move.key)
                self.shards[move.dest].engine.index_document(
                    move.key, doc.path, doc.mtime, text=text, doc_id=doc_id)
                self._owners[doc_id] = move.dest
                self._members[move.source].discard(doc_id)
                self._members[move.dest].add(doc_id)
            self.shardmap = new_map
            self._stats.add("rebalances")
            self._stats.add("docs_moved", len(moves))
            span.set(moves=len(moves), shards=len(new_map))
            plan = RebalancePlan(moves=moves, shard_plans=shard_plans)
        # topology changes republish so attached replicas pick up the
        # cross-shard moves as one atomic version step
        self.publish()
        return plan

    # ------------------------------------------------------------------
    # reporting and persistence
    # ------------------------------------------------------------------

    def index_size_bytes(self) -> int:
        """Shard index footprints plus the coordinator's routing registry
        (shard-side registry copies are counted by the shards)."""
        registry = sum(len(str(doc.path)) + 48 for doc in self._docs.values())
        return registry + sum(shard.engine.index_size_bytes()
                              for shard in self.shards.values())

    def corpus_bytes(self) -> int:
        return sum(doc.size for doc in self._docs.values())

    def to_obj(self):
        """Dump shards + registry to plain primitives (same ``(str, int)``
        key assumption as :meth:`CBAEngine.to_obj`)."""
        return {
            "cluster": 1,
            "num_blocks": self.num_blocks,
            "shard_ids": list(self.shardmap.shard_ids),
            "shards": {sid: shard.engine.to_obj()
                       for sid, shard in self.shards.items()},
            "docs": [[doc.doc_id, list(doc.key), doc.path, doc.mtime,
                      doc.size, self._owners[doc.doc_id]]
                     for doc in self._docs.values()],
            "next": self._next_doc_id,
        }

    @classmethod
    def from_obj(cls, obj, loader: Callable[[Hashable], str], *,
                 min_term_length: int = 2,
                 stopwords: Optional[Set[str]] = None,
                 transducer: Optional[Transducer] = None,
                 counters: Optional[Counters] = None,
                 fast_path: bool = True,
                 clock: Optional[VirtualClock] = None,
                 latency: float = 0.05,
                 seed: int = 0,
                 retry_factory: Optional[Callable[[str], RetryPolicy]] = None,
                 breaker_factory: Optional[
                     Callable[[str], CircuitBreaker]] = None,
                 segmented: bool = False,
                 cas: bool = True
                 ) -> "ShardedSearchCluster":
        """Rebuild a cluster from :meth:`to_obj` output without re-reading
        or re-tokenising a single document."""
        cluster = cls(loader, obj["shard_ids"],
                      num_blocks=obj.get("num_blocks", DEFAULT_NUM_BLOCKS),
                      min_term_length=min_term_length, stopwords=stopwords,
                      transducer=transducer, counters=counters,
                      fast_path=fast_path, clock=clock, latency=latency,
                      seed=seed, retry_factory=retry_factory,
                      breaker_factory=breaker_factory, segmented=segmented,
                      cas=cas)
        for sid, shard in cluster.shards.items():
            engine = CBAEngine.from_obj(obj["shards"][sid], loader=loader,
                                        transducer=transducer,
                                        counters=cluster.counters,
                                        fast_path=fast_path, cache_size=0,
                                        segmented=segmented, cas=cas)
            # from_obj builds with tokeniser defaults; restore the
            # cluster's configuration for post-restore maintenance
            engine.min_term_length = cluster.min_term_length
            engine.stopwords = cluster.stopwords
            engine.tracer = cluster._tracer
            engine.metrics = cluster._metrics
            shard.engine = engine
        for doc_id, raw_key, path, mtime, size, owner in obj["docs"]:
            key = (raw_key[0], raw_key[1])
            cluster._docs[doc_id] = Document(doc_id, key, path, mtime, size)
            cluster._by_key[key] = doc_id
            cluster._owners[doc_id] = owner
            cluster._members[owner].add(doc_id)
            cluster._all.add(doc_id)
        cluster._next_doc_id = obj["next"]
        cluster._stats.add("restored_docs", len(cluster._docs))
        return cluster

    def __repr__(self) -> str:
        return (f"ShardedSearchCluster(shards={list(self.shardmap.shard_ids)}, "
                f"docs={len(self._docs)})")
