"""Document → shard placement by rendezvous (highest-random-weight) hashing.

The cluster partitions the corpus across K independent Glimpse shards.
Placement must be deterministic (two coordinators over the same corpus
agree), balanced-ish under skewed key distributions, and — critically for
rebalancing — *minimal*: adding a shard moves only the documents the new
shard wins, and removing a shard moves only the documents it owned.
Rendezvous hashing gives all three with no ring state to persist: every
``(shard, key)`` pair gets a stable score from a keyed blake2b digest, and
a key lives on the highest-scoring shard.

:meth:`ShardMap.moves` diffs two maps over a key set and returns the
deterministic moved-doc list the coordinator turns into per-shard reindex
plans (see :mod:`repro.cluster.coordinator`).
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, List, NamedTuple, Tuple


class Move(NamedTuple):
    """One document changing owners during a rebalance."""

    key: Hashable
    source: str
    dest: str


def _score(shard_id: str, key: Hashable) -> int:
    """Stable 64-bit weight of placing *key* on *shard_id*.

    ``repr`` of the key is part of the digest input, so any hashable key
    shape HAC uses — ``(fsid, ino)`` pairs, strings, ints — scores
    deterministically across processes (unlike built-in ``hash``, which is
    salted per run for strings).
    """
    raw = f"{shard_id}|{key!r}".encode("utf-8")
    return int.from_bytes(hashlib.blake2b(raw, digest_size=8).digest(), "big")


class ShardMap:
    """An immutable set of shard ids plus the placement function."""

    def __init__(self, shard_ids: Iterable[str]):
        ids = list(shard_ids)
        if not ids:
            raise ValueError("a shard map needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate shard ids")
        self.shard_ids: Tuple[str, ...] = tuple(ids)

    def owner(self, key: Hashable) -> str:
        """The shard owning *key* — highest rendezvous score wins; the
        shard id itself breaks (astronomically unlikely) score ties, so
        ownership is a pure function of (shard set, key)."""
        return max(self.shard_ids, key=lambda sid: (_score(sid, key), sid))

    def with_shard(self, shard_id: str) -> "ShardMap":
        if shard_id in self.shard_ids:
            raise ValueError(f"shard already present: {shard_id}")
        return ShardMap(self.shard_ids + (shard_id,))

    def without_shard(self, shard_id: str) -> "ShardMap":
        if shard_id not in self.shard_ids:
            raise KeyError(f"no such shard: {shard_id}")
        if len(self.shard_ids) == 1:
            raise ValueError("cannot remove the last shard")
        return ShardMap(sid for sid in self.shard_ids if sid != shard_id)

    def moves(self, new_map: "ShardMap",
              keys: Iterable[Hashable]) -> List[Move]:
        """Documents whose owner differs between this map and *new_map*,
        in the (deterministic) order of *keys*."""
        out: List[Move] = []
        for key in keys:
            source = self.owner(key)
            dest = new_map.owner(key)
            if source != dest:
                out.append(Move(key, source, dest))
        return out

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self.shard_ids

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __repr__(self) -> str:
        return f"ShardMap({list(self.shard_ids)!r})"
