"""One search shard: a private Glimpse engine behind a simulated network.

A shard is exactly the paper's CBA substrate — a :class:`CBAEngine` over a
slice of the corpus — reachable only through an :class:`RpcTransport`, so
every scatter-gather query charges latency, counts traffic, and can be
fault-injected per shard (deterministic schedules, rate-based kills, retry
policies, circuit breakers: the PR-2 machinery, now load-bearing).

Only the *query path* crosses the simulated network (``probe`` for the
per-term block postings, ``search`` for block-verified answers).  Index
maintenance is applied synchronously by the coordinator, which owns the
authoritative document registry: a "dead" shard models a partition between
the coordinator and an intact remote index, so queries degrade to partial
results while the shard's index silently stays current — and answers are
whole again the moment the link heals, with no resync step.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.util.bitmap import Bitmap
from repro.cba.engine import CBAEngine
from repro.cba.queryast import Node
from repro.remote.rpc import RpcTransport


class ShardProbe(NamedTuple):
    """Phase-1 scatter answer: this shard's slice of the block index."""

    shard_id: str
    #: term → bitmap of *global* block ids whose members carry the term
    term_blocks: Dict[str, Bitmap]
    #: occupied global block ids on this shard
    occupied: Bitmap


class SearchShard:
    """A :class:`CBAEngine` plus the transport guarding its query path."""

    def __init__(self, shard_id: str, engine: CBAEngine,
                 transport: RpcTransport):
        self.shard_id = shard_id
        self.engine = engine
        self.transport = transport

    # -- the scatter-gather protocol (goes over "the network") ----------------

    def probe(self, terms: List[str]) -> ShardProbe:
        """Phase 1: per-term block postings plus the occupied block set.

        The coordinator unions these across shards and evaluates candidate
        blocks *once*, globally — the union must happen per term, because
        block candidacy does not distribute over ``And``/``Phrase`` at
        whole-query granularity.
        """
        def run() -> ShardProbe:
            index = self.engine.index
            return ShardProbe(
                shard_id=self.shard_id,
                term_blocks={t: index.blocks_with_term(t) for t in terms},
                occupied=index.occupied_blocks())
        return self.transport.call("probe", run)

    def search(self, query: Node, blocks: Bitmap,
               scope: Optional[Bitmap] = None) -> Bitmap:
        """Phase 2: verify the coordinator-planned *query* against the
        globally nominated candidate *blocks* (see
        :meth:`CBAEngine.search_blocks`)."""
        return self.transport.call(
            "search", lambda: self.engine.search_blocks(query, blocks, scope))

    # -- convenience ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.engine)

    def __repr__(self) -> str:
        return f"SearchShard({self.shard_id!r}, docs={len(self.engine)})"
