"""Sharded content-based access: K Glimpse shards, one engine facade.

The paper argues HAC's CBA seam is general enough to host *any* search
system (§2.2); this package cashes that in for scale-out.  A
:class:`ShardedSearchCluster` partitions documents across independent
:class:`~repro.cba.engine.CBAEngine` shards by rendezvous hashing
(:class:`ShardMap`), queries them scatter-gather over the simulated RPC
substrate, and merges per-shard bitmaps into answers bit-identical to a
monolithic engine — degrading to partial results (``missing_shards``)
when shards are unreachable instead of failing.

:class:`ClusterFactory` adapts the cluster to the ``engine_factory`` seam
on :class:`~repro.core.hacfs.HacFileSystem`, so semantic directories, the
consistency cascade, and ``ssync`` run unchanged against shards.
"""

from typing import Callable, Iterable, Optional

from repro.cba.glimpse import DEFAULT_NUM_BLOCKS
from repro.cluster.coordinator import (ClusterSnapshotView, RebalancePlan,
                                       ShardedSearchCluster)
from repro.cluster.shard import SearchShard, ShardProbe
from repro.cluster.shardmap import Move, ShardMap

__all__ = [
    "ClusterFactory",
    "ClusterSnapshotView",
    "Move",
    "RebalancePlan",
    "SearchShard",
    "ShardMap",
    "ShardProbe",
    "ShardedSearchCluster",
]


class ClusterFactory:
    """Engine factory building :class:`ShardedSearchCluster` instances.

    Matches the calling convention of ``HacFileSystem(engine_factory=...)``
    and ``HacFileSystem.restore(engine_factory=...)``: construction
    parameters that belong to the file system (loader, counters, clock,
    transducer, block count, fast path) arrive per call; cluster topology
    and fault-injection knobs are fixed at factory creation.
    """

    def __init__(self, shards: int = 3,
                 shard_ids: Optional[Iterable[str]] = None,
                 latency: float = 0.05,
                 seed: int = 0,
                 retry_factory: Optional[Callable] = None,
                 breaker_factory: Optional[Callable] = None,
                 replicas_per_shard: int = 1,
                 segmented: bool = False,
                 cas: bool = True):
        if shard_ids is None:
            shard_ids = [f"shard{i}" for i in range(shards)]
        self.shard_ids = list(shard_ids)
        self.latency = latency
        self.seed = seed
        self.retry_factory = retry_factory
        self.breaker_factory = breaker_factory
        self.replicas_per_shard = replicas_per_shard
        self.segmented = segmented
        self.cas = cas

    def __call__(self, loader, *, counters=None, clock=None, transducer=None,
                 num_blocks: int = DEFAULT_NUM_BLOCKS,
                 fast_path: bool = True) -> ShardedSearchCluster:
        return ShardedSearchCluster(
            loader, self.shard_ids, num_blocks=num_blocks,
            transducer=transducer, counters=counters, fast_path=fast_path,
            clock=clock, latency=self.latency, seed=self.seed,
            retry_factory=self.retry_factory,
            breaker_factory=self.breaker_factory,
            replicas_per_shard=self.replicas_per_shard,
            segmented=self.segmented, cas=self.cas)

    def from_obj(self, obj, *, loader, counters=None, clock=None,
                 transducer=None, fast_path: bool = True
                 ) -> ShardedSearchCluster:
        return ShardedSearchCluster.from_obj(
            obj, loader, transducer=transducer, counters=counters,
            fast_path=fast_path, clock=clock, latency=self.latency,
            seed=self.seed, retry_factory=self.retry_factory,
            breaker_factory=self.breaker_factory,
            segmented=self.segmented, cas=self.cas)
