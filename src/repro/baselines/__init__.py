"""Baseline systems the paper compares against or builds upon.

Table 2 compares HAC's Andrew-benchmark slowdown against two other
*user-level* file systems; related work contrasts HAC with the MIT Semantic
File System.  We reimplement the mechanism of each so those comparisons are
measured, not quoted:

* :mod:`repro.baselines.jadefs` — a Jade-style logical name space: every
  path is translated through a per-user mapping table before reaching the
  physical file system;
* :mod:`repro.baselines.pseudofs` — a Pseudo-FS-style interposition: every
  operation is marshalled, "sent" to a user-level server, executed, and the
  reply unmarshalled;
* :mod:`repro.baselines.sfs` — the MIT Semantic File System: transducers
  extract attribute/value pairs, virtual directories name conjunctive
  attribute queries;
* :mod:`repro.baselines.nebula` — Nebula: boolean-query views with
  DAG-structured scopes, customised by scope editing rather than result
  editing;
* :mod:`repro.baselines.prospero` — Prospero: arbitrary filter programs on
  links, composition, and — deliberately — no consistency guarantees.

The SFS and Nebula reimplementations power the executable related-work
comparison in ``tests/integration/test_capability_matrix.py`` — each §5
claim about what those systems can and cannot do is asserted against the
real implementations.
"""

from repro.baselines.jadefs import JadeFileSystem
from repro.baselines.nebula import NebulaFileSystem
from repro.baselines.prospero import ProsperoFileSystem
from repro.baselines.pseudofs import PseudoFileSystem
from repro.baselines.sfs import SemanticFileSystem, Transducer

__all__ = [
    "JadeFileSystem",
    "NebulaFileSystem",
    "ProsperoFileSystem",
    "PseudoFileSystem",
    "SemanticFileSystem",
    "Transducer",
]
