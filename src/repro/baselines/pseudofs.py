"""A Pseudo-FS-style interposition layer (Table 2 baseline).

Pseudo file systems (Welch & Ousterhout's pseudo-devices / pseudo-file-
systems in Sprite) route every file operation through a user-level server
process: the kernel marshals the request, the server unmarshals it, does
the work, and marshals the reply.  Published Andrew slowdown: ~33 %.

We reproduce the mechanism with a real marshal/unmarshal round trip per
operation using the C-speed stdlib ``marshal`` codec (the channel must
not dominate; real pseudo-device channels were kernel buffers).  As in Sprite, bulk *data* moves through
a shared buffer rather than the request channel — only control information
(paths, modes, sizes, buffer handles) is marshalled — so the per-operation
interposition cost is what the Table 2 bench measures, not a memcpy tax
the original system never paid.
"""

from __future__ import annotations

import marshal

from typing import Any, List, Optional

from repro.util.stats import Counters
from repro.vfs.fd import FDTable
from repro.vfs.filesystem import FileSystem, StatResult


class _SharedBuffers:
    """The Sprite-style shared data buffers: bulk bytes bypass the codec."""

    def __init__(self):
        self._slots: dict = {}
        self._next = 0

    def put(self, data: bytes) -> int:
        handle = self._next
        self._next += 1
        self._slots[handle] = bytes(data)
        return handle

    def take(self, handle: int) -> bytes:
        return self._slots.pop(handle)


class _Server:
    """The user-level server side: executes unmarshalled requests."""

    def __init__(self, fs: FileSystem, buffers: "_SharedBuffers"):
        self.fs = fs
        self.fdtable = FDTable()
        self.buffers = buffers

    def handle(self, request: bytes) -> bytes:
        op, args = marshal.loads(request)
        method = getattr(self, f"_op_{op}")
        result = method(*args)
        return marshal.dumps(result)

    def _op_mkdir(self, path: str, mode: int):
        self.fs.mkdir(path, mode=mode)
        return None

    def _op_rmdir(self, path: str):
        self.fs.rmdir(path)
        return None

    def _op_create(self, path: str, mode: int):
        self.fs.create(path, mode=mode)
        return None

    def _op_write_file(self, path: str, handle: int, append: bool):
        return self.fs.write_file(path, self.buffers.take(handle),
                                  append=append)

    def _op_read_file(self, path: str):
        return self.buffers.put(self.fs.read_file(path))

    def _op_unlink(self, path: str):
        self.fs.unlink(path)
        return None

    def _op_symlink(self, target: str, linkpath: str):
        self.fs.symlink(target, linkpath)
        return None

    def _op_readlink(self, path: str):
        return self.fs.readlink(path)

    def _op_rename(self, old: str, new: str):
        self.fs.rename(old, new)
        return None

    def _op_stat(self, path: str):
        st = self.fs.stat(path)
        return {"ino": st.ino, "type": st.type.value, **st.attrs.as_dict()}

    def _op_listdir(self, path: str):
        return self.fs.listdir(path)

    def _op_open(self, path: str, mode: str):
        return self.fs.open(self.fdtable, path, mode)

    def _op_read(self, fd: int, size: int):
        return self.buffers.put(self.fs.read(self.fdtable, fd, size))

    def _op_write(self, fd: int, handle: int):
        return self.fs.write(self.fdtable, fd, self.buffers.take(handle))

    def _op_close(self, fd: int):
        self.fs.close(self.fdtable, fd)
        return None


class PseudoFileSystem:
    """Client side: marshals every call to the in-process server."""

    def __init__(self, physical: FileSystem,
                 counters: Optional[Counters] = None):
        self.physical = physical
        self.counters = counters if counters is not None else physical.counters
        self._stats = self.counters.scoped("pseudo")
        self._buffers = _SharedBuffers()
        self._server = _Server(physical, self._buffers)

    def _call(self, op: str, *args) -> Any:
        request = marshal.dumps((op, args))
        self._stats.add("requests")
        self._stats.add("request_bytes", len(request))
        reply = self._server.handle(request)
        self._stats.add("reply_bytes", len(reply))
        return marshal.loads(reply)

    # -- forwarded operations ---------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._call("mkdir", path, mode)

    def rmdir(self, path: str) -> None:
        self._call("rmdir", path)

    def create(self, path: str, mode: int = 0o644) -> None:
        self._call("create", path, mode)

    def write_file(self, path: str, data: bytes, append: bool = False) -> int:
        return self._call("write_file", path, self._buffers.put(data), append)

    def read_file(self, path: str) -> bytes:
        return self._buffers.take(self._call("read_file", path))

    def unlink(self, path: str) -> None:
        self._call("unlink", path)

    def symlink(self, target: str, linkpath: str) -> None:
        self._call("symlink", target, linkpath)

    def readlink(self, path: str) -> str:
        return self._call("readlink", path)

    def rename(self, old: str, new: str) -> None:
        self._call("rename", old, new)

    def stat(self, path: str) -> dict:
        return self._call("stat", path)

    def listdir(self, path: str) -> List[str]:
        return self._call("listdir", path)

    def exists(self, path: str) -> bool:
        try:
            self._call("stat", path)
            return True
        except Exception:
            return False

    def open(self, path: str, mode: str = "r") -> int:
        return self._call("open", path, mode)

    def read(self, fd: int, size: int = -1) -> bytes:
        return self._buffers.take(self._call("read", fd, size))

    def write(self, fd: int, data: bytes) -> int:
        return self._call("write", fd, self._buffers.put(data))

    def close(self, fd: int) -> None:
        self._call("close", fd)
