"""A Jade-style user-level file system (Table 2 baseline).

Jade (Rao & Peterson, 1993) gives each user a *logical* name space stitched
together from underlying physical file systems; every operation first
translates the logical path through a per-user mapping table, component by
component, with a name cache in front.  Its published Andrew slowdown is
~36 %.

This reimplementation reproduces the mechanism — longest-prefix translation
through a user-defined table plus per-component logical name resolution and
a bounded name cache — over our VFS, so the Table 2 bench measures the same
*kind* of work Jade did rather than quoting its number.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.util import pathutil
from repro.util.lru import LRUCache
from repro.util.stats import Counters
from repro.vfs.fd import FDTable
from repro.vfs.filesystem import FileSystem, StatResult


class JadeFileSystem:
    """Logical name space over a physical :class:`FileSystem`."""

    def __init__(self, physical: FileSystem,
                 counters: Optional[Counters] = None,
                 name_cache_size: int = 512):
        self.physical = physical
        self.counters = counters if counters is not None else physical.counters
        self._stats = self.counters.scoped("jade")
        #: logical prefix → physical prefix, longest match wins
        self._table: List[Tuple[str, str]] = [("/", "/")]
        self._cache: LRUCache[str, str] = LRUCache(name_cache_size)
        self.fdtable = FDTable()

    # -- the logical name space ---------------------------------------------

    def attach(self, logical_prefix: str, physical_prefix: str) -> None:
        """Map a logical subtree onto a physical one."""
        entry = (pathutil.normalize(logical_prefix),
                 pathutil.normalize(physical_prefix))
        self._table.append(entry)
        # longest prefixes first so translation picks the most specific map
        self._table.sort(key=lambda e: pathutil.depth(e[0]), reverse=True)
        self._cache.clear()

    def translate(self, logical: str) -> str:
        """Logical → physical path (the per-operation Jade work)."""
        norm = pathutil.normalize(logical)
        self._stats.add("translations")
        cached = self._cache.get(norm)
        if cached is not None:
            return cached
        for logical_prefix, physical_prefix in self._table:
            if pathutil.is_ancestor(logical_prefix, norm, strict=False):
                rel = pathutil.relative_to(norm, logical_prefix)
                # per-component resolution cost, as in Jade's name server
                for _comp in pathutil.split_components(rel):
                    self._stats.add("components")
                physical = (pathutil.join(physical_prefix, rel)
                            if rel else physical_prefix)
                self._cache.put(norm, physical)
                return physical
        self._cache.put(norm, norm)
        return norm

    # -- forwarded operations ---------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755) -> StatResult:
        return self.physical.mkdir(self.translate(path), mode=mode)

    def rmdir(self, path: str) -> None:
        self.physical.rmdir(self.translate(path))

    def create(self, path: str, mode: int = 0o644) -> StatResult:
        return self.physical.create(self.translate(path), mode=mode)

    def write_file(self, path: str, data: bytes, append: bool = False) -> int:
        return self.physical.write_file(self.translate(path), data, append=append)

    def read_file(self, path: str) -> bytes:
        return self.physical.read_file(self.translate(path))

    def unlink(self, path: str) -> None:
        self.physical.unlink(self.translate(path))

    def symlink(self, target: str, linkpath: str) -> StatResult:
        return self.physical.symlink(target, self.translate(linkpath))

    def readlink(self, path: str) -> str:
        return self.physical.readlink(self.translate(path))

    def rename(self, old: str, new: str) -> None:
        self.physical.rename(self.translate(old), self.translate(new))
        self._cache.clear()

    def stat(self, path: str) -> StatResult:
        return self.physical.stat(self.translate(path))

    def listdir(self, path: str) -> List[str]:
        return self.physical.listdir(self.translate(path))

    def exists(self, path: str) -> bool:
        return self.physical.exists(self.translate(path))

    def open(self, path: str, mode: str = "r") -> int:
        return self.physical.open(self.fdtable, self.translate(path), mode)

    def read(self, fd: int, size: int = -1) -> bytes:
        return self.physical.read(self.fdtable, fd, size)

    def write(self, fd: int, data: bytes) -> int:
        return self.physical.write(self.fdtable, fd, data)

    def close(self, fd: int) -> None:
        self.physical.close(self.fdtable, fd)
