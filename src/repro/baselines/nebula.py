"""The Nebula file system, compactly reimplemented (related work, §5).

Nebula (Bowman & Camargo) replaces the fixed directory hierarchy with
*views*: a view has a query (an arbitrary boolean expression over a file's
attribute tuples and content) and a **scope** — a set of other views whose
referents the query is evaluated over.  Views form a DAG; users customise
what a view shows by editing its *scope*, never its result.

The reproduction exists for the ablation tests contrasting Nebula with HAC
(§5's points, verbatim):

* "views are not a part of the underlying physical file system and cannot
  be used to organize data" — :meth:`create_file_in_view` raises;
* "Nebula does not allow users to group pointers to arbitrary files
  together and put them in a view: the files must satisfy the query" —
  :meth:`add_to_view` raises;
* what Nebula *does* allow: DAG-structured scopes, scope editing, and
  always-consistent view contents (recomputed from live data).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.errors import DependencyCycle, InvalidArgument
from repro.cba import agrep
from repro.cba.queryast import Node
from repro.cba.queryparser import parse_query
from repro.cba.transducers import default_transducer
from repro.util.stats import Counters
from repro.vfs.filesystem import FileSystem
from repro.vfs.walker import iter_files


class _View:
    __slots__ = ("name", "query", "query_text", "scope")

    def __init__(self, name: str, query: Node, query_text: str,
                 scope: Optional[List[str]]):
        self.name = name
        self.query = query
        self.query_text = query_text
        #: names of scope views; None means "all files"
        self.scope = scope


class NebulaFileSystem:
    """Views over a physical file system, organised in a DAG by scope."""

    def __init__(self, physical: FileSystem,
                 counters: Optional[Counters] = None):
        self.physical = physical
        self._stats = (counters or physical.counters).scoped("nebula")
        self._views: Dict[str, _View] = {}

    # ------------------------------------------------------------------
    # view maintenance
    # ------------------------------------------------------------------

    def create_view(self, name: str, query: str,
                    scope: Optional[Sequence[str]] = None) -> None:
        """Define a view; *scope* names other views (None = every file)."""
        if name in self._views:
            raise InvalidArgument(name, "view already exists")
        resolved_scope = self._validated_scope(name, scope)
        ast = parse_query(query)  # content + attribute terms, no paths
        self._views[name] = _View(name, ast, query, resolved_scope)
        self._stats.add("views")

    def set_scope(self, name: str, scope: Optional[Sequence[str]]) -> None:
        """Nebula's customisation lever: restructure the DAG, not the
        results."""
        view = self._require(name)
        view.scope = self._validated_scope(name, scope, replacing=True)

    def set_query(self, name: str, query: str) -> None:
        view = self._require(name)
        view.query = parse_query(query)
        view.query_text = query

    def drop_view(self, name: str) -> None:
        self._require(name)
        users = [v.name for v in self._views.values()
                 if v.scope and name in v.scope]
        if users:
            raise InvalidArgument(name, f"view is in the scope of {users}")
        del self._views[name]

    def views(self) -> List[str]:
        return sorted(self._views)

    def _require(self, name: str) -> _View:
        view = self._views.get(name)
        if view is None:
            raise InvalidArgument(name, "no such view")
        return view

    def _validated_scope(self, name: str, scope: Optional[Sequence[str]],
                         replacing: bool = False) -> Optional[List[str]]:
        if scope is None:
            return None
        out = []
        for ref in scope:
            if ref != name:
                self._require(ref)
            out.append(ref)
        # cycle check: walk the proposed DAG from name
        def reaches(current: str, target: str, seen: Set[str]) -> bool:
            if current == target:
                return True
            if current in seen:
                return False
            seen.add(current)
            view = self._views.get(current)
            refs = out if current == name else (view.scope or [])
            return any(reaches(r, target, seen) for r in refs)

        for ref in out:
            if ref == name or reaches(ref, name, set()):
                raise DependencyCycle(name, [name, ref, name])
        return out

    # ------------------------------------------------------------------
    # evaluation (always consistent: computed from live files)
    # ------------------------------------------------------------------

    def _all_files(self) -> List[str]:
        return [path for path, _n in iter_files(self.physical, "/")]

    def _referents(self, name: str, memo: Dict[str, Set[str]]) -> Set[str]:
        if name in memo:
            return memo[name]
        view = self._views[name]
        if view.scope is None:
            candidates: Set[str] = set(self._all_files())
        else:
            candidates = set()
            for ref in view.scope:
                candidates |= self._referents(ref, memo)
        result = set()
        for path in candidates:
            try:
                text = self.physical.read_file(path).decode(
                    "utf-8", errors="replace")
            except Exception:
                continue
            pairs = frozenset(default_transducer(path, text))
            if agrep.matches(text, view.query, pairs):
                result.add(path)
        memo[name] = result
        self._stats.add("evaluations")
        return result

    def view_contents(self, name: str) -> List[str]:
        """The files the view currently refers to (recomputed live)."""
        self._require(name)
        return sorted(self._referents(name, {}))

    # ------------------------------------------------------------------
    # the limitations HAC lifts (§5), as executable statements
    # ------------------------------------------------------------------

    def create_file_in_view(self, name: str, _filename: str):
        raise InvalidArgument(
            name, "views are not part of the physical file system; files "
                  "cannot be created in them (Nebula limitation)")

    def add_to_view(self, name: str, _path: str):
        raise InvalidArgument(
            name, "a view may only contain files satisfying its query; "
                  "arbitrary pointers cannot be grouped (Nebula limitation)")

    def remove_from_view(self, name: str, _path: str):
        raise InvalidArgument(
            name, "query results cannot be pruned without changing the "
                  "query or the scope (Nebula limitation)")
