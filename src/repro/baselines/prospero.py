"""The Prospero virtual file system, compactly reimplemented (§5).

Prospero (Neuman) gives each user a graph-structured *virtual file system*
whose links may carry **filters** — arbitrary programs that transform the
target directory's contents into a derived *view*.  Filters compose along
links.  The paper's verdict, reproduced here as behaviour:

* filters are maximally flexible ("powerful tools for information
  retrieval") — any callable works, and composition is supported;
* but "Prospero does not offer consistency guarantees of any kind — users
  must execute the appropriate filters at the appropriate time":
  :meth:`view` returns whatever the filter produced **when it was last
  run**; changing the underlying directory, the filter, or an upstream
  filter leaves the view stale until the user calls :meth:`run_filter`
  again.

The capability-matrix tests lean on exactly this staleness.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import InvalidArgument
from repro.util.stats import Counters
from repro.vfs.filesystem import FileSystem

#: a filter maps (target directory path, its entries) to derived entries
Filter = Callable[[str, List[str]], List[str]]


class _Link:
    __slots__ = ("name", "target_dir", "filters", "cached_view")

    def __init__(self, name: str, target_dir: str,
                 filters: List[Filter]):
        self.name = name
        self.target_dir = target_dir
        self.filters = filters
        #: the materialised view — ONLY updated by run_filter (no guarantees)
        self.cached_view: Optional[List[str]] = None


class ProsperoFileSystem:
    """A user's virtual name space of filtered links over a physical FS."""

    def __init__(self, physical: FileSystem,
                 counters: Optional[Counters] = None):
        self.physical = physical
        self._stats = (counters or physical.counters).scoped("prospero")
        self._links: Dict[str, _Link] = {}

    # ------------------------------------------------------------------
    # the virtual file system
    # ------------------------------------------------------------------

    def add_link(self, name: str, target_dir: str,
                 filters: Optional[Sequence[Filter]] = None) -> None:
        """Create a link in the virtual name space, optionally filtered."""
        if name in self._links:
            raise InvalidArgument(name, "link already exists")
        if not self.physical.isdir(target_dir):
            raise InvalidArgument(target_dir, "filter targets must be directories")
        self._links[name] = _Link(name, target_dir, list(filters or []))
        self._stats.add("links")

    def compose(self, name: str, extra: Filter) -> None:
        """Append a filter to a link — Prospero's filter composition."""
        self._require(name).filters.append(extra)

    def links(self) -> List[str]:
        return sorted(self._links)

    def _require(self, name: str) -> _Link:
        link = self._links.get(name)
        if link is None:
            raise InvalidArgument(name, "no such link")
        return link

    # ------------------------------------------------------------------
    # filters: run by the USER, never by the system
    # ------------------------------------------------------------------

    def run_filter(self, name: str) -> List[str]:
        """Execute the link's filter chain now; caches and returns the view."""
        link = self._require(name)
        entries = [f"{link.target_dir.rstrip('/')}/{n}"
                   for n in self.physical.listdir(link.target_dir)]
        for flt in link.filters:
            entries = list(flt(link.target_dir, entries))
        link.cached_view = entries
        self._stats.add("filter_runs")
        return list(entries)

    def view(self, name: str) -> List[str]:
        """The link's view **as of its last filter run**.

        Prospero's documented behaviour: if the target directory changed, or
        a filter was (re)composed, the view is silently stale until the user
        runs the filter again.  Asking for a never-run filtered view is an
        error the user must fix by running it.
        """
        link = self._require(name)
        if link.cached_view is None:
            if link.filters:
                raise InvalidArgument(
                    name, "filters must be executed by the user "
                          "(Prospero offers no consistency guarantees)")
            return self.run_filter(name)  # plain links just list the target
        return list(link.cached_view)


# -- stock filters for tests and demos ---------------------------------------


def grep_filter(word: str, physical: FileSystem) -> Filter:
    """Keep entries whose file content contains *word* (case-insensitive)."""

    def run(_target_dir: str, entries: List[str]) -> List[str]:
        out = []
        for path in entries:
            try:
                text = physical.read_file(path).decode("utf-8",
                                                       errors="replace")
            except Exception:
                continue
            if word.lower() in text.lower():
                out.append(path)
        return out

    return run


def suffix_filter(suffix: str) -> Filter:
    def run(_target_dir: str, entries: List[str]) -> List[str]:
        return [e for e in entries if e.endswith(suffix)]

    return run
