"""The MIT Semantic File System, compactly reimplemented (related work).

SFS (Gifford et al., 1991) introduced virtual directories: the name of a
virtual directory *is* a query, queries are conjunctions of attribute/value
pairs, and ``/`` between virtual components means AND.  *Transducers*
extract the attribute/value pairs from file contents.

The reproduction exists for the ablation benches and tests that demonstrate
precisely the limitations the paper lists (§5):

* virtual directories are not part of the physical file system — you cannot
  create files in them;
* results cannot be customised — there is no permanent/prohibited notion;
* queries are conjunctions of typed fields only.

Virtual path syntax, as in the SFS paper::

    /sfs/<attr>:/<value>/<attr>:/<value>/...

``lookup("/sfs/author:/smith/subject:/fingerprint")`` returns the files
whose transducer output contains both pairs.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import InvalidArgument
from repro.util.stats import Counters
from repro.vfs.filesystem import FileSystem
from repro.vfs.walker import iter_files

#: a transducer maps (path, text) to attribute/value pairs
Transducer = Callable[[str, str], List[Tuple[str, str]]]

_FIELD_RE = re.compile(r"^(\w+):\s*(.+)$")


def default_transducer(path: str, text: str) -> List[Tuple[str, str]]:
    """The SFS "mail-like" transducer: ``Field: value`` header lines become
    attribute/value pairs; every word of the body becomes a ``text`` pair;
    the file name becomes a ``name`` pair."""
    pairs: List[Tuple[str, str]] = [("name", path.rsplit("/", 1)[-1].lower())]
    in_headers = True
    for line in text.splitlines():
        if in_headers:
            m = _FIELD_RE.match(line.strip())
            if m:
                pairs.append((m.group(1).lower(), m.group(2).strip().lower()))
                continue
            in_headers = False
        for word in re.findall(r"[A-Za-z0-9_]+", line):
            pairs.append(("text", word.lower()))
    return pairs


class SemanticFileSystem:
    """Virtual directories over a physical :class:`FileSystem`."""

    def __init__(self, physical: FileSystem, virtual_root: str = "/sfs",
                 transducer: Transducer = default_transducer,
                 counters: Optional[Counters] = None):
        self.physical = physical
        self.virtual_root = virtual_root.rstrip("/") or "/sfs"
        self.transducer = transducer
        self._stats = (counters or physical.counters).scoped("sfs")
        #: (attr, value) → set of file paths
        self._index: Dict[Tuple[str, str], Set[str]] = {}
        self._indexed: Set[str] = set()

    # -- indexing -----------------------------------------------------------

    def index_all(self, top: str = "/") -> int:
        """Run the transducer over every file under *top*."""
        count = 0
        self._index.clear()
        self._indexed.clear()
        for path, node in iter_files(self.physical, top):
            text = bytes(node.data).decode("utf-8", errors="replace")
            for pair in self.transducer(path, text):
                self._index.setdefault(pair, set()).add(path)
            self._indexed.add(path)
            count += 1
        self._stats.add("indexed", count)
        return count

    # -- virtual directory lookups ----------------------------------------------

    def _parse_virtual(self, path: str) -> List[Tuple[str, Optional[str]]]:
        """``/sfs/a:/v/b:/w`` → ``[("a", "v"), ("b", "w")]``; a trailing
        attribute without a value means "enumerate its values"."""
        if not path.startswith(self.virtual_root):
            raise InvalidArgument(path, "not under the SFS virtual root")
        rest = [c for c in path[len(self.virtual_root):].split("/") if c]
        pairs: List[Tuple[str, Optional[str]]] = []
        i = 0
        while i < len(rest):
            comp = rest[i]
            if not comp.endswith(":"):
                raise InvalidArgument(path, f"expected attribute:, got {comp!r}")
            attr = comp[:-1].lower()
            value = rest[i + 1].lower() if i + 1 < len(rest) else None
            pairs.append((attr, value))
            i += 2
        return pairs

    def lookup(self, virtual_path: str) -> List[str]:
        """Files satisfying the conjunction named by *virtual_path*."""
        self._stats.add("lookups")
        pairs = self._parse_virtual(virtual_path)
        result: Optional[Set[str]] = None
        for attr, value in pairs:
            if value is None:
                raise InvalidArgument(virtual_path, f"attribute {attr} has no value")
            matching = self._index.get((attr, value), set())
            result = set(matching) if result is None else (result & matching)
            if not result:
                break
        return sorted(result or set())

    def listdir(self, virtual_path: str) -> List[str]:
        """Enumerate a virtual directory, as SFS's ``ls`` did: a trailing
        ``attr:`` component lists that attribute's possible values within
        the current conjunction; otherwise lists matching file names."""
        pairs = self._parse_virtual(virtual_path)
        if pairs and pairs[-1][1] is None:
            prefix = pairs[:-1]
            attr = pairs[-1][0]
            candidates: Optional[Set[str]] = None
            for a, v in prefix:
                matching = self._index.get((a, v), set())
                candidates = (set(matching) if candidates is None
                              else candidates & matching)
            values = set()
            for (a, v), paths in self._index.items():
                if a != attr:
                    continue
                if candidates is None or paths & candidates:
                    values.add(v)
            return sorted(values)
        return [p.rsplit("/", 1)[-1] for p in
                self.lookup(virtual_path)] if pairs else []

    # -- the limitations HAC lifts, made explicit ---------------------------------

    def create_in_virtual(self, virtual_path: str, _name: str):
        """SFS cannot do this; the error is the point (paper §5)."""
        raise InvalidArgument(
            virtual_path,
            "virtual directories are not part of the physical file system; "
            "files cannot be created in them (SFS limitation)")

    def remove_result(self, virtual_path: str, _name: str):
        """SFS cannot customise query results either."""
        raise InvalidArgument(
            virtual_path,
            "query results cannot be edited without changing the query or "
            "the files (SFS limitation)")
