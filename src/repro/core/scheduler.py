"""The write-side maintenance pipeline: coalescing batched index updates.

The paper keeps semantic directories fresh by periodic or on-demand
reindexing (§2.4), and our watch extension made that eager: every
mutation under a watched subtree immediately re-tokenises the file,
journals nothing, and runs the consistency cascade.  Under a write-heavy
workload — the paper's own "as soon as new mail comes in" example, at
mail volume — that is one tokenisation pass and one cascade per write,
most of them wasted on documents about to be rewritten again.

The :class:`MaintenanceScheduler` decouples the two halves.  Mutation
events (`note_upsert` / `note_remove` / `note_move`) enqueue *pending
documents*, coalescing per key with last-write-wins semantics: a file
rewritten forty times before the next drain costs one tokenisation, not
forty.  Drains happen on policy triggers —

* a **count threshold** (``max_pending`` distinct documents),
* an **op budget** (total events absorbed since the last drain),
* **backpressure** (the queue at hard ``capacity`` drains inline rather
  than ever dropping an update),
* an explicit ``ssync`` / shell ``sched drain``,
* and the **pre-query barrier**: every semantic-directory re-evaluation
  calls :meth:`barrier` first, so no search ever observes a torn batch.

A drain applies the whole batch under a single **group-commit journal
intent** (op ``sched_batch``) — one ``wal`` record set per batch instead
of per update — and runs one consistency cascade over the union of the
batch's origin directories.  A crash mid-batch rolls the records back to
the pre-batch state atomically (the crash sweep proves this); a soft
failure re-queues every entry, and the apply step is reconciliation
against the live tree, so retrying is idempotent.

**Equivalence by construction.**  ``eager`` mode (the default) is not a
separate code path: each event enqueues and immediately drains a batch
of one, through exactly the same apply/reconcile/cascade code batched
mode uses.  Doc ids are *reserved at enqueue time* and pinned at apply
time, so a coalesced batch assigns the same ids — hence the same
``doc_id % num_blocks`` block placement, hence bit-identical query
answers — as the eager sequence it replaced
(``tests/properties/test_scheduler_equivalence.py`` fuzzes this).  The
pipeline is back-end agnostic: it talks pure
:class:`~repro.cba.backend.SearchBackend`, and a drain against a
:class:`~repro.cluster.ShardedSearchCluster` routes per-shard sub-batches
via the doc-id registry's ``shard_of``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.links import Target

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hacfs import HacFileSystem

#: distinct pending documents that trigger a threshold drain
DEFAULT_MAX_PENDING = 32
#: absorbed events (coalesced included) that trigger a threshold drain
DEFAULT_OP_BUDGET = 256
#: hard queue bound: at capacity the enqueue itself drains (backpressure)
DEFAULT_CAPACITY = 1024

MODES = ("eager", "batched")


class PendingDoc:
    """One coalesced unit of index maintenance, keyed by ``(fsid, ino)``.

    The entry carries everything needed to replay the *net effect* of the
    event sequence it absorbed: the last event-time path and mtime
    (last-write-wins), whether the document is alive, whether an older
    incarnation must be removed first (*tombstoned* — the key was in the
    engine when a removal event arrived), a reserved doc id for documents
    the engine has not seen yet, and an optional untracked-rename fixup.
    """

    __slots__ = ("key", "doc_id", "alive", "tombstoned", "path", "mtime",
                 "renamed_to", "tenant")

    def __init__(self, key, doc_id: Optional[int], alive: bool,
                 tombstoned: bool, path: str, mtime: float):
        self.key = key
        self.doc_id = doc_id
        self.alive = alive
        self.tombstoned = tombstoned
        self.path = path
        self.mtime = mtime
        self.renamed_to: Optional[str] = None
        #: owning tenant's drain bucket (None = shared namespace)
        self.tenant: Optional[str] = None


class MaintenanceScheduler:
    """Coalesces watch-driven index maintenance into group-committed batches."""

    def __init__(self, hacfs: "HacFileSystem",
                 max_pending: int = DEFAULT_MAX_PENDING,
                 op_budget: int = DEFAULT_OP_BUDGET,
                 capacity: int = DEFAULT_CAPACITY):
        self.hacfs = hacfs
        self.mode = "eager"
        self.max_pending = max_pending
        self.op_budget = op_budget
        self.capacity = capacity
        self._pending: "OrderedDict[object, PendingDoc]" = OrderedDict()
        #: directory UIDs whose scope the batch's events touched — the
        #: drain runs ONE cascade over their union
        self._origins: set = set()
        #: ssync roots queued by ``request_sync`` (``ssync --async``)
        self._sync_roots: List[str] = []
        self._ops_absorbed = 0
        self._draining = False
        #: journal seq of the last drained batch's intent, carried onto
        #: the publish event that follows the commit
        self._last_intent_seq: Optional[int] = None
        #: path → tenant name hook (installed by the TenantManager); None
        #: until tenants exist, so the default pipeline never pays for it
        self._tenant_resolver = None
        #: tenant → fair-share weight in the round-robin drain order
        self._tenant_weights: Dict[str, int] = {}
        self._stats = hacfs.counters.scoped("sched")

    # ------------------------------------------------------------------
    # policy
    # ------------------------------------------------------------------

    def set_mode(self, mode: str) -> None:
        """Switch between ``eager`` and ``batched``; leaving batched mode
        drains whatever is pending so no update is ever stranded."""
        if mode not in MODES:
            raise ValueError(f"unknown scheduler mode: {mode!r}")
        old, self.mode = self.mode, mode
        if mode == "eager" and old != "eager":
            self.drain(reason="mode_change")

    @property
    def pending(self) -> int:
        return len(self._pending)

    # -- tenant attribution (fair-share drains) ------------------------

    def set_tenant_resolver(self, resolver) -> None:
        """Install the path → tenant-name hook (the TenantManager's)."""
        self._tenant_resolver = resolver

    def register_tenant(self, tenant: str, weight: int = 1) -> None:
        """Give *tenant* its own drain bucket with a round-robin weight."""
        self._tenant_weights[tenant] = max(1, int(weight))

    def _resolve_tenant(self, path: str) -> Optional[str]:
        if self._tenant_resolver is None or not path:
            return None
        try:
            return self._tenant_resolver(path)
        except Exception:
            return None

    def pending_by_tenant(self) -> Dict[str, int]:
        """Pending entries per tenant bucket (shared entries excluded)."""
        out: Dict[str, int] = {}
        for entry in self._pending.values():
            if entry.tenant is not None:
                out[entry.tenant] = out.get(entry.tenant, 0) + 1
        return out

    def status(self) -> Dict[str, object]:
        """Structured snapshot for the shell's ``sched`` command."""
        info = self.hacfs.engine.snapshot_info()
        return {
            "mode": self.mode,
            "pending": len(self._pending),
            "pending_syncs": len(self._sync_roots),
            "max_pending": self.max_pending,
            "op_budget": self.op_budget,
            "capacity": self.capacity,
            "events": self._stats.get("events"),
            "coalesced": self._stats.get("coalesced"),
            "drains": self._stats.get("drains"),
            "drained_docs": self._stats.get("drained_docs"),
            "backpressure": self._stats.get("backpressure"),
            "snapshot_version": info["version"],
            "publishes": self._stats.get("publishes"),
            "replica_lag": {str(r["id"]): info["version"] - r["version"]
                            for r in info["replicas"]},
            **({"tenants": self.pending_by_tenant()}
               if self._tenant_weights else {}),
        }

    # ------------------------------------------------------------------
    # mutation events (called by the WatchManager / HacFileSystem)
    # ------------------------------------------------------------------

    def note_upsert(self, key, path: str, mtime: float) -> None:
        """A covered file was written or created; its index entry is dirty."""
        self.hacfs.admission.admit_enqueue()
        self._stats.add("events")
        engine = self.hacfs.engine
        entry = self._pending.get(key)
        if entry is not None:
            self._stats.add("coalesced")
            if not entry.alive:
                # the eager sequence would have indexed a fresh document
                # here (the previous incarnation's id is burned either
                # way), so the revival reserves a fresh id too
                entry.doc_id = engine.reserve_doc_id()
                entry.alive = True
            entry.path = path
            entry.mtime = mtime
            entry.renamed_to = None
        else:
            doc_id = None if key in engine else engine.reserve_doc_id()
            entry = PendingDoc(key, doc_id, alive=True, tombstoned=False,
                               path=path, mtime=mtime)
            self._enqueue(entry)
        entry.tenant = self._resolve_tenant(path)
        self._note_origin(path)
        self._after_event()

    def note_remove(self, key, parent_dir: str) -> bool:
        """A covered file was unlinked; withdraw its index entry.

        Returns True when there was anything to withdraw (the key is
        indexed, or alive in the queue) — the watch layer's per-event
        accounting keys off this.
        """
        self._stats.add("events")
        engine = self.hacfs.engine
        entry = self._pending.get(key)
        had_doc = key in engine or (entry is not None and entry.alive)
        if entry is not None:
            self._stats.add("coalesced")
            entry.alive = False
            entry.renamed_to = None
            if key in engine:
                entry.tombstoned = True
        else:
            entry = PendingDoc(key, None, alive=False,
                               tombstoned=key in engine, path="", mtime=0.0)
            entry.tenant = self._resolve_tenant(parent_dir)
            self._enqueue(entry)
        self._note_origin_dir(parent_dir)
        self._after_event()
        return had_doc

    def note_move(self, key, new_path: str, mtime: float) -> None:
        """A covered file moved; refresh its path (and name-derived terms).

        Deliberately not admission-gated: a shed upsert merely leaves
        content stale until the next sync's mtime diff catches it, but a
        shed move would strand the old path in the index forever (an
        in-place move keeps the document mtime, so incremental reindex
        never notices).
        """
        self._stats.add("events")
        engine = self.hacfs.engine
        entry = self._pending.get(key)
        if entry is not None:
            self._stats.add("coalesced")
            if not entry.alive:
                entry.doc_id = engine.reserve_doc_id()
                entry.alive = True
                entry.mtime = mtime
            entry.path = new_path
            entry.renamed_to = None
        else:
            doc = engine.doc_by_key(key)
            if doc is not None:
                # an in-place move keeps the document's mtime (contents
                # unchanged), exactly as the eager path did
                entry = PendingDoc(key, None, alive=True, tombstoned=False,
                                   path=new_path, mtime=doc.mtime)
            else:
                entry = PendingDoc(key, engine.reserve_doc_id(), alive=True,
                                   tombstoned=False, path=new_path,
                                   mtime=mtime)
            self._enqueue(entry)
        entry.tenant = self._resolve_tenant(new_path)
        self._note_origin(new_path)
        self._after_event()

    def note_rename(self, key, new_path: str) -> None:
        """Path fixup for a document *not* under any watch (the lazy §2.4
        path: no re-tokenisation, the display path just drifts along)."""
        entry = self._pending.get(key)
        if entry is not None and entry.alive:
            entry.renamed_to = new_path
            return
        if key in self.hacfs.engine:
            self.hacfs.engine.rename_document(key, new_path)

    # ------------------------------------------------------------------
    # drains
    # ------------------------------------------------------------------

    def barrier(self, tenant: Optional[str] = None) -> int:
        """The pre-query drain: semantic re-evaluation, ``ssync``/
        ``reindex``, ``save_index``, ``fsck`` and engine adoption call
        this first so no consumer ever observes a torn batch.  A no-op
        mid-drain (the drain's own cascade lands here) and when nothing
        is pending.

        With *tenant*, only that tenant's bucket is drained — the
        fair-share read path: a tenant's strong query never pays to
        settle a *neighbour's* write storm, only its own."""
        if self._draining or not (self._pending or self._sync_roots):
            return 0
        if tenant is not None and not any(
                e.tenant == tenant for e in self._pending.values()):
            return 0
        self._stats.add("barrier_drains")
        return self.drain(reason="barrier", tenant=tenant)

    def request_sync(self, path: str = "/") -> bool:
        """Queue an ``ssync`` of *path* to run right after the next drain
        (the shell's ``ssync --async``).  Returns True when queued; in
        eager mode there is no drain to defer behind, so this returns
        False and the caller runs the sync synchronously itself."""
        if self.mode == "eager":
            return False
        self._stats.add("async_syncs")
        self._sync_roots.append(path)
        return True

    def drain(self, reason: str = "explicit",
              tenant: Optional[str] = None) -> int:
        """Apply every pending update as one group-committed batch.

        Entries are grouped into per-shard sub-batches (``shard_of`` from
        the doc-id registry; a monolithic back-end is one ``local``
        group), applied under a single ``sched_batch`` journal intent
        together with one consistency cascade over the batch's origin
        directories, then any queued async syncs run.  On failure every
        entry is re-queued — the apply step reconciles against the live
        tree, so retrying is idempotent and nothing is ever dropped.
        Returns the number of index operations applied.

        A full drain applies entries in **weighted round-robin order
        over the per-tenant buckets** (FIFO within a bucket, the shared
        bucket last) — order cannot change results, because doc ids are
        reserved at enqueue time and the cascade runs once over the
        union of origins, but it bounds how long any tenant's documents
        sit behind a neighbour's storm inside one batch.  With *tenant*,
        only that tenant's entries (and the origin directories inside
        its subtree) drain; everything else — including queued async
        syncs — stays for the next full drain.
        """
        if self._draining or not (self._pending or self._sync_roots):
            return 0
        self._draining = True
        try:
            if tenant is None:
                entries = self._fair_order(list(self._pending.values()))
                self._pending = OrderedDict()
                origins = sorted(self._origins)
                self._origins = set()
                sync_roots, self._sync_roots = self._sync_roots, []
                self._ops_absorbed = 0
            else:
                entries = [e for e in self._pending.values()
                           if e.tenant == tenant]
                for entry in entries:
                    del self._pending[entry.key]
                origins, kept = self._split_origins(tenant)
                self._origins = kept
                sync_roots = []
            self._last_intent_seq = None
            ops = 0
            span_tags = {"reason": reason, "docs": len(entries)}
            if tenant is not None:
                span_tags["tenant"] = tenant
            with self.hacfs.obs.trace.span("sched.drain",
                                           **span_tags) as span:
                try:
                    if entries or origins:
                        ops = self._apply_batch(entries, origins,
                                                tenant=tenant)
                except BaseException:
                    # re-queue everything (later events win over the
                    # requeued state, matching last-write-wins)
                    for entry in entries:
                        self._pending.setdefault(entry.key, entry)
                    self._origins.update(origins)
                    self._sync_roots = sync_roots + self._sync_roots
                    self._stats.add("requeues")
                    raise
                for root in sync_roots:
                    self.hacfs.ssync(root)
                version = self._publish(self._last_intent_seq)
                span.set(ops=ops, syncs=len(sync_roots), version=version)
            self._stats.add("drains")
            self._stats.add("drained_docs", len(entries))
            self.hacfs.obs.metrics.observe("sched.batch_docs", len(entries))
            self.hacfs.obs.metrics.observe("sched.batch_ops", ops)
            return ops
        finally:
            self._draining = False

    def publish(self) -> int:
        """Force a snapshot publish of the engine's *current* state — no
        drain, no barrier (the shell's ``sched publish``).  Pending batched
        work stays pending; what the engine has already applied becomes
        visible to snapshot readers immediately."""
        self._stats.add("forced_publishes")
        return self._publish(None)

    def _publish(self, seq: Optional[int]) -> int:
        """Publish and journal the ``sched_publish`` event under *seq* —
        the committed batch intent that produced this version (None when
        no intent did: forced publishes, empty drains)."""
        version = self.hacfs.engine.publish()
        self._stats.add("publishes")
        self.hacfs.journal.note_publish(version, seq)
        return version

    def _fair_order(self, entries: List[PendingDoc]) -> List[PendingDoc]:
        """Weighted round-robin interleave of the per-tenant buckets.

        Bit-identity is free here: doc ids are pinned at enqueue and keys
        are unique after coalescing, so apply order cannot change what any
        query answers — only who waits behind whom inside the batch.  One
        bucket (the common case, and every pre-tenant workload) returns
        the entries untouched, byte-for-byte the old arrival order.
        """
        buckets: "OrderedDict[Optional[str], List[PendingDoc]]" = OrderedDict()
        for entry in entries:
            buckets.setdefault(entry.tenant, []).append(entry)
        if len(buckets) <= 1:
            return entries
        names = sorted(n for n in buckets if n is not None)
        if None in buckets:
            names.append(None)
        out: List[PendingDoc] = []
        index = {name: 0 for name in names}
        remaining = len(entries)
        while remaining:
            for name in names:
                queue = buckets[name]
                start = index[name]
                if start >= len(queue):
                    continue
                weight = self._tenant_weights.get(name, 1) \
                    if name is not None else 1
                stop = min(start + weight, len(queue))
                out.extend(queue[start:stop])
                index[name] = stop
                remaining -= stop - start
        return out

    def _split_origins(self, tenant: str):
        """Partition queued origin UIDs into (drained, kept): a tenant
        drain cascades only over directories inside the tenant subtree."""
        resolver = self._tenant_resolver
        drained: List[int] = []
        kept: set = set()
        for uid in self._origins:
            path = self.hacfs.dirmap.path_of(uid)
            owner = None
            if path is not None and resolver is not None:
                try:
                    owner = resolver(path)
                except Exception:
                    owner = None
            if owner == tenant:
                drained.append(uid)
            else:
                kept.add(uid)
        return sorted(drained), kept

    def _apply_batch(self, entries: List[PendingDoc],
                     origins: List[int],
                     tenant: Optional[str] = None) -> int:
        engine = self.hacfs.engine
        groups: "OrderedDict[Optional[str], List[PendingDoc]]" = OrderedDict()
        for entry in entries:
            groups.setdefault(engine.shard_of(entry.key), []).append(entry)
        ops = 0
        payload = {"docs": len(entries), "origins": len(origins)}
        if tenant is not None:
            payload["tenant"] = tenant
        with self.hacfs._journaled("sched_batch", payload) as intent:
            self._last_intent_seq = intent.seq if intent is not None else None
            for sid, group in groups.items():
                with self.hacfs.obs.trace.span("sched.apply",
                                               shard=sid or "local",
                                               docs=len(group)):
                    for entry in group:
                        ops += self._apply_one(entry)
            if origins:
                self.hacfs.consistency.on_scope_changed(
                    origins, include_origins=True)
            # segmented storage rides the same intent: a memtable past its
            # seal threshold is frozen and the segment list synced to disk
            # under this batch's pre-image capture (no-op otherwise)
            self.hacfs._persist_segments()
        return ops

    def _apply_one(self, entry: PendingDoc) -> int:
        """Reconcile one pending document against the live tree.

        Pure reconciliation — every branch re-derives what must happen
        from current engine and tree state, so replaying an entry after a
        partially applied (re-queued) batch converges instead of raising.
        """
        engine = self.hacfs.engine
        ops = 0
        in_engine = entry.key in engine
        if entry.tombstoned and in_engine:
            # an older incarnation must go first so the revival below gets
            # its reserved fresh id, exactly as eager remove-then-index did
            engine.remove_document(entry.key)
            in_engine = False
            ops += 1
        if not entry.alive:
            if in_engine:
                engine.remove_document(entry.key)
                ops += 1
            return ops
        if self.hacfs.path_for_target(Target.local(*entry.key)) is None:
            # vanished without a removal event (unmount, coverage change):
            # never index a dead file, withdraw any lingering entry
            if in_engine:
                engine.remove_document(entry.key)
                ops += 1
            return ops
        if in_engine:
            engine.update_document(entry.key, entry.path, entry.mtime)
        else:
            engine.index_document(entry.key, entry.path, entry.mtime,
                                  doc_id=entry.doc_id)
        ops += 1
        if entry.renamed_to is not None:
            engine.rename_document(entry.key, entry.renamed_to)
        return ops

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _enqueue(self, entry: PendingDoc) -> None:
        if self._draining:
            # an event arrived mid-drain (nothing on the normal paths does
            # this — the cascade materialises links straight through the
            # VFS — but a hook or future caller might): apply inline under
            # the already-open batch intent rather than mutate the queue
            # being drained.  Never dropped.
            self._stats.add("inline_applies")
            self._apply_one(entry)
            return
        self._pending[entry.key] = entry

    def _note_origin(self, path: str) -> None:
        from repro.util import pathutil

        self._note_origin_dir(pathutil.dirname(pathutil.normalize(path)))

    def _note_origin_dir(self, dirpath: str) -> None:
        try:
            self._origins.update(self.hacfs._chain_uids(dirpath))
        except Exception:
            self._origins.add(0)

    def _after_event(self) -> None:
        if self._draining:
            return
        self._ops_absorbed += 1
        if self.mode == "eager":
            self.drain(reason="eager")
        elif len(self._pending) >= self.capacity:
            self._stats.add("backpressure")
            self.drain(reason="backpressure")
        elif len(self._pending) >= self.max_pending \
                or self._ops_absorbed >= self.op_budget:
            self.drain(reason="threshold")
