"""The HAC core — the paper's primary contribution.

HAC ("Hierarchy And Content") extends a hierarchical file system with
content-based access while keeping every hierarchical feature intact.  The
pieces, mapped to the paper's sections:

* :mod:`repro.core.links` — the three-way classification of symbolic links
  in a semantic directory: *permanent* (user-created), *transient*
  (query-produced), *prohibited* (user-deleted tombstones) — §2.3;
* :mod:`repro.core.semdir` — per-directory HAC state and its write-through
  persistence (the MetaStore), which is exactly the extra disk I/O the paper
  charges to the Andrew benchmark's Makedir phase — §4;
* :mod:`repro.core.depgraph` — the dependency DAG over directories
  (hierarchical edges plus query references), with cycle rejection and
  topological re-evaluation order — §2.5;
* :mod:`repro.core.scope` — what scope each directory *provides* — §2.3;
* :mod:`repro.core.consistency` — the scope-consistency algorithm — §2.3;
* :mod:`repro.core.datacon` — lazy data consistency: periodic or on-demand
  reindexing that settles everything at once — §2.4;
* :mod:`repro.core.hacfs` — :class:`HacFileSystem`, the user-level
  interposition layer that ties it all together — §4.
"""

from repro.core.hacfs import HacFileSystem
from repro.core.links import LinkSets, Target

__all__ = ["HacFileSystem", "LinkSets", "Target"]
