"""Eager data consistency: watched subtrees (extension of §2.4).

The paper's data-consistency policy is deliberately lazy, but it names the
exception: "users can decide to update certain semantic directories as soon
as new mail comes in".  And its future-work list includes "more
sophisticated mechanisms to enforce data consistency".  This module is that
mechanism: a *watch* covers a subtree; any content mutation under a watched
subtree (write, create, delete, move) immediately reindexes the touched
file and runs the scope-consistency cascade, so query results update
synchronously instead of at the next ``ssync``.

The cost model is the interesting part — watches trade write latency for
freshness, quantified by ``benchmarks/bench_ablation_watch.py``.
"""

from __future__ import annotations

from typing import List, Optional, Set, TYPE_CHECKING

from repro.util import pathutil
from repro.vfs.inode import FileNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hacfs import HacFileSystem


class WatchManager:
    """Registered subtrees whose files stay index-fresh on every mutation."""

    def __init__(self, hacfs: "HacFileSystem"):
        self.hacfs = hacfs
        self._roots: Set[str] = set()
        self._stats = hacfs.counters.scoped("watch")

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def add(self, path: str) -> str:
        """Watch the subtree at *path*; returns the normalised root.

        Adding a watch first syncs the subtree, so the eager guarantee
        ("results reflect every write") holds from this moment on.
        """
        root = self.hacfs._canonical_dir(path)
        self._roots.add(root)
        self.hacfs.ssync(root)
        self._stats.add("added")
        return root

    def remove(self, path: str) -> bool:
        root = pathutil.normalize(path)
        if root in self._roots:
            self._roots.discard(root)
            self._stats.add("removed")
            return True
        return False

    def roots(self) -> List[str]:
        return sorted(self._roots)

    def covers(self, path: str) -> bool:
        if not self._roots:
            return False
        norm = pathutil.normalize(path)
        return any(pathutil.is_ancestor(root, norm, strict=False)
                   for root in self._roots)

    # ------------------------------------------------------------------
    # event handling (called by HacFileSystem after mutations)
    # ------------------------------------------------------------------

    def on_content_changed(self, path: str) -> bool:
        """A file under *path* was written or created; reindex it now."""
        if not self.covers(path):
            return False
        try:
            res = self.hacfs.fs.resolve(path, follow=False)
        except Exception:
            return False
        node = res.node
        if not isinstance(node, FileNode):
            return False
        key = (res.fs.fsid, node.ino)
        if key in self.hacfs.engine:
            self.hacfs.engine.update_document(key, path, node.attrs.mtime)
        else:
            self.hacfs.engine.index_document(key, path, node.attrs.mtime)
        self._stats.add("reindexed")
        self._cascade(path)
        return True

    def on_file_removed(self, key, parent_dir: str) -> bool:
        """A file under a watched subtree was unlinked; withdraw it now."""
        if not self.covers(parent_dir):
            return False
        if key in self.hacfs.engine:
            self.hacfs.engine.remove_document(key)
            self._stats.add("removed_docs")
        self._cascade(parent_dir)
        return True

    def on_file_moved(self, key, new_path: str) -> bool:
        """A file moved; refresh its indexed path (and name-derived terms)."""
        if not (self.covers(new_path) or key in self.hacfs.engine):
            return False
        if not self.covers(new_path):
            return False
        if key in self.hacfs.engine:
            doc = self.hacfs.engine.doc_by_key(key)
            self.hacfs.engine.update_document(key, new_path, doc.mtime)
        else:
            try:
                res = self.hacfs.fs.resolve(new_path, follow=False)
                self.hacfs.engine.index_document(
                    key, new_path, res.node.attrs.mtime)
            except Exception:
                return False
        self._stats.add("moved_docs")
        self._cascade(new_path)
        return True

    def _cascade(self, path: str) -> None:
        parent = pathutil.dirname(pathutil.normalize(path))
        try:
            origins = self.hacfs._chain_uids(parent)
        except Exception:
            origins = [0]
        self.hacfs.consistency.on_scope_changed(origins, include_origins=True)
