"""Eager data consistency: watched subtrees (extension of §2.4).

The paper's data-consistency policy is deliberately lazy, but it names the
exception: "users can decide to update certain semantic directories as soon
as new mail comes in".  And its future-work list includes "more
sophisticated mechanisms to enforce data consistency".  This module is that
mechanism: a *watch* covers a subtree; any content mutation under a watched
subtree (write, create, delete, move) immediately reindexes the touched
file and runs the scope-consistency cascade, so query results update
synchronously instead of at the next ``ssync``.

The cost model is the interesting part — watches trade write latency for
freshness, quantified by ``benchmarks/bench_ablation_watch.py``.
"""

from __future__ import annotations

from typing import List, Optional, Set, TYPE_CHECKING

from repro.util import pathutil
from repro.vfs.inode import FileNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hacfs import HacFileSystem


class WatchManager:
    """Registered subtrees whose files stay index-fresh on every mutation."""

    def __init__(self, hacfs: "HacFileSystem"):
        self.hacfs = hacfs
        self._roots: Set[str] = set()
        self._stats = hacfs.counters.scoped("watch")

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def add(self, path: str) -> str:
        """Watch the subtree at *path*; returns the normalised root.

        Adding a watch first syncs the subtree, so the eager guarantee
        ("results reflect every write") holds from this moment on.
        """
        root = self.hacfs._canonical_dir(path)
        self._roots.add(root)
        self.hacfs.ssync(root)
        self._stats.add("added")
        return root

    def remove(self, path: str) -> bool:
        root = pathutil.normalize(path)
        if root in self._roots:
            self._roots.discard(root)
            self._stats.add("removed")
            return True
        return False

    def roots(self) -> List[str]:
        return sorted(self._roots)

    def covers(self, path: str) -> bool:
        if not self._roots:
            return False
        norm = pathutil.normalize(path)
        return any(pathutil.is_ancestor(root, norm, strict=False)
                   for root in self._roots)

    # ------------------------------------------------------------------
    # event handling (called by HacFileSystem after mutations)
    # ------------------------------------------------------------------

    def on_content_changed(self, path: str) -> bool:
        """A file under *path* was written or created; mark it dirty.

        The maintenance scheduler owns the actual index work: in eager
        mode (the default) the enqueue drains immediately — index update
        plus cascade, the original watch semantics — while batched mode
        coalesces it for the next drain.
        """
        if not self.covers(path):
            return False
        try:
            res = self.hacfs.fs.resolve(path, follow=False)
        except Exception:
            return False
        node = res.node
        if not isinstance(node, FileNode):
            return False
        key = (res.fs.fsid, node.ino)
        self.hacfs.maintenance.note_upsert(key, path, node.attrs.mtime)
        self._stats.add("reindexed")
        return True

    def on_file_removed(self, key, parent_dir: str) -> bool:
        """A file under a watched subtree was unlinked; withdraw it."""
        if not self.covers(parent_dir):
            return False
        if self.hacfs.maintenance.note_remove(key, parent_dir):
            self._stats.add("removed_docs")
        return True

    def on_file_moved(self, key, new_path: str) -> bool:
        """A file moved; refresh its indexed path (and name-derived terms)."""
        if not self.covers(new_path):
            return False
        mtime = 0.0
        if self.hacfs.engine.doc_by_key(key) is None \
                and key not in self.hacfs.maintenance._pending:
            try:
                res = self.hacfs.fs.resolve(new_path, follow=False)
                mtime = res.node.attrs.mtime
            except Exception:
                return False
        self.hacfs.maintenance.note_move(key, new_path, mtime)
        self._stats.add("moved_docs")
        return True
