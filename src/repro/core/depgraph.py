"""The dependency DAG over directories (paper §2.5).

``new`` *depends on* ``old`` when ``old``'s scope feeds ``new``'s query
result.  Two edge kinds exist:

* **hierarchical** — every directory depends on its parent (under the
  covers, the child's effective query is ``<query> AND <parent>``);
* **reference** — a query that names another directory's path depends on
  that directory, wherever it sits in the tree.

Dependencies are transitive; cycles are rejected at the moment a query
would create one ("we do not allow cycles to exist in this graph for
obvious reasons").  When a directory's provided scope changes, every
directory reachable along dependency edges must be re-evaluated — in
topological order, so each is evaluated exactly once with its inputs
already settled.  The root (UID 0) depends on nothing and precedes
everything, exactly as the paper requires.

Nodes are directory UIDs from the global map, so renames never disturb the
graph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import DependencyCycle
from repro.obs.trace import NULL_TRACER

ROOT_UID = 0

HIERARCHY = "hierarchy"
REFERENCE = "reference"


class DependencyGraph:
    """Directed graph: provider → dependent, with labelled edge kinds."""

    def __init__(self):
        #: dependent uid → {provider uid: edge kind}
        self._providers: Dict[int, Dict[int, str]] = {ROOT_UID: {}}
        #: provider uid → set of dependent uids
        self._dependents: Dict[int, Set[int]] = {ROOT_UID: set()}
        #: observability hook (re-wired by HacFileSystem after every
        #: (re)construction, since the graph is rebuilt on reload/restore)
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    # node / edge maintenance
    # ------------------------------------------------------------------

    def add_node(self, uid: int) -> None:
        if uid in self._providers:
            raise ValueError(f"node {uid} already in dependency graph")
        self._providers[uid] = {}
        self._dependents[uid] = set()

    def remove_node(self, uid: int) -> None:
        """Drop a directory: its edges go with it; queries that referenced it
        now have a dangling reference (resolved as empty by the evaluator)."""
        if uid == ROOT_UID:
            raise ValueError("cannot remove the root")
        for provider in list(self._providers.pop(uid, {})):
            self._dependents[provider].discard(uid)
        for dependent in list(self._dependents.pop(uid, set())):
            self._providers[dependent].pop(uid, None)

    def __contains__(self, uid: int) -> bool:
        return uid in self._providers

    def nodes(self) -> List[int]:
        return list(self._providers)

    def set_hierarchy_edge(self, child: int, parent: int) -> None:
        """(Re)attach *child* under *parent*; replaces any previous one."""
        old_parent = None
        for provider, kind in self._providers[child].items():
            if kind == HIERARCHY:
                old_parent = provider
                break
        if old_parent is not None:
            # a reference edge to the same provider survives independently
            del self._providers[child][old_parent]
            self._dependents[old_parent].discard(child)
        if parent == child:
            raise DependencyCycle(str(child), [child, child])
        self._check_no_path(child, parent, adding=HIERARCHY)
        self._providers[child][parent] = HIERARCHY
        self._dependents[parent].add(child)

    def set_reference_edges(self, dependent: int, providers: Iterable[int]) -> None:
        """Replace *dependent*'s reference edges with the given provider set
        (called whenever its query changes)."""
        wanted = set(providers)
        wanted.discard(ROOT_UID)  # everything depends on root implicitly
        current = {p for p, kind in self._providers[dependent].items()
                   if kind == REFERENCE}
        for provider in wanted - current:
            if provider == dependent:
                raise DependencyCycle(str(dependent), [dependent, dependent])
            if provider not in self._providers:
                continue  # dangling reference: tolerated, resolves empty
            self._check_no_path(dependent, provider, adding=REFERENCE)
        for provider in current - wanted:
            del self._providers[dependent][provider]
            self._dependents[provider].discard(dependent)
        for provider in wanted - current:
            if provider not in self._providers:
                continue
            self._providers[dependent][provider] = REFERENCE
            self._dependents[provider].add(dependent)

    def _check_no_path(self, src: int, dst: int, adding: str) -> None:
        """Adding dst→src requires no existing path src→dst (else a cycle)."""
        if src == dst:
            raise DependencyCycle(str(src), [src, src])
        seen = {src}
        frontier = deque([src])
        while frontier:
            cur = frontier.popleft()
            for dependent in self._dependents.get(cur, ()):
                if dependent == dst:
                    raise DependencyCycle(
                        str(dst), self._find_path(src, dst) + [src])
                if dependent not in seen:
                    seen.add(dependent)
                    frontier.append(dependent)

    def _find_path(self, src: int, dst: int) -> List[int]:
        """A dependency path src ⇝ dst, for cycle diagnostics."""
        parent: Dict[int, int] = {}
        frontier = deque([src])
        while frontier:
            cur = frontier.popleft()
            for dependent in self._dependents.get(cur, ()):
                if dependent not in parent:
                    parent[dependent] = cur
                    if dependent == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(parent[path[-1]])
                        return list(reversed(path))
                    frontier.append(dependent)
        return [src, dst]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def providers_of(self, uid: int) -> Dict[int, str]:
        return dict(self._providers.get(uid, {}))

    def dependents_of(self, uid: int) -> Set[int]:
        return set(self._dependents.get(uid, set()))

    def hierarchy_parent(self, uid: int) -> Optional[int]:
        for provider, kind in self._providers.get(uid, {}).items():
            if kind == HIERARCHY:
                return provider
        return None

    # ------------------------------------------------------------------
    # evaluation order
    # ------------------------------------------------------------------

    def affected_order(self, start: int, include_start: bool = False) -> List[int]:
        """Every transitive dependent of *start*, in topological order.

        The order is computed by Kahn's algorithm restricted to the affected
        subgraph, so each affected directory appears after all of its
        affected providers — the paper's requirement for correct
        re-evaluation.
        """
        affected: Set[int] = set()
        frontier = deque([start])
        while frontier:
            cur = frontier.popleft()
            for dependent in self._dependents.get(cur, ()):
                if dependent not in affected:
                    affected.add(dependent)
                    frontier.append(dependent)
        if include_start:
            affected.add(start)
        if self.tracer.enabled:
            self.tracer.event("dep.affected", start=start,
                              affected=len(affected))
        return self._topo_sort(affected)

    def full_order(self) -> List[int]:
        """Topological order of the whole graph (global re-evaluation)."""
        if self.tracer.enabled:
            self.tracer.event("dep.full_order", nodes=len(self._providers))
        return self._topo_sort(set(self._providers))

    def topo_order(self, nodes: Iterable[int]) -> List[int]:
        """Topological order restricted to *nodes* (unknown uids ignored)."""
        return self._topo_sort({n for n in nodes if n in self._providers})

    def _topo_sort(self, nodes: Set[int]) -> List[int]:
        indeg = {n: 0 for n in nodes}
        for n in nodes:
            for provider in self._providers.get(n, {}):
                if provider in nodes:
                    indeg[n] += 1
        ready = deque(sorted(n for n, d in indeg.items() if d == 0))
        order: List[int] = []
        while ready:
            cur = ready.popleft()
            order.append(cur)
            for dependent in sorted(self._dependents.get(cur, ())):
                if dependent in indeg and dependent in nodes:
                    indeg[dependent] -= 1
                    if indeg[dependent] == 0:
                        ready.append(dependent)
        if len(order) != len(nodes):
            leftovers = sorted(nodes - set(order))
            raise DependencyCycle(str(leftovers[0]), leftovers)
        return order

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_obj(self):
        return {
            str(dep): {str(p): kind for p, kind in providers.items()}
            for dep, providers in self._providers.items()
        }

    @classmethod
    def from_obj(cls, obj) -> "DependencyGraph":
        graph = cls()
        for dep_s, providers in obj.items():
            dep = int(dep_s)
            if dep not in graph._providers:
                graph._providers[dep] = {}
                graph._dependents.setdefault(dep, set())
        for dep_s, providers in obj.items():
            dep = int(dep_s)
            for p_s, kind in providers.items():
                provider = int(p_s)
                graph._providers.setdefault(provider, {})
                graph._dependents.setdefault(provider, set())
                graph._providers[dep][provider] = kind
                graph._dependents[provider].add(dep)
        return graph
