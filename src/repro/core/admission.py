"""Admission control — degradation as a serving policy, not just a flag.

PRs 2–6 taught HAC to *report* trouble: breakers open, shards go down,
directories carry stale flags.  But a reporting-only system keeps
accepting work it cannot finish — strong reads convoy behind a barrier
that hammers a dead back-end, and the maintenance queue grows without
bound while drains fail and requeue.  The
:class:`AdmissionController` turns the same health signals into policy
at the two points where load enters the system:

* **reads** (``HacShell.glimpse``) — when any back-end is degraded, a
  ``strong`` read is *downgraded* to ``snapshot``: the published-replica
  path is entirely in-process, so it keeps serving complete as-of-publish
  answers while the live scatter-gather would return partial results
  (``admission.downgraded_reads`` counts these);
* **writes** (``HacFileSystem.write_file``/``create`` before any bytes
  land, and the scheduler's enqueue for direct callers) — when back-ends
  are degraded *and* the pending maintenance queue has reached
  ``max_queue_depth``, the write is *shed* with
  :class:`~repro.errors.AdmissionRejected` (``admission.shed_writes``
  counts these) instead of deepening a queue that cannot drain usefully.

The gate is **disabled by default** — enabling it is an explicit serving
policy decision (``hac.admission.enable()``, or ``admit on`` in the
shell), so nothing changes for existing workloads.  All decisions read
only deterministic state (breaker states, shard health, queue depth), so
shed/downgrade counts are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.errors import AdmissionRejected

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hacfs import HacFileSystem

#: pending maintenance entries at which a degraded system starts shedding
DEFAULT_MAX_QUEUE_DEPTH = 64

#: back-end health values that count as degraded: a tripped (or probing)
#: breaker, or a shard marked down outright
_DEGRADED_STATES = ("open", "half_open", "down")


class AdmissionController:
    """Sheds or downgrades load when health signals say the system is
    degraded; a no-op until :meth:`enable` is called."""

    def __init__(self, hacfs: "HacFileSystem",
                 max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
                 downgrade_reads: bool = True,
                 shed_writes: bool = True):
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        self.hacfs = hacfs
        self.enabled = False
        self.max_queue_depth = max_queue_depth
        self.downgrade_reads = downgrade_reads
        self.shed_writes = shed_writes
        self._stats = hacfs.counters.scoped("admission")

    # ------------------------------------------------------------------
    # policy switches
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------
    # health evaluation (reads only deterministic state)
    # ------------------------------------------------------------------

    def degraded_backends(self) -> List[str]:
        """Names of back-ends currently degraded: mounted name spaces with
        tripped breakers, and shards down or breaker-open."""
        out = [ns_id
               for ns_id, state in sorted(self.hacfs.semmounts.health().items())
               if state in _DEGRADED_STATES]
        out.extend(f"shard.{sid}"
                   for sid, state in sorted(self.hacfs.engine.health().items())
                   if state in _DEGRADED_STATES)
        return out

    def state(self) -> str:
        """``healthy`` | ``degraded`` | ``overloaded`` (degraded with the
        maintenance queue at or past ``max_queue_depth``)."""
        if not self.degraded_backends():
            return "healthy"
        if self.hacfs.maintenance.pending >= self.max_queue_depth:
            return "overloaded"
        return "degraded"

    # ------------------------------------------------------------------
    # the gates
    # ------------------------------------------------------------------

    def admit_read(self, consistency: str) -> str:
        """Admission decision for one query; returns the consistency level
        the read should actually run at."""
        if not self.enabled:
            return consistency
        self._stats.add("reads")
        if consistency != "strong" or not self.downgrade_reads:
            return consistency
        if not self.degraded_backends():
            return consistency
        self._stats.add("downgraded_reads")
        if self.hacfs.obs.trace.enabled:
            self.hacfs.obs.trace.event("admission.downgrade",
                                       to="snapshot")
        return "snapshot"

    def admit_write(self, path: str = "") -> None:
        """Admission decision for one mutation — called *before* any state
        is touched.  Raises :class:`~repro.errors.AdmissionRejected` when
        shedding; otherwise a no-op."""
        if not self.enabled:
            return
        self._stats.add("writes")
        if not self.shed_writes:
            return
        degraded = self.degraded_backends()
        pending = self.hacfs.maintenance.pending
        if not degraded or pending < self.max_queue_depth:
            return
        self._stats.add("shed_writes")
        if self.hacfs.obs.trace.enabled:
            self.hacfs.obs.trace.event("admission.shed", path=path,
                                       pending=pending)
        raise AdmissionRejected(
            ",".join(degraded),
            f"load shed at queue depth {pending} >= {self.max_queue_depth}"
            + (f" ({path})" if path else ""))

    def admit_enqueue(self) -> None:
        """Gate for direct upsert enqueues (watch events that did not
        pass through a gated file operation, e.g. ``truncate``).  Within
        a gated ``write_file``/``create`` the check re-runs against the
        same deterministic state and passes again, so a write never
        sheds *after* its bytes landed.

        Only upserts are gated: a shed upsert leaves the index stale
        until the next sync's mtime diff repairs it (info-severity at
        fsck).  Shedding a removal would leave a ghost document
        answering queries, and shedding a move would strand the old path
        forever (moves keep the document mtime, invisible to incremental
        reindex) — those events are always accepted.
        """
        if not self.enabled or not self.shed_writes:
            return
        degraded = self.degraded_backends()
        pending = self.hacfs.maintenance.pending
        if not degraded or pending < self.max_queue_depth:
            return
        self._stats.add("shed_writes")
        if self.hacfs.obs.trace.enabled:
            self.hacfs.obs.trace.event("admission.shed", path="<enqueue>",
                                       pending=pending)
        raise AdmissionRejected(
            ",".join(degraded),
            f"enqueue shed at queue depth {pending} >= {self.max_queue_depth}")

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """Structured snapshot for ``hac.health()['admission']`` and the
        shell's ``admit status``."""
        return {
            "enabled": self.enabled,
            "state": self.state(),
            "max_queue_depth": self.max_queue_depth,
            "pending": self.hacfs.maintenance.pending,
            "degraded_backends": self.degraded_backends(),
            "reads": self._stats.get("reads"),
            "writes": self._stats.get("writes"),
            "downgraded_reads": self._stats.get("downgraded_reads"),
            "shed_writes": self._stats.get("shed_writes"),
        }
