"""Crash recovery — replay/rollback of incomplete journal intents.

Recovery has two layers, matching what the journal protects:

* **Records** (:func:`recover_records`) — device-only, runs before any HAC
  structure is rebuilt: every pending intent's pre-images are restored in
  reverse capture order, then the write-ahead log is cleared.  After this
  pass the record store holds exactly the persisted state from before each
  incomplete operation.
* **Tree** (:func:`undo_tree`) — the VFS tree (directories, files, symlinks)
  is not record-backed, so a crashed operation can leave tree-side effects
  the record rollback cannot see: the directory an ``smkdir`` created, the
  ``rename`` it performed, symlinks a re-evaluation materialised.  Using the
  intent's operation name and arguments plus the set of directories whose
  records it touched, this pass puts the tree back in agreement with the
  (already rolled-back) records: stray directories are scrubbed, renames
  reversed, and every touched directory's symlink entries reconciled with
  its tracked link sets.

The same two layers run in-process (:func:`rollback_in_process`) when a
journaled operation fails softly — a transient ``ENOSPC`` mid-``smkdir``
must leave the file system exactly as it was, not merely recoverable after
a restart.

Semantics worth stating (also in DESIGN.md §3c): recovery *rolls back*
incomplete intents rather than rolling them forward, so every crash point
lands on "operation fully absent" (a crash after commit is "fully
present").  Untracked symlinks inside a *semantic* directory whose record
the crashed intent touched are removed — HAC owns semantic directory
entries, and a name the restored link sets do not know is crash debris.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.util import pathutil
from repro.core.journal import Journal, PendingIntent, WAL_PREFIX

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hacfs import HacFileSystem
    from repro.core.links import Target


class RecoveryReport:
    """What a recovery pass found and did (attached as
    ``HacFileSystem.last_recovery``)."""

    __slots__ = ("rolled_back", "records_restored", "tree_fixes",
                 "links_reconciled", "strays_removed", "wal_records_cleared")

    def __init__(self):
        #: [(seq, op)] of intents rolled back, oldest first
        self.rolled_back: List[tuple] = []
        self.records_restored = 0
        self.tree_fixes = 0
        self.links_reconciled = 0
        self.strays_removed = 0
        self.wal_records_cleared = 0

    @property
    def clean(self) -> bool:
        return not self.rolled_back and not self.wal_records_cleared

    def __repr__(self):
        return (f"RecoveryReport(rolled_back={self.rolled_back}, "
                f"records_restored={self.records_restored}, "
                f"tree_fixes={self.tree_fixes}, "
                f"links_reconciled={self.links_reconciled}, "
                f"strays_removed={self.strays_removed})")


# ----------------------------------------------------------------------
# record-level recovery (device only; runs before structures are rebuilt)
# ----------------------------------------------------------------------

def recover_records(journal: Journal,
                    report: RecoveryReport) -> List[PendingIntent]:
    """Roll back every pending intent's records and clear the wal.

    Returns the pending intents (oldest first) so the caller can run the
    tree pass once the map/state structures are loaded.
    """
    pending = journal.pending()
    for intent in reversed(pending):
        report.records_restored += journal.rollback_records(intent)
        report.rolled_back.append((intent.seq, intent.op))
    report.rolled_back.reverse()
    # anything left under wal: is commit garbage or a torn journal record —
    # either way the operation it belonged to needs no further attention
    for key in journal.device.record_keys():
        if key.startswith(WAL_PREFIX):
            journal.device.delete_record(key)
            report.wal_records_cleared += 1
    return pending


# ----------------------------------------------------------------------
# tree-level recovery (needs dirmap + MetaStore loaded; not the engine)
# ----------------------------------------------------------------------

def undo_tree(hacfs: "HacFileSystem", pending: List[PendingIntent],
              report: RecoveryReport) -> None:
    """Reconcile the VFS tree with the rolled-back records."""
    for intent in reversed(pending):
        _undo_one(hacfs, intent, report)


def _undo_one(hacfs: "HacFileSystem", intent: PendingIntent,
              report: RecoveryReport) -> None:
    op, payload = intent.op, intent.payload
    if op in ("mkdir", "smkdir"):
        path = str(payload.get("path", ""))
        if path and hacfs.dirmap.uid_of(path) is None and hacfs.fs.isdir(path):
            if _scrub_dir(hacfs, path, report):
                report.tree_fixes += 1
    elif op == "rmdir":
        path = str(payload.get("path", ""))
        if path and hacfs.dirmap.uid_of(path) is not None \
                and not hacfs.fs.exists(path, follow=False):
            hacfs.fs.mkdir(path)
            report.tree_fixes += 1
    elif op == "rename":
        _undo_rename(hacfs, payload, report)
    # set_query / reindex / ssync / save_index / sched_batch (the
    # maintenance pipeline's group commit — its payload deliberately
    # carries counts, not paths) touch no tree structure of their own;
    # their symlink churn is handled by reconciliation below
    for uid in _touched_uids(hacfs, intent):
        _reconcile_links(hacfs, uid, report)


def _undo_rename(hacfs: "HacFileSystem", payload, report) -> None:
    old, new = str(payload.get("old", "")), str(payload.get("new", ""))
    if not old or not new:
        return
    moved = hacfs.fs.exists(new, follow=False) \
        and not hacfs.fs.exists(old, follow=False)
    if not moved:
        return
    if payload.get("dir"):
        # the map was rolled back to the old path; move the tree back too
        if hacfs.dirmap.uid_of(old) is not None \
                and hacfs.dirmap.uid_of(new) is None:
            hacfs.fs.rename(new, old)
            report.tree_fixes += 1
    else:
        # a replaced destination inode is unrecoverable (no data journal);
        # reversing the move itself still restores name-level atomicity
        hacfs.fs.rename(new, old)
        report.tree_fixes += 1


def _touched_uids(hacfs: "HacFileSystem", intent: PendingIntent) -> List[int]:
    uids = set()
    for key in intent.keys:
        if isinstance(key, str) and key.startswith("semdir:"):
            try:
                uids.add(int(key.split(":")[1]))
            except (IndexError, ValueError):
                continue
    # an operation can mutate the tree (e.g. a detach unlinking entries)
    # before its first record write persists — a crash there captures no
    # semdir pre-image, so also reconcile the directories the intent named
    for field in ("path", "old", "new"):
        value = intent.payload.get(field)
        if isinstance(value, str) and value:
            uid = hacfs.dirmap.uid_of(value)
            if uid is not None:
                uids.add(uid)
    return sorted(uids)


def _scrub_dir(hacfs: "HacFileSystem", path: str,
               report: RecoveryReport) -> bool:
    """Remove an unregistered directory left by a crashed mkdir/smkdir.

    Only crash debris is removed: symlink entries (materialised links), then
    the directory if that leaves it empty.  Real files stop the scrub."""
    fs = hacfs.fs
    for name in list(fs.listdir(path)):
        entry = pathutil.join(path, name)
        if fs.islink(entry):
            fs.unlink(entry)
            report.strays_removed += 1
    if fs.listdir(path):
        return False
    fs.rmdir(path)
    return True


def _expected_link_text(hacfs: "HacFileSystem", target: "Target") -> str:
    if target.is_remote:
        return target.remote_id().uri()
    live = hacfs.path_for_target(target)
    return live if live is not None else f"#dangling:{target}"


def _reconcile_links(hacfs: "HacFileSystem", uid: int,
                     report: RecoveryReport) -> None:
    """Make a directory's symlink entries agree with its tracked link sets
    (the rolled-back truth).  Tracked names get their entry re-materialised
    with the expected text; in a semantic directory, untracked symlinks are
    crash debris and are removed."""
    state = hacfs.meta.get(uid)
    path = hacfs.dirmap.path_of(uid)
    if state is None or path is None or not hacfs.fs.isdir(path):
        return
    fs = hacfs.fs
    tracked = dict(state.links.permanent)
    tracked.update(state.links.transient)
    for name, target in tracked.items():
        entry = pathutil.join(path, name)
        text = _expected_link_text(hacfs, target)
        if fs.islink(entry):
            if fs.readlink(entry) != text:
                fs.unlink(entry)
                fs.symlink(text, entry)
                report.links_reconciled += 1
        elif not fs.exists(entry, follow=False):
            fs.symlink(text, entry)
            report.links_reconciled += 1
        # a non-link squatting on a tracked name is user data: leave it for
        # fsck to report rather than destroy it here
    if state.is_semantic:
        for name in list(fs.listdir(path)):
            if name in tracked:
                continue
            entry = pathutil.join(path, name)
            if fs.islink(entry):
                fs.unlink(entry)
                report.strays_removed += 1


# ----------------------------------------------------------------------
# in-process rollback (soft failures: ENOSPC and friends)
# ----------------------------------------------------------------------

def rollback_in_process(hacfs: "HacFileSystem", intent) -> RecoveryReport:
    """Undo a journaled operation that failed without crashing the device.

    Restores the records from the wal, reloads every persisted structure
    into memory, and reconciles the tree — after this the operation is
    fully absent and the instance remains usable.
    """
    report = RecoveryReport()
    journal = hacfs.journal
    report.records_restored += journal.rollback_active(intent)
    report.rolled_back.append((intent.seq, intent.op))
    hacfs.reload_persisted()
    undo_tree(hacfs,
              [PendingIntent(intent.seq, intent.op, intent.payload,
                             [{"key": k, "existed": True, "data": b""}
                              for k in intent.capture_order])],
              report)
    return report
