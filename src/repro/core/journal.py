"""Write-ahead intent journal — crash consistency for multi-structure ops.

HAC's mutations touch up to five structures (VFS tree, global UID map,
per-directory MetaStore records, dependency graph, content index), and the
paper's consistency guarantees assume all of them move together.  Nothing in
a user-level library stops the process dying between the second and third
record write of an ``smkdir``, so every multi-structure mutation runs under
an *intent*:

1. ``begin`` durably appends ``wal:<seq>:begin`` — the operation name and
   arguments — before the operation touches any record;
2. while the intent is active, the journal hooks the block device and, for
   the **first** touch of each record key, durably writes the key's
   pre-image as ``wal:<seq>:u<i>`` *before* the touching write persists
   (strict write-ahead: a record never changes on disk unless its old value
   is already in the journal);
3. ``commit`` deletes ``wal:<seq>:begin`` first — that single delete is the
   atomic commit point — then garbage-collects the pre-images.

A crash at any point therefore leaves either no ``begin`` record (the
operation never started, or committed: nothing to do) or a ``begin`` plus a
prefix of pre-images (roll back by restoring pre-images in reverse order —
see :mod:`repro.core.recovery`).  Rolling back restores the *records*
exactly; the VFS tree, which is not record-backed, is reconciled against the
restored records by the recovery pass.

The same rollback runs in-process when an operation fails softly (e.g. a
transient ``ENOSPC`` mid-``smkdir``), which is what makes journaled
operations atomic — fully applied or fully absent — rather than merely
recoverable.

**Group commit.**  An intent's cost is per *operation*, not per record
write: one ``begin`` plus one pre-image per distinct key touched.  The
maintenance pipeline (:mod:`repro.core.scheduler`) exploits this by
applying a whole coalesced batch of index updates under a single
``sched_batch`` intent — N documents, one ``begin``, shared pre-images —
so batched maintenance writes a fraction of the journal records the same
updates would cost as individual intents, while a crash mid-batch still
rolls the *entire* batch back atomically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import CorruptRecord
from repro.obs.trace import NULL_TRACER, TraceContext
from repro.util import serialization
from repro.util.stats import Counters
from repro.vfs.blockdev import BlockDevice

#: every journal record key starts with this; the capture hook ignores them
WAL_PREFIX = "wal:"


class Intent:
    """One active (or recovered) journaled operation."""

    __slots__ = ("seq", "op", "payload", "captured", "capture_order")

    def __init__(self, seq: int, op: str, payload: Dict[str, object]):
        self.seq = seq
        self.op = op
        self.payload = payload
        #: record keys whose pre-image is already journaled
        self.captured: Set[str] = set()
        #: capture order, so rollback can run in reverse
        self.capture_order: List[str] = []

    def __repr__(self):
        return f"Intent(seq={self.seq}, op={self.op!r}, " \
               f"captured={len(self.captured)})"


class PendingIntent:
    """An intent read back from the device during recovery."""

    __slots__ = ("seq", "op", "payload", "pre_images", "keys")

    def __init__(self, seq: int, op: str, payload: Dict[str, object],
                 pre_images: List[Dict[str, object]]):
        self.seq = seq
        self.op = op
        self.payload = payload
        #: [{"key", "existed", "data"}] in capture order
        self.pre_images = pre_images
        self.keys = [p["key"] for p in pre_images]

    def __repr__(self):
        return f"PendingIntent(seq={self.seq}, op={self.op!r}, " \
               f"pre_images={len(self.pre_images)})"


class Journal:
    """The write-ahead intent journal over one block device.

    Exactly one intent may be active at a time; a nested ``begin`` (e.g.
    ``smkdir`` calling ``mkdir``) returns ``None`` and the outer intent owns
    the whole operation.
    """

    def __init__(self, device: BlockDevice,
                 counters: Optional[Counters] = None,
                 tracer: Optional[TraceContext] = None):
        self.device = device
        self._stats = (counters or Counters()).scoped("journal")
        #: observability hook; journal events carry the intent seq as their
        #: op id, which is what correlates a recovered intent to its trace
        self._trace = tracer if tracer is not None else NULL_TRACER
        self._active: Optional[Intent] = None
        #: tenant attribution context: while set (by the tenant facade),
        #: every intent opened carries the tenant id in its payload, so
        #: the WAL itself records which namespace each mutation belongs to
        self.tenant: Optional[str] = None
        self._seq = self._scan_next_seq()
        device.record_hook = self._on_record_touch

    def _scan_next_seq(self) -> int:
        top = -1
        for key in self.device.record_keys():
            if key.startswith(WAL_PREFIX):
                try:
                    top = max(top, int(key.split(":")[1]))
                except (IndexError, ValueError):
                    continue
        return top + 1

    # -- the write-ahead capture hook -------------------------------------------

    def _on_record_touch(self, key: str, old: Optional[bytes]) -> None:
        intent = self._active
        if intent is None or key.startswith(WAL_PREFIX):
            return
        if key in intent.captured:
            return
        intent.captured.add(key)
        index = len(intent.capture_order)
        intent.capture_order.append(key)
        record = {"key": key, "existed": old is not None, "data": old or b""}
        # this nested write_record is ignored by the hook (wal: prefix) and
        # must complete before the touching write — write-ahead, literally
        payload = serialization.dumps(record)
        self.device.write_record(f"{WAL_PREFIX}{intent.seq}:u{index}", payload)
        self._stats.add("preimages")
        self._stats.add("wal_bytes", len(payload))

    def capture(self, key: str) -> None:
        """Journal *key*'s pre-image now, ahead of tree-side effects.

        The hook only fires when a record is written, but some operations
        mutate the (non-record-backed) VFS tree first — e.g. a re-evaluation
        materialises a directory's symlinks before flushing its record.  A
        crash in that window would leave tree debris with no journaled key
        telling recovery which directory to reconcile.  Capturing the
        pre-image first extends the write-ahead rule to the tree: a
        directory's entries never change unless its record's old value is
        already in the journal.  No-op outside an intent or on a key the
        intent already captured.
        """
        if self._active is None or key in self._active.captured:
            return
        self._on_record_touch(key, self.device.read_record(key))

    # -- the intent lifecycle ----------------------------------------------------

    @property
    def active(self) -> Optional[Intent]:
        return self._active

    def begin(self, op: str, payload: Dict[str, object]) -> Optional[Intent]:
        """Open an intent; returns None when one is already active (nested)."""
        if self._active is not None:
            return None
        if self.tenant is not None and "tenant" not in payload:
            payload = dict(payload, tenant=self.tenant)
        seq = self._seq
        self._seq += 1
        intent = Intent(seq, op, payload)
        begin = serialization.dumps({"op": op, "seq": seq, "payload": payload})
        self.device.write_record(f"{WAL_PREFIX}{seq}:begin", begin)
        self._active = intent
        self._stats.add("begins")
        self._stats.add("wal_bytes", len(begin))
        # the operation's root span now carries this intent's sequence —
        # the journal↔trace correlation the crash sweep asserts on
        self._trace.set_op_id(seq)
        self._trace.event("journal.begin", op_id=seq, op=op)
        return intent

    def commit(self, intent: Intent) -> None:
        """Atomically commit: drop the begin record, then the pre-images."""
        if self._active is intent:
            self._active = None
        self.device.delete_record(f"{WAL_PREFIX}{intent.seq}:begin")
        for index in range(len(intent.capture_order)):
            self.device.delete_record(f"{WAL_PREFIX}{intent.seq}:u{index}")
        self._stats.add("commits")
        self._trace.event("journal.commit", op_id=intent.seq, op=intent.op,
                          preimages=len(intent.capture_order))

    def note_publish(self, version: int, seq: Optional[int] = None) -> None:
        """Record a snapshot publish against the intent that produced it.

        Publishes happen strictly *after* the producing intent commits
        (publishing mid-intent could leave replicas ahead of a rolled-back
        primary), so the event cannot ride the intent itself; instead the
        caller passes the committed intent's *seq* and the event carries it
        as its op id — the same correlation key ``journal.begin`` stamped
        on the operation's root span.  *seq* is ``None`` for publishes no
        intent produced (a forced ``sched publish``, an empty drain).
        """
        self._stats.add("publishes")
        self._trace.event("journal.sched_publish", op_id=seq,
                          version=version)

    def abandon(self, intent: Intent) -> None:
        """Deactivate without committing — the wal records stay for recovery
        (used when a device crash propagates out of the operation)."""
        if self._active is intent:
            self._active = None
        self._stats.add("abandons")
        self._trace.event("journal.abandon", op_id=intent.seq, op=intent.op)

    # -- recovery-side reading ---------------------------------------------------

    def pending(self) -> List[PendingIntent]:
        """Intents whose begin record survives on the device, oldest first.

        Corrupt wal records are counted and skipped: a torn pre-image means
        the crash happened *during* the journal write itself, so the record
        it was about to protect was never touched.
        """
        by_seq: Dict[int, Dict[str, str]] = {}
        for key in self.device.record_keys():
            if not key.startswith(WAL_PREFIX):
                continue
            parts = key.split(":")
            try:
                seq = int(parts[1])
            except (IndexError, ValueError):
                continue
            by_seq.setdefault(seq, {})[parts[2]] = key
        out: List[PendingIntent] = []
        for seq in sorted(by_seq):
            keys = by_seq[seq]
            if "begin" not in keys:
                # committed (or begin never landed): the pre-images are
                # garbage — recovery clears them
                self._stats.add("orphan_walsets")
                continue
            begin = self._read_wal(keys["begin"])
            if begin is None:
                self._stats.add("corrupt_wal_records")
                continue
            pre_images: List[Dict[str, object]] = []
            for index in range(len(keys)):
                part = f"u{index}"
                if part not in keys:
                    break
                rec = self._read_wal(keys[part])
                if rec is None:
                    self._stats.add("corrupt_wal_records")
                    break
                pre_images.append(rec)
            out.append(PendingIntent(seq, str(begin["op"]),
                                     dict(begin["payload"]), pre_images))
        return out

    def _read_wal(self, key: str):
        try:
            raw = self.device.read_record(key)
        except CorruptRecord:
            return None
        if raw is None:
            return None
        try:
            return serialization.loads(raw)
        except serialization.SerializationError:
            return None

    # -- rollback ----------------------------------------------------------------

    def rollback_records(self, pending: PendingIntent) -> int:
        """Restore every captured pre-image, newest first, then clear the
        intent's wal records.  Returns the number of records restored.

        Must run with no intent active (the hook would otherwise journal the
        rollback itself).
        """
        assert self._active is None, "cannot roll back inside an intent"
        restored = 0
        with self._trace.span("journal.rollback", op_id=pending.seq,
                              op=pending.op) as span:
            for rec in reversed(pending.pre_images):
                key = str(rec["key"])
                if rec["existed"]:
                    self.device.write_record(key, bytes(rec["data"]))
                else:
                    self.device.delete_record(key)
                restored += 1
            self.clear(pending.seq, len(pending.pre_images))
            span.set(restored=restored)
        self._stats.add("rollbacks")
        return restored

    def rollback_active(self, intent: Intent) -> int:
        """In-process rollback of a just-failed operation (soft failure)."""
        self.abandon(intent)
        pre_images: List[Dict[str, object]] = []
        for index, key in enumerate(intent.capture_order):
            rec = self._read_wal(f"{WAL_PREFIX}{intent.seq}:u{index}")
            if rec is None:
                break
            pre_images.append(rec)
        return self.rollback_records(
            PendingIntent(intent.seq, intent.op, intent.payload, pre_images))

    def clear(self, seq: int, n_pre_images: Optional[int] = None) -> None:
        """Delete the wal records of one intent (begin first)."""
        self.device.delete_record(f"{WAL_PREFIX}{seq}:begin")
        if n_pre_images is None:
            n_pre_images = sum(
                1 for key in self.device.record_keys()
                if key.startswith(f"{WAL_PREFIX}{seq}:u"))
        for index in range(n_pre_images):
            self.device.delete_record(f"{WAL_PREFIX}{seq}:u{index}")

    def clear_orphans(self) -> int:
        """Drop wal record sets whose begin record is gone (post-commit
        leftovers from a crash mid-garbage-collection)."""
        seqs: Dict[int, List[str]] = {}
        with_begin: Set[int] = set()
        for key in self.device.record_keys():
            if not key.startswith(WAL_PREFIX):
                continue
            parts = key.split(":")
            try:
                seq = int(parts[1])
            except (IndexError, ValueError):
                continue
            seqs.setdefault(seq, []).append(key)
            if parts[2] == "begin":
                with_begin.add(seq)
        dropped = 0
        for seq, keys in seqs.items():
            if seq in with_begin:
                continue
            for key in keys:
                self.device.delete_record(key)
                dropped += 1
        return dropped

    def wal_record_count(self) -> int:
        return sum(1 for key in self.device.record_keys()
                   if key.startswith(WAL_PREFIX))
