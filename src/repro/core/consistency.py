"""The scope-consistency algorithm (paper §2.3, extended by §2.5 and §3).

When the scope of a semantic directory changes — its parent's links were
edited, it was moved, its query was changed, a directory its query
references was re-evaluated — HAC must re-establish the invariant:

1. the transient links of ``sd`` are a subset of the scope provided by its
   parent, and
2. ``sd`` has transient links to *all* files in that scope satisfying its
   query, except those explicitly prohibited.

The algorithm, reproduced exactly: re-evaluate the query over the current
scope; discard anything permanent or prohibited; what remains is the new
transient set.  Permanent and prohibited sets are never touched.  Every
directory that directly or indirectly depends on a changed directory is
re-evaluated once, in topological order of the dependency DAG.

Remote results (paper §3): name spaces mounted within the scope import
every hit for the (content projection of the) query; remote members already
in the parent's scope are *refined* — kept only when the back-end that owns
them still reports them as matching.  A back-end that fails mid-evaluation
degrades gracefully: its previous contributions to this directory are kept
(stale beats lost) and the failure is counted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.errors import BackendUnavailable
from repro.util import pathutil
from repro.util.bitmap import Bitmap
from repro.cba import evaluator
from repro.cba.results import RemoteId
from repro.core.links import Target
from repro.core.scope import Scope

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hacfs import HacFileSystem
    from repro.core.semdir import SemanticDirState


class ConsistencyManager:
    """Owns re-evaluation and link materialisation for one HAC file system."""

    def __init__(self, hacfs: "HacFileSystem"):
        self.hacfs = hacfs
        self._stats = hacfs.counters.scoped("consistency")

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def on_scope_changed(self, origin_uids: List[int],
                         include_origins: bool = False) -> int:
        """Re-evaluate everything affected by scope changes at *origins*.

        Returns the number of semantic directories re-evaluated.
        """
        graph = self.hacfs.depgraph
        affected: Set[int] = set()
        for uid in origin_uids:
            if uid not in graph:
                continue
            affected.update(graph.affected_order(uid, include_start=include_origins))
        if not affected:
            return 0
        order = graph.topo_order(affected)
        touched = self._origin_tenants(origin_uids)
        count = 0
        with self.hacfs.obs.trace.span("hac.cascade",
                                       affected=len(order)) as span:
            for uid in order:
                if touched is not None and self._foreign_tenant_dir(uid, touched):
                    # a tenant's query is scope-filtered to its own subtree,
                    # so a mutation that stayed outside that subtree cannot
                    # change its results — skipping both saves the work and
                    # keeps another tenant's fault window off this record
                    self._stats.add("cross_tenant_skips")
                    continue
                if self.reevaluate(uid):
                    count += 1
            span.set(reevaluated=count)
        self._stats.add("cascades")
        return count

    def _origin_tenants(self, origin_uids: List[int]) -> Optional[Set[str]]:
        """Tenant subtrees the mutation touched — ``None`` disables the
        cross-tenant cascade pruning entirely (no tenants registered)."""
        tenants = getattr(self.hacfs, "tenants", None)
        if not tenants:
            return None
        touched: Set[str] = set()
        for uid in origin_uids:
            path = self.hacfs.dirmap.path_of(uid)
            if path is not None:
                owner = tenants.tenant_of_path(path)
                if owner is not None:
                    touched.add(owner)
        return touched

    def _foreign_tenant_dir(self, uid: int, touched: Set[str]) -> bool:
        """True for a directory owned by a tenant the mutation did not
        touch (host-owned directories are never foreign)."""
        path = self.hacfs.dirmap.path_of(uid)
        if path is None:
            return False
        owner = self.hacfs.tenants.tenant_of_path(path)
        return owner is not None and owner not in touched

    def reevaluate_all(self) -> int:
        """Global pass in full topological order (used after reindexing)."""
        count = 0
        for uid in self.hacfs.depgraph.full_order():
            if self.reevaluate(uid):
                count += 1
        self._stats.add("full_passes")
        return count

    # ------------------------------------------------------------------
    # the per-directory algorithm
    # ------------------------------------------------------------------

    def reevaluate(self, uid: int) -> bool:
        """Re-establish the scope invariant for one directory.

        Plain directories have no stored transient set, so they are a no-op
        (their provided scope is always derived live).  Returns True when a
        semantic directory was actually re-evaluated.
        """
        state = self.hacfs.meta.get(uid)
        if state is None or not state.is_semantic:
            return False
        path = self.hacfs.dirmap.path_of(uid)
        if path is None:
            return False
        # pre-query barrier: a semantic directory must never be evaluated
        # over a torn batch, so any pending maintenance drains first (a
        # no-op mid-drain — the scheduler's own cascade lands here)
        self.hacfs.maintenance.barrier()
        self._stats.add("reevaluations")
        with self.hacfs.obs.trace.span("hac.reevaluate", uid=uid, path=path):
            return self._reevaluate_semantic(uid, state, path)

    def _reevaluate_semantic(self, uid: int, state: "SemanticDirState",
                             path: str) -> bool:
        parent_path = pathutil.dirname(path)
        scope = self.hacfs.scopes.provided(parent_path)

        # 1. re-evaluate the query over the current scope.  A sharded
        # back-end accumulates the shards it could not reach during the
        # evaluation, so bracket it: reset before, harvest after (the
        # SearchBackend protocol guarantees both ends exist; a monolith's
        # missing set is simply always empty).
        engine = self.hacfs.engine
        engine.reset_missing_shards()
        local_hits = evaluator.evaluate(
            state.query, engine,
            resolve_dirref=self._dirref_local, scope=scope.local)
        remote_hits = self._remote_matches(state, scope)
        missing: Set[str] = set(engine.missing_shards)

        # 2. discard permanent and prohibited targets; the rest is transient
        permanent = set(state.links.permanent.values())
        new_targets: Set[Target] = set()
        for doc_id in local_hits:
            doc = self.hacfs.engine.doc_by_id(doc_id)
            if doc is None:
                continue
            target = Target.local(doc.key[0], doc.key[1])
            if target not in permanent and target not in state.links.prohibited:
                new_targets.add(target)
        for rid in remote_hits:
            target = Target.from_remote_id(rid)
            if target not in permanent and target not in state.links.prohibited:
                new_targets.add(target)

        # degrade gracefully over missing shards, mirroring the remote
        # back-end policy: local links whose document lives on a shard the
        # evaluation could not reach are kept last-known-good ("stale
        # beats lost") and the directory is flagged until a whole
        # evaluation succeeds again
        if missing:
            self._stats.add("partial_evaluations")
            for target in state.links.transient.values():
                if target.is_local and target not in new_targets \
                        and target not in permanent \
                        and target not in state.links.prohibited \
                        and engine.shard_of(target.key) in missing:
                    new_targets.add(target)
            for shard_id in sorted(missing):
                if shard_id not in state.degraded_shards:
                    state.degraded_shards[shard_id] = self.hacfs.clock.now
                    self._stats.add("shard_degradations")
        for shard_id in list(state.degraded_shards):
            if shard_id not in missing:
                del state.degraded_shards[shard_id]
                self._stats.add("shard_recoveries")

        # write-ahead for the tree: journal this directory's record
        # pre-image *before* materialisation mutates its entries, so a
        # crash mid-materialisation still tells recovery to reconcile here
        self.hacfs.journal.capture(f"semdir:{uid}")
        changed = self._apply_transient(path, state, new_targets)
        # the stored N/8-byte result: the directory's *current* local result
        # (transient plus permanent), i.e. the customised query result
        result = Bitmap()
        for target in state.links.all_targets():
            if target.is_local:
                doc_id = self.hacfs.engine.doc_id_of(target.key)
                if doc_id is not None:
                    result.add(doc_id)
        state.result_cache = result
        self.hacfs.meta.flush(uid)
        return changed

    def _dirref_local(self, uid: int) -> Bitmap:
        return self.hacfs.scopes.provided_by_uid(uid).local

    # ------------------------------------------------------------------
    # remote evaluation
    # ------------------------------------------------------------------

    def _remote_matches(self, state: "SemanticDirState",
                        scope: Scope) -> Set[RemoteId]:
        """Recursive remote-side evaluation of the query.

        Content-only subtrees are forwarded (once each, per name space) to
        every back-end in scope; directory references resolve locally to the
        referenced directory's remote members; boolean structure is applied
        to the resulting sets.  This keeps ``analysis OR /fp`` from turning
        into an import-everything query on the remote side.
        """
        if not scope.namespaces and not scope.remote:
            return set()
        cache: Dict[tuple, Set[RemoteId]] = {}
        return self._remote_eval(state.query, state, scope, cache)

    def _remote_eval(self, node, state: "SemanticDirState", scope: Scope,
                     cache: Dict[tuple, Set[RemoteId]]) -> Set[RemoteId]:
        from repro.cba import queryast as qa

        if evaluator.is_content_only(node) and not qa.has_scope_terms(node):
            return self._forward(node.to_text(), state, scope, cache)
        if isinstance(node, qa.ScopeTerm):
            # remote members live in a foreign name space — they have no
            # path in the local tree, so a subtree scope excludes them all
            return set()
        if isinstance(node, qa.DirRef):
            return set(self.hacfs.scopes.provided_by_uid(node.uid).remote)
        if isinstance(node, qa.And):
            out: Optional[Set[RemoteId]] = None
            for child in node.children:
                hits = self._remote_eval(child, state, scope, cache)
                out = hits if out is None else (out & hits)
                if not out:
                    break
            return out or set()
        if isinstance(node, qa.Or):
            out: Set[RemoteId] = set()
            for child in node.children:
                out |= self._remote_eval(child, state, scope, cache)
            return out
        if isinstance(node, qa.Not):
            universe = self._forward("*", state, scope, cache) | set(scope.remote)
            return universe - self._remote_eval(node.child, state, scope, cache)
        raise TypeError(f"unknown query node: {type(node).__name__}")

    def _forward(self, query_text: str, state: "SemanticDirState",
                 scope: Scope, cache: Dict[tuple, Set[RemoteId]]) -> Set[RemoteId]:
        """One content query against every back-end the scope reaches:
        mounted name spaces import all their hits; name spaces that merely
        own existing scope members only refine those members."""
        member_namespaces = {rid.namespace for rid in scope.remote}
        hits: Set[RemoteId] = set()
        for ns_id in sorted(set(scope.namespaces) | member_namespaces):
            key = (ns_id, query_text)
            ns_hits = cache.get(key)
            if ns_hits is None:
                ns_hits = self._search_one(ns_id, query_text, state)
                cache[key] = ns_hits
            if ns_id in scope.namespaces:
                hits.update(ns_hits)                  # import everything new
            else:
                hits.update(ns_hits & scope.remote)   # refine members only
        return hits

    def _search_one(self, ns_id: str, query_text: str,
                    state: "SemanticDirState") -> Set[RemoteId]:
        namespace = self.hacfs.semmounts.get(ns_id)
        if namespace is None:
            return set()
        try:
            results = namespace.search(query_text)
        except BackendUnavailable:
            # degrade gracefully: keep this back-end's previous links, and
            # flag them stale until the back-end answers again (breaker
            # rejections land here too — CircuitOpen is a BackendUnavailable)
            self._stats.add("remote_failures")
            if ns_id not in state.degraded_remote:
                state.degraded_remote[ns_id] = self.hacfs.clock.now
                self._stats.add("stale_degradations")
            return {t.remote_id() for t in state.links.transient.values()
                    if t.is_remote and t.realm == ns_id}
        if state.degraded_remote.pop(ns_id, None) is not None:
            self._stats.add("stale_recoveries")
        return {r.remote_id(ns_id) for r in results}

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------

    def _apply_transient(self, path: str, state: "SemanticDirState",
                         new_targets: Set[Target]) -> bool:
        """Sync the transient link set (and its symlink entries) to
        *new_targets*; returns True when anything changed."""
        fs = self.hacfs.fs
        old = dict(state.links.transient)
        old_targets = set(old.values())
        changed = False

        # remove entries whose target fell out of the result
        for name, target in old.items():
            if target in new_targets:
                continue
            entry = pathutil.join(path, name)
            try:
                if fs.islink(entry):
                    fs.unlink(entry)
            except Exception:
                pass
            state.links.forget(name)
            changed = True

        # add entries for new targets; the directory node is resolved once
        # so name invention never re-walks the path per candidate
        try:
            dir_entries = fs.resolve(path).node.entries  # type: ignore[union-attr]
        except Exception:
            dir_entries = {}
        for target in sorted(new_targets - old_targets):
            name = self._invent_name(path, state, target, dir_entries)
            text = self._link_text(target)
            entry = pathutil.join(path, name)
            fs.symlink(text, entry)
            state.links.add_transient(name, target)
            changed = True

        # refresh link text of survivors whose target path drifted
        for name, target in state.links.transient.items():
            if target in old_targets and target in new_targets:
                entry = pathutil.join(path, name)
                text = self._link_text(target)
                try:
                    if fs.islink(entry) and fs.readlink(entry) != text:
                        fs.unlink(entry)
                        fs.symlink(text, entry)
                except Exception:
                    pass
        if changed:
            self._stats.add("transient_updates")
        return changed

    def _link_text(self, target: Target) -> str:
        if target.is_remote:
            return target.remote_id().uri()
        doc = self.hacfs.engine.doc_by_key(target.key)
        if doc is not None:
            return doc.path
        live = self.hacfs.path_for_target(target)
        return live if live is not None else f"#dangling:{target}"

    def _invent_name(self, path: str, state: "SemanticDirState",
                     target: Target, existing_entries) -> str:
        if target.is_remote:
            namespace = self.hacfs.semmounts.get(target.realm)
            title = namespace.title_of(target.ident) if namespace else None
            base = title or target.ident
        else:
            doc = self.hacfs.engine.doc_by_key(target.key)
            base = pathutil.basename(doc.path) if doc is not None else target.ident
        base = _sanitize(base)
        used = state.links.used_names()
        candidate = base
        suffix = 2
        while candidate in used or candidate in existing_entries:
            candidate = f"{base}~{suffix}"
            suffix += 1
        return candidate


def _sanitize(name: str) -> str:
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in name)
    return safe.strip("._") or "link"
