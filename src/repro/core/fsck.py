"""hacfsck — structural self-audit of a HAC file system.

A user-level file system that maintains five interlinked structures (VFS
tree, global UID map, per-directory state, dependency graph, content index)
needs a way to prove they still agree.  ``hacfsck`` walks all of them and
reports every disagreement as a typed :class:`Finding`; an empty report is
the invariant "everything HAC believes is true of the tree".

Checks:

* **map↔tree** — every registered path is a live directory, every live
  directory is registered, no duplicate UIDs;
* **state** — every registered directory owns a MetaStore record (and no
  orphan records exist);
* **graph** — every directory is a graph node with a hierarchy edge to its
  registered parent; no dangling nodes; the graph is acyclic (topological
  sort succeeds);
* **links** — every tracked link name is a live symlink in its directory,
  its text agrees with the tracked target (remote URIs, or the target's
  current path for local files), and no *tracked-as-transient* entry is
  missing from the directory;
* **index** — every indexed document's key resolves to a live file
  (stale entries are legal between syncs — reported as ``stale-doc`` with
  severity "info" — but ino collisions are not).

``repair=True`` fixes what is safely fixable: drops orphan state records,
re-materialises missing transient links, removes tracked entries whose
symlink vanished.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, TYPE_CHECKING

from repro.util import pathutil
from repro.errors import DependencyCycle
from repro.vfs.walker import walk

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hacfs import HacFileSystem


class Finding(NamedTuple):
    """One disagreement between HAC's structures."""

    severity: str   # "error" | "warn" | "info"
    kind: str       # stable machine-readable tag
    path: str       # where
    detail: str     # human-readable explanation

    def __str__(self):
        return f"[{self.severity}] {self.kind} {self.path}: {self.detail}"


def hacfsck(hacfs: "HacFileSystem", repair: bool = False) -> List[Finding]:
    """Audit (and optionally repair) every cross-structure invariant."""
    findings: List[Finding] = []
    findings += _check_device(hacfs)
    findings += _check_map_vs_tree(hacfs)
    findings += _check_states(hacfs, repair)
    findings += _check_graph(hacfs)
    findings += _check_links(hacfs, repair)
    findings += _check_index(hacfs)
    findings += _check_segments(hacfs, repair)
    findings += _check_cas(hacfs, repair)
    findings += _check_tenants(hacfs, repair)
    return findings


# ----------------------------------------------------------------------
# individual passes
# ----------------------------------------------------------------------

def _live_dirs(hacfs) -> List[str]:
    return [dirpath for dirpath, _d, _f in walk(hacfs.fs, "/")]


def _check_device(hacfs) -> List[Finding]:
    """Record-store health: checksums and leftover write-ahead intents."""
    out: List[Finding] = []
    device = hacfs.fs.device
    for key in sorted(device.record_keys()):
        if not device.verify_record(key):
            out.append(Finding("error", "corrupt-record", key,
                               "record fails its checksum (torn write?)"))
    journal = getattr(hacfs, "journal", None)
    if journal is not None:
        for intent in journal.pending():
            out.append(Finding("error", "pending-intent",
                               f"wal:{intent.seq}",
                               f"incomplete {intent.op!r} intent on the "
                               f"device — run restore() to roll it back"))
    return out


def _check_map_vs_tree(hacfs) -> List[Finding]:
    out: List[Finding] = []
    live = set(_live_dirs(hacfs))
    seen_uids = set()
    for uid, path in list(hacfs.dirmap.items()):
        if uid in seen_uids:
            out.append(Finding("error", "dup-uid", path,
                               f"uid {uid} registered twice"))
        seen_uids.add(uid)
        if path not in live:
            out.append(Finding("error", "ghost-path", path,
                               f"registered (uid {uid}) but not a live directory"))
    for path in sorted(live):
        if hacfs.dirmap.uid_of(path) is None:
            out.append(Finding("error", "unregistered-dir", path,
                               "live directory missing from the global map"))
    return out


def _check_states(hacfs, repair: bool) -> List[Finding]:
    out: List[Finding] = []
    registered = {uid for uid, _p in hacfs.dirmap.items()}
    for uid in registered:
        if hacfs.meta.get(uid) is None:
            out.append(Finding("error", "missing-state",
                               hacfs.dirmap.path_of(uid) or f"uid:{uid}",
                               "registered directory has no MetaStore record"))
    for uid in list(hacfs.meta.uids()):
        if uid not in registered:
            path = f"uid:{uid}"
            out.append(Finding("warn", "orphan-state", path,
                               "MetaStore record for an unregistered directory"))
            if repair:
                hacfs.meta.drop(uid)
    return out


def _check_graph(hacfs) -> List[Finding]:
    out: List[Finding] = []
    registered = {uid for uid, _p in hacfs.dirmap.items()}
    for uid in registered:
        if uid not in hacfs.depgraph:
            out.append(Finding("error", "missing-node",
                               hacfs.dirmap.path_of(uid) or f"uid:{uid}",
                               "directory absent from the dependency graph"))
            continue
        path = hacfs.dirmap.path_of(uid)
        if uid == 0 or path is None:
            continue
        parent_uid = hacfs.dirmap.uid_of(pathutil.dirname(path))
        actual = hacfs.depgraph.hierarchy_parent(uid)
        if parent_uid is not None and actual != parent_uid:
            out.append(Finding("error", "bad-hierarchy-edge", path,
                               f"graph parent {actual}, map parent {parent_uid}"))
    for uid in hacfs.depgraph.nodes():
        if uid not in registered:
            out.append(Finding("warn", "orphan-node", f"uid:{uid}",
                               "graph node for an unregistered directory"))
    try:
        hacfs.depgraph.full_order()
    except DependencyCycle as exc:
        out.append(Finding("error", "cycle", "/", str(exc)))
    return out


def _check_links(hacfs, repair: bool) -> List[Finding]:
    out: List[Finding] = []
    for uid, path in list(hacfs.dirmap.items()):
        state = hacfs.meta.get(uid)
        if state is None:
            continue
        tracked = dict(state.links.permanent)
        tracked.update(state.links.transient)
        for name, target in tracked.items():
            entry = pathutil.join(path, name)
            if not hacfs.fs.islink(entry):
                kind = ("missing-transient"
                        if name in state.links.transient else "missing-permanent")
                out.append(Finding("error", kind, entry,
                                   f"tracked link has no symlink ({target})"))
                if repair:
                    state.links.forget(name)
                    hacfs.meta.flush(uid)
                continue
            text = hacfs.fs.readlink(entry)
            expected = (target.remote_id().uri() if target.is_remote
                        else hacfs.path_for_target(target))
            if expected is None:
                out.append(Finding("info", "dangling-target", entry,
                                   f"target {target} no longer resolves"))
            elif text != expected:
                out.append(Finding("warn", "stale-link-text", entry,
                                   f"symlink says {text!r}, target lives at "
                                   f"{expected!r}"))
                if repair:
                    hacfs.fs.unlink(entry)
                    hacfs.fs.symlink(expected, entry)
    return out


def _check_segments(hacfs, repair: bool = False) -> List[Finding]:
    """Segment-store agreement: every ``seg:`` record on the device must
    be named by the ``segmanifest``, and every manifest entry must have a
    record.  An orphan record is data a crashed (un-rolled-back) seal or
    compaction left behind; a missing record means the manifest promises
    state recovery cannot deliver.  ``repair`` deletes orphan records
    (they are unreachable by construction — restore folds only what the
    manifest names)."""
    out: List[Finding] = []
    device = hacfs.fs.device
    on_device = {key[4:] for key in device.record_keys()
                 if key.startswith("seg:")}
    try:
        manifest = hacfs.meta.load_aux("segmanifest") or {}
    except Exception:
        manifest = {}
    named = set(manifest.get("segments", ()))
    for seg_id in sorted(on_device - named):
        out.append(Finding("error", "orphan-segment", f"seg:{seg_id}",
                           "segment record not named by the manifest"))
        if repair:
            device.delete_record(f"seg:{seg_id}")
    for seg_id in sorted(named - on_device):
        out.append(Finding("error", "missing-segment", f"seg:{seg_id}",
                           "manifest names a segment with no record"))
    return out


def _check_cas(hacfs, repair: bool = False) -> List[Finding]:
    """Path-dimension agreement: every engine keeping a CAS index must
    agree with its document registry doc-for-doc — same membership, same
    paths.  A path mismatch is the signature of a missed prefix rebase
    after a directory rename (``cas-divergence``); a partition whose
    root is not an ancestor of a member's path breaks the containment
    invariant every CAS probe relies on (``cas-containment``).  The CAS
    index is derived state, so ``repair`` simply rebuilds it from the
    registry and the term store — always safe, never lossy."""
    out: List[Finding] = []
    engine = hacfs.engine
    if getattr(engine, "shards", None):
        engines = [(sid, shard.engine)
                   for sid, shard in engine.shards.items()]
    else:
        engines = [("engine", engine)]
    for label, eng in engines:
        cas = getattr(eng, "cas", None)
        if cas is None or not hasattr(cas, "doc_ids"):
            continue
        registry = getattr(eng, "_docs", {})
        cas_ids = set(cas.doc_ids())
        diverged = False
        for doc_id in sorted(cas_ids - set(registry)):
            diverged = True
            out.append(Finding("error", "cas-divergence",
                               f"{label}:doc:{doc_id}",
                               "CAS indexes a document the registry "
                               "does not know"))
        for doc_id in sorted(registry):
            doc = registry[doc_id]
            if doc_id not in cas_ids:
                diverged = True
                out.append(Finding("error", "cas-divergence", doc.path,
                                   f"registry document {doc_id} missing "
                                   f"from the CAS index"))
                continue
            cas_path = cas.path_of(doc_id)
            if cas_path != pathutil.canonical(doc.path):
                diverged = True
                out.append(Finding("error", "cas-divergence", doc.path,
                                   f"CAS prefix key says {cas_path!r} — "
                                   f"missed rebase after a rename?"))
                continue
            root = cas.root_of(doc_id)
            if root is not None and \
                    not pathutil.is_ancestor(root, cas_path, strict=False):
                diverged = True
                out.append(Finding("error", "cas-containment", doc.path,
                                   f"partition root {root!r} does not "
                                   f"contain the member path"))
        if diverged and repair:
            eng.rebuild_cas()
    return out


def _check_index(hacfs) -> List[Finding]:
    out: List[Finding] = []
    seen_keys = set()
    for key in hacfs.engine.mtime_snapshot():
        if key in seen_keys:
            out.append(Finding("error", "dup-doc", str(key),
                               "document key indexed twice"))
        seen_keys.add(key)
        doc = hacfs.engine.doc_by_key(key)
        fsid, ino = key
        entry = hacfs._fs_registry.get(fsid)
        node = entry[0].node_by_ino(ino) if entry else None
        if node is None or not node.is_file:
            out.append(Finding("info", "stale-doc", doc.path if doc else str(key),
                               "indexed file no longer exists (settles at sync)"))
    return out


def _check_tenants(hacfs, repair: bool) -> List[Finding]:
    """Tenant table sanity: every attached tenant owns a live scope root,
    the charged ledger agrees with a fresh subtree recount, and usage sits
    inside the declared budgets.  ``repair=True`` adopts the recount as the
    ledger (the recount is derived from the crash-consistent tree, so it
    wins every disagreement)."""
    from repro.core.quota import recompute_usage

    out: List[Finding] = []
    tenants = getattr(hacfs, "tenants", None)
    if tenants is None or len(tenants) == 0:
        return out
    for name in tenants.names():
        tenant = tenants.get(name)
        if not hacfs.fs.isdir(tenant.root):
            out.append(Finding("error", "tenant-root-missing", tenant.root,
                               f"tenant {name!r} registered but its scope "
                               f"root is not a live directory"))
            continue
        actual = recompute_usage(hacfs.fs, tenant.root)
        charged = tenant.ledger.usage()
        if actual != charged:
            out.append(Finding("warn", "tenant-usage-drift", tenant.root,
                               f"ledger says {charged}, tree recount says "
                               f"{actual}"))
            if repair:
                tenant.ledger.inodes = actual["inodes"]
                tenant.ledger.bytes = actual["bytes"]
        for resource in ("inodes", "bytes"):
            limit = tenant.ledger.spec.limit_of(resource)
            if limit is not None and actual[resource] > limit:
                out.append(Finding("warn", "tenant-over-quota", tenant.root,
                                   f"{resource} usage {actual[resource]} "
                                   f"exceeds the budget {limit} (grew "
                                   f"outside the facade?)"))
    return out
