"""Data consistency — the lazy reindex policy (paper §2.4).

Scope inconsistencies are removed "as soon as possible"; *data*
inconsistencies (a file was edited, created, deleted, or renamed so that
query results are stale) are settled only when the CBA mechanism reindexes:
periodically ("say, once a day or once an hour, determined by the user"),
or on demand, for any part of the file system.

:class:`ReindexScheduler` implements exactly that policy on the virtual
clock: a user-settable period drives full syncs; ``sync(path)`` reindexes
one subtree right now (the "update certain semantic directories as soon as
new mail comes in" use case).  Every run records the executed
:class:`~repro.cba.incremental.ReindexPlan` so tests and benches can verify
how much work laziness saved.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.cba.incremental import ReindexPlan
from repro.util.clock import Timer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hacfs import HacFileSystem


class ReindexScheduler:
    """Periodic + on-demand reindexing for one HAC file system."""

    def __init__(self, hacfs: "HacFileSystem"):
        self.hacfs = hacfs
        self._timer: Optional[Timer] = None
        self.period: Optional[float] = None
        #: (virtual time, path, plan) of every run, newest last
        self.history: List[Tuple[float, str, ReindexPlan]] = []

    # ------------------------------------------------------------------

    def set_period(self, seconds: Optional[float]) -> None:
        """(Re)arm the periodic full sync; ``None`` disables it."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.period = seconds
        if seconds is not None:
            self._timer = self.hacfs.clock.schedule_periodic(
                seconds, self._fire, name="hac-reindex")

    def _fire(self) -> None:
        self.sync("/")

    def sync(self, path: str = "/",
             asynchronous: bool = False) -> Optional[ReindexPlan]:
        """Reindex *path*'s subtree and settle all consistency there.

        With ``asynchronous=True`` the sync is queued behind the
        maintenance scheduler's next batch drain and ``None`` is
        returned (only the synchronous run lands in :attr:`history`);
        in eager mode there is nothing to defer behind, so the sync
        runs inline regardless.
        """
        if asynchronous and self.hacfs.maintenance.request_sync(path):
            return None
        plan = self.hacfs.ssync(path)
        self.history.append((self.hacfs.clock.now, path, plan))
        return plan

    @property
    def runs(self) -> int:
        return len(self.history)

    def cancel(self) -> None:
        self.set_period(None)
