"""Per-tenant resource budgets: specs, a charge-before-commit ledger.

The tenant facade (:mod:`repro.core.tenant`) checks every mutation against
the tenant's :class:`QuotaSpec` *before* delegating to the shared
:class:`~repro.core.hacfs.HacFileSystem` — a rejected request raises
:class:`~repro.errors.QuotaExceeded` with nothing to roll back.  Budgets:

* **inodes** — directories and regular files under the tenant root (the
  root itself is free; symlinks are uncharged because semantic-directory
  re-evaluation materialises and drops them outside the facade);
* **bytes** — total file content bytes;
* **docs** — documents the content index holds under the tenant root
  (checked against the engine's CAS subtree count, so a tenant cannot
  grow the shared index past its share even through un-watched writes
  followed by ``ssync``).

The ledger is in-memory and authoritative during a run; after a restore
(or ``TenantManager`` re-attach) it is *recomputed from the tree*, which
is both simpler and safer than persisting usage per-op: the tree is
already crash-consistent, so the recomputed numbers are too.  ``fsck``'s
tenant pass cross-checks the ledger against a fresh recount and reports
any drift as a finding.

Quota checks compose with PR 7's admission control rather than replacing
it: the facade charges the quota first (per-tenant policy), then the
underlying op runs the admission gate (whole-system backpressure).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import QuotaExceeded

#: ledger resources, in reporting order
RESOURCES = ("inodes", "bytes", "docs")


class QuotaSpec:
    """One tenant's budgets.  ``None`` means unlimited.

    ``weight`` is not a budget but the tenant's fair-share weight in the
    maintenance scheduler's weighted round-robin drain order.
    """

    __slots__ = ("max_inodes", "max_bytes", "max_docs", "weight")

    def __init__(self, max_inodes: Optional[int] = None,
                 max_bytes: Optional[int] = None,
                 max_docs: Optional[int] = None,
                 weight: int = 1):
        if weight < 1:
            raise ValueError("fair-share weight must be >= 1")
        self.max_inodes = max_inodes
        self.max_bytes = max_bytes
        self.max_docs = max_docs
        self.weight = int(weight)

    def limit_of(self, resource: str) -> Optional[int]:
        return {"inodes": self.max_inodes, "bytes": self.max_bytes,
                "docs": self.max_docs}[resource]

    def to_obj(self) -> Dict[str, object]:
        return {"max_inodes": self.max_inodes, "max_bytes": self.max_bytes,
                "max_docs": self.max_docs, "weight": self.weight}

    @classmethod
    def from_obj(cls, obj) -> "QuotaSpec":
        return cls(max_inodes=obj.get("max_inodes"),
                   max_bytes=obj.get("max_bytes"),
                   max_docs=obj.get("max_docs"),
                   weight=int(obj.get("weight", 1)))

    def __repr__(self):
        return (f"QuotaSpec(inodes={self.max_inodes}, bytes={self.max_bytes},"
                f" docs={self.max_docs}, weight={self.weight})")


class QuotaLedger:
    """Running usage for one tenant, charged ahead of every mutation."""

    __slots__ = ("tenant", "spec", "inodes", "bytes")

    def __init__(self, tenant: str, spec: QuotaSpec):
        self.tenant = tenant
        self.spec = spec
        self.inodes = 0
        self.bytes = 0

    # -- the check-then-commit protocol -------------------------------------

    def check(self, resource: str, delta: int) -> None:
        """Raise :class:`QuotaExceeded` if charging *delta* would overrun.

        Pure check — call :meth:`commit` only after the underlying
        operation succeeded, so a failed op never shifts the ledger.
        """
        if delta <= 0:
            return
        limit = self.spec.limit_of(resource)
        if limit is None:
            return
        used = getattr(self, resource, 0)
        if used + delta > limit:
            raise QuotaExceeded(self.tenant, resource, used, limit,
                                requested=delta)

    def check_docs(self, indexed: int, delta: int = 1) -> None:
        """Doc budget check against the engine's live subtree count."""
        limit = self.spec.max_docs
        if limit is not None and indexed + delta > limit:
            raise QuotaExceeded(self.tenant, "docs", indexed, limit,
                                requested=delta)

    def commit(self, resource: str, delta: int) -> None:
        """Apply a charge (or a release, with negative *delta*)."""
        setattr(self, resource, max(0, getattr(self, resource) + delta))

    def usage(self) -> Dict[str, int]:
        return {"inodes": self.inodes, "bytes": self.bytes}


def recompute_usage(fs, root: str) -> Dict[str, int]:
    """Recount a tenant subtree from the live tree (restore / fsck audit).

    Counts every directory and regular file strictly below *root* (the
    root itself is infrastructure, not tenant usage) and sums file
    content bytes.  Symlinks are skipped to match the facade's charging
    policy — re-evaluation materialises and drops them behind the
    tenant's back, so charging them would make recounts drift from the
    charged ledger.
    """
    from repro.util import pathutil
    from repro.vfs.walker import walk

    inodes = 0
    total_bytes = 0
    for dirpath, dirnames, filenames in walk(fs, root):
        if pathutil.canonical(dirpath) != pathutil.canonical(root):
            inodes += 1
        for name in filenames:
            entry = pathutil.join(dirpath, name)
            if fs.islink(entry):
                continue
            inodes += 1
            if fs.isfile(entry):
                total_bytes += fs.stat(entry).size
    return {"inodes": inodes, "bytes": total_bytes}
