"""Scope computation — what each directory *provides* (paper §2.3).

The scope of a query is the set of files it is evaluated over, and it is
defined by the parent of the query's semantic directory:

* the **root** provides all the files in the file system (every indexed
  document), plus every semantically mounted name space;
* a **semantic directory** provides its curated query-result: the targets
  of its transient and permanent links, plus any regular files placed
  directly inside it, plus name spaces semantically mounted directly on it.
  Contents of its *sub*-directories do not feed upward — the paper
  explicitly rejects child→parent flow;
* a **plain (syntactic) directory** has no curated result, so it provides
  its subtree: every regular file below it, the targets of symbolic links
  in plain directories below it, and name spaces mounted anywhere below.
  Links materialised inside semantic descendants are excluded — they are
  those directories' *results*, and letting them feed a syntactic ancestor
  would create scope dependencies the dependency graph does not track.

A scope has three parts: local documents (engine doc-ids), explicit remote
members (links imported earlier), and name spaces to forward new queries to.
"""

from __future__ import annotations

from typing import Optional, Set, TYPE_CHECKING

from repro.util import pathutil
from repro.util.bitmap import Bitmap
from repro.cba.results import RemoteId
from repro.vfs.inode import FileNode, SymlinkNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hacfs import HacFileSystem


class Scope:
    """The scope a directory provides to queries beneath it."""

    __slots__ = ("local", "remote", "namespaces")

    def __init__(self, local: Optional[Bitmap] = None,
                 remote: Optional[Set[RemoteId]] = None,
                 namespaces: Optional[Set[str]] = None):
        self.local = local if local is not None else Bitmap()
        self.remote = remote if remote is not None else set()
        self.namespaces = namespaces if namespaces is not None else set()

    def describe(self) -> dict:
        """Structured composition, the shape ``hac.health()`` nests and the
        shell prints — one source of truth, so the surfaces cannot drift."""
        return {"local": len(self.local),
                "remote": sorted(rid.uri() for rid in self.remote),
                "namespaces": sorted(self.namespaces)}

    def __repr__(self):
        d = self.describe()
        return (f"Scope(local={d['local']}, remote={d['remote']}, "
                f"namespaces={d['namespaces']})")


class ScopeResolver:
    """Computes provided scopes against the live file system state."""

    def __init__(self, hacfs: "HacFileSystem"):
        self.hacfs = hacfs

    # ------------------------------------------------------------------

    def provided_by_uid(self, uid: int) -> Scope:
        path = self.hacfs.dirmap.path_of(uid)
        if path is None:
            return Scope()  # dangling reference resolves to nothing
        return self.provided(path)

    def provided(self, path: str) -> Scope:
        norm = pathutil.normalize(path)
        if norm == "/":
            return self._root_scope()
        uid = self.hacfs.dirmap.uid_of(norm)
        state = self.hacfs.meta.get(uid) if uid is not None else None
        if state is not None and state.is_semantic:
            return self._semantic_scope(norm, state)
        return self._syntactic_scope(norm)

    # ------------------------------------------------------------------

    def _root_scope(self) -> Scope:
        return Scope(
            local=self.hacfs.engine.all_docs(),
            remote=set(),
            namespaces=set(self.hacfs.semmounts.all_namespace_ids()),
        )

    def _semantic_scope(self, path: str, state) -> Scope:
        local = Bitmap()
        remote: Set[RemoteId] = set()
        for target in state.links.all_targets():
            if target.is_local:
                doc_id = self.hacfs.engine.doc_id_of(target.key)
                if doc_id is not None:
                    local.add(doc_id)
            else:
                remote.add(target.remote_id())
        # regular files placed directly in the directory are part of the
        # curated result ("adding regular files to that directory", §2.3)
        fs = self.hacfs.fs
        for name in fs.listdir(path):
            child_path = pathutil.join(path, name)
            res = fs.resolve(child_path, follow=False)
            if isinstance(res.node, FileNode):
                doc_id = self.hacfs.engine.doc_id_of((res.fs.fsid, res.node.ino))
                if doc_id is not None:
                    local.add(doc_id)
        namespaces = set(self.hacfs.semmounts.namespaces_at(path))
        return Scope(local=local, remote=remote, namespaces=namespaces)

    def _syntactic_scope(self, path: str) -> Scope:
        from repro.vfs.walker import walk  # local import avoids cycles

        local = Bitmap()
        remote: Set[RemoteId] = set()
        fs = self.hacfs.fs
        # CAS routing: when the engine keeps a path dimension and no index
        # maintenance is pending (registry paths == live tree), the subtree's
        # regular files resolve in one interleaved-index probe instead of a
        # doc-id lookup per walked file.  Symlink targets and mounted name
        # spaces are not registry rows, so the walk still collects those.
        engine = self.hacfs.engine
        cas_fast = (getattr(engine, "cas", None) is not None
                    and self.hacfs.maintenance.pending == 0)
        if cas_fast:
            local |= engine.scope_docs(path)
        for dirpath, dirnames, filenames in walk(fs, path):
            dir_uid = self.hacfs.dirmap.uid_of(dirpath)
            dir_state = self.hacfs.meta.get(dir_uid) if dir_uid is not None else None
            dir_is_semantic = dir_state is not None and dir_state.is_semantic
            for name in filenames:
                child = fs.resolve(pathutil.join(dirpath, name), follow=False)
                node = child.node
                if isinstance(node, FileNode):
                    if cas_fast:
                        continue  # covered wholesale by the CAS probe above
                    doc_id = self.hacfs.engine.doc_id_of((child.fs.fsid, node.ino))
                    if doc_id is not None:
                        local.add(doc_id)
                elif isinstance(node, SymlinkNode) and not dir_is_semantic:
                    self._add_symlink_target(node, local, remote)
            # semantic descendants contribute their physical files (walked
            # above) but not their curated links: prune nothing, links are
            # filtered by dir_is_semantic when visited
        namespaces = set(self.hacfs.semmounts.namespaces_under(path))
        return Scope(local=local, remote=remote, namespaces=namespaces)

    def _add_symlink_target(self, node: SymlinkNode,
                            local: Bitmap, remote: Set[RemoteId]) -> None:
        target = node.target
        if "://" in target:
            try:
                remote.add(RemoteId.from_uri(target))
            except ValueError:
                pass
            return
        try:
            res = self.hacfs.fs.resolve(target, follow=True)
        except Exception:
            return  # dangling link: contributes nothing (data inconsistency)
        if isinstance(res.node, FileNode):
            doc_id = self.hacfs.engine.doc_id_of((res.fs.fsid, res.node.ino))
            if doc_id is not None:
                local.add(doc_id)
