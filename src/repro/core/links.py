"""Link targets and the three-way link classification (paper §2.3).

Every symbolic link a semantic directory holds points at a *target*:

* a **local** target — a file in some file system of the local name space,
  identified by ``(fsid, ino)``.  Identifying by inode rather than path
  keeps the classification stable across renames: a file moved elsewhere is
  still the same file, and a prohibition on it still holds (the paper keeps
  a "compact representation of the list of all file names"; inode identity
  is our equivalent).
* a **remote** target — a result imported through a semantic mount point,
  identified by ``(namespace, doc)``.

A directory's links are classified three ways, and the classification is
what the scope-consistency algorithm preserves:

* **permanent** — explicitly added by the user; never removed by HAC;
* **transient** — produced by query evaluation; wholly owned by HAC;
* **prohibited** — once present, explicitly deleted by the user; HAC will
  never silently re-add them.

:class:`LinkSets` owns the three collections plus the link *names* under
which permanent and transient targets are materialised as symlink entries.
"""

from __future__ import annotations

from typing import Dict, Iterator, NamedTuple, Optional, Set

from repro.cba.results import RemoteId

LOCAL = "local"
REMOTE = "remote"


class Target(NamedTuple):
    """Identity of what a link points at (local file or remote result)."""

    kind: str
    realm: str   # fsid for local, namespace id for remote
    ident: str   # str(ino) for local, doc id for remote

    @classmethod
    def local(cls, fsid: str, ino: int) -> "Target":
        return cls(LOCAL, fsid, str(ino))

    @classmethod
    def remote(cls, namespace: str, doc: str) -> "Target":
        return cls(REMOTE, namespace, doc)

    @classmethod
    def from_remote_id(cls, rid: RemoteId) -> "Target":
        return cls(REMOTE, rid.namespace, rid.doc)

    @property
    def is_local(self) -> bool:
        return self.kind == LOCAL

    @property
    def is_remote(self) -> bool:
        return self.kind == REMOTE

    @property
    def ino(self) -> int:
        if not self.is_local:
            raise ValueError(f"not a local target: {self}")
        return int(self.ident)

    @property
    def key(self):
        """The CBA engine document key for a local target."""
        if not self.is_local:
            raise ValueError(f"not a local target: {self}")
        return (self.realm, int(self.ident))

    def remote_id(self) -> RemoteId:
        if not self.is_remote:
            raise ValueError(f"not a remote target: {self}")
        return RemoteId(self.realm, self.ident)

    def to_obj(self):
        return [self.kind, self.realm, self.ident]

    @classmethod
    def from_obj(cls, obj) -> "Target":
        kind, realm, ident = obj
        return cls(kind, realm, ident)

    def __str__(self):
        if self.is_local:
            return f"{self.realm}:ino{self.ident}"
        return f"{self.realm}://{self.ident}"


class LinkSets:
    """The permanent/transient/prohibited classification for one directory.

    Permanent and transient targets carry the entry *name* they are
    materialised under inside the directory; prohibited targets are pure
    tombstones (the entry is gone).
    """

    def __init__(self):
        self.permanent: Dict[str, Target] = {}
        self.transient: Dict[str, Target] = {}
        self.prohibited: Set[Target] = set()

    # -- queries ---------------------------------------------------------------

    def classify(self, target: Target) -> Optional[str]:
        """'permanent' | 'transient' | 'prohibited' | None."""
        if target in self.prohibited:
            return "prohibited"
        if target in set(self.permanent.values()):
            return "permanent"
        if target in set(self.transient.values()):
            return "transient"
        return None

    def name_of(self, target: Target) -> Optional[str]:
        for name, tgt in self.permanent.items():
            if tgt == target:
                return name
        for name, tgt in self.transient.items():
            if tgt == target:
                return name
        return None

    def target_of(self, name: str) -> Optional[Target]:
        return self.permanent.get(name) or self.transient.get(name)

    def all_targets(self) -> Set[Target]:
        """Permanent ∪ transient — the directory's current query-result."""
        return set(self.permanent.values()) | set(self.transient.values())

    def names(self) -> Iterator[str]:
        yield from self.permanent
        yield from self.transient

    def used_names(self) -> Set[str]:
        return set(self.permanent) | set(self.transient)

    # -- mutation ----------------------------------------------------------------

    def add_permanent(self, name: str, target: Target) -> None:
        """User created a link: permanent, and any prohibition is lifted
        (re-adding by hand is the paper's "direct action by the user")."""
        self.prohibited.discard(target)
        self.permanent[name] = target

    def add_transient(self, name: str, target: Target) -> None:
        self.transient[name] = target

    def prohibit(self, name: str) -> Optional[Target]:
        """User deleted the entry *name*: tombstone its target."""
        target = self.permanent.pop(name, None)
        if target is None:
            target = self.transient.pop(name, None)
        if target is not None:
            self.prohibited.add(target)
        return target

    def forget(self, name: str) -> Optional[Target]:
        """Drop the entry without prohibiting (internal maintenance)."""
        target = self.permanent.pop(name, None)
        if target is None:
            target = self.transient.pop(name, None)
        return target

    def unprohibit(self, target: Target) -> bool:
        """Explicitly lift a tombstone (the sophisticated-user API)."""
        if target in self.prohibited:
            self.prohibited.discard(target)
            return True
        return False

    def clear_transient(self) -> None:
        self.transient.clear()

    # -- persistence ----------------------------------------------------------------

    def to_obj(self):
        return {
            "permanent": {n: t.to_obj() for n, t in self.permanent.items()},
            "transient": {n: t.to_obj() for n, t in self.transient.items()},
            "prohibited": [t.to_obj() for t in sorted(self.prohibited)],
        }

    @classmethod
    def from_obj(cls, obj) -> "LinkSets":
        ls = cls()
        ls.permanent = {n: Target.from_obj(t) for n, t in obj["permanent"].items()}
        ls.transient = {n: Target.from_obj(t) for n, t in obj["transient"].items()}
        ls.prohibited = {Target.from_obj(t) for t in obj["prohibited"]}
        return ls

    def __repr__(self):
        return (f"LinkSets(permanent={len(self.permanent)}, "
                f"transient={len(self.transient)}, "
                f"prohibited={len(self.prohibited)})")
