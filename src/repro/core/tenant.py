"""Multi-tenant namespaces over one shared HAC file system.

The paper's semantic directories assume a single user over a single name
space; the cluster, snapshot, and chaos planes of PRs 4–9 scale the *index*
but still expose one flat namespace.  This module carves that namespace
into per-tenant scope roots — Prospero-style virtual namespaces synthesized
over shared infrastructure — and makes the :class:`Tenant` handle the
single public API surface:

* every VFS op, semantic op, ``glimpse`` query, and ``health()`` call on a
  :class:`Tenant` rewrites tenant-relative paths under the tenant's root
  (``/tenants/<name>``) and reverse-maps every path in the result, so a
  tenant never sees — and can never name — another tenant's tree;
* queries are scoped to the tenant subtree by wrapping the parsed AST in a
  ``scope:`` term, which the CAS index answers from its prefix partitions
  in one probe (PR 9) — the *index* stays shared, the *visibility* is
  per-tenant;
* mutations are charged against the tenant's :class:`QuotaSpec`
  (:mod:`repro.core.quota`) *before* any bytes land, composing with the
  admission gate (quota = per-tenant policy, admission = whole-system
  backpressure);
* every journaled intent a tenant op opens carries the tenant id in its
  payload, every facade op runs under a ``tenant.<op>`` span tagged with
  the tenant, and every maintenance event the op enqueues is attributed to
  the tenant's drain bucket (fair-share weighted round-robin — see
  :class:`~repro.core.scheduler.MaintenanceScheduler`).

Isolation is load-bearing, not advisory: the tenant soak
(:mod:`repro.chaos.tenantsoak`) drives two tenants, aims every fault at
tenant A's ops, and asserts tenant B's state digest is bit-identical to a
B-only fault-free oracle world.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import InvalidArgument, UnknownTenant
from repro.util import pathutil
from repro.core.quota import QuotaLedger, QuotaSpec, recompute_usage

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hacfs import HacFileSystem

#: host directory every tenant root lives under (created lazily)
TENANTS_ROOT = "/tenants"

#: aux record persisting the tenant table (quota specs; usage is
#: recomputed from the tree on every attach/restore)
TENANTS_RECORD = "tenants"


#: tenant names become path components and CAS prefix-partition keys, so
#: the charset is strict: lowercase alphanumerics, dash, underscore
_NAME_RE = re.compile(r"[a-z0-9][a-z0-9_-]*\Z")


def _valid_name(name: str) -> bool:
    return bool(_NAME_RE.match(name))


class TenantManager:
    """Carves per-tenant scope roots out of one shared HAC file system.

    Owned by the :class:`~repro.core.hacfs.HacFileSystem` (``hac.tenants``);
    an empty manager costs nothing — the ``/tenants`` host directory, the
    scheduler's per-tenant buckets, and the ``health()`` tenant section all
    appear only once the first tenant is created.
    """

    def __init__(self, hacfs: "HacFileSystem"):
        self.hacfs = hacfs
        self._tenants: Dict[str, Tenant] = {}
        hacfs.maintenance.set_tenant_resolver(self.tenant_of_path)

    # -- lifecycle ----------------------------------------------------------

    def create(self, name: str, quota: Optional[QuotaSpec] = None) -> "Tenant":
        """Register a tenant and create its scope root.

        Journaled as one ``tenant_create`` intent: the root directories and
        the persisted tenant table land together or not at all.
        """
        if not _valid_name(name):
            raise InvalidArgument(name, "invalid tenant name")
        if name in self._tenants:
            raise InvalidArgument(name, "tenant already exists")
        spec = quota if quota is not None else QuotaSpec()
        root = pathutil.join(TENANTS_ROOT, name)
        with self.hacfs._journaled("tenant_create",
                                   {"tenant": name, "root": root}):
            self.hacfs.makedirs(root)
            tenant = self._attach(name, spec)
            self._persist()
        return tenant

    def get(self, name: str) -> "Tenant":
        tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenant(name)
        return tenant

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def names(self) -> List[str]:
        return sorted(self._tenants)

    def set_quota(self, name: str, quota: QuotaSpec) -> None:
        """Replace a tenant's budgets (usage carries over)."""
        tenant = self.get(name)
        tenant.ledger.spec = quota
        self.hacfs.maintenance.register_tenant(name, quota.weight)
        with self.hacfs._journaled("tenant_quota",
                                   {"tenant": name, "quota": quota.to_obj()}):
            self._persist()

    # -- attribution hooks --------------------------------------------------

    def tenant_of_path(self, path: str) -> Optional[str]:
        """The tenant owning *path*, or None for shared-namespace paths
        (the maintenance scheduler's bucket resolver)."""
        if not self._tenants or not path.startswith(TENANTS_ROOT):
            return None
        rest = path[len(TENANTS_ROOT):]
        if not rest.startswith("/"):
            return None
        name = rest[1:].split("/", 1)[0]
        return name if name in self._tenants else None

    # -- reporting ----------------------------------------------------------

    def describe(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant usage/quota/pending — ``health()``'s tenant section."""
        pending = self.hacfs.maintenance.pending_by_tenant()
        out: Dict[str, Dict[str, object]] = {}
        for name in self.names():
            tenant = self._tenants[name]
            out[name] = {
                "root": tenant.root,
                "usage": tenant.ledger.usage(),
                "quota": tenant.ledger.spec.to_obj(),
                "pending": pending.get(name, 0),
            }
        return out

    # -- persistence --------------------------------------------------------

    def _attach(self, name: str, spec: QuotaSpec) -> "Tenant":
        tenant = Tenant(self, name, spec)
        self._tenants[name] = tenant
        self.hacfs.maintenance.register_tenant(name, spec.weight)
        # a tenant namespace is always index-fresh on its own writes: the
        # watch makes every mutation enqueue (and thus count against the
        # doc budget and land in the tenant's fair-share bucket) instead
        # of waiting for a whole-tree ssync
        self.hacfs.watch(tenant.root)
        return tenant

    def _persist(self) -> None:
        self.hacfs.meta.flush_aux(TENANTS_RECORD, {
            name: {"quota": t.ledger.spec.to_obj()}
            for name, t in self._tenants.items()
        })

    def reload(self) -> int:
        """Re-attach every persisted tenant (the restore path); usage is
        recounted from the live tree, which recovery already healed."""
        raw = self.hacfs.meta.load_aux(TENANTS_RECORD) or {}
        for name in sorted(raw):
            if name in self._tenants:
                continue
            spec = QuotaSpec.from_obj(raw[name].get("quota", {}))
            tenant = self._attach(name, spec)
            if self.hacfs.fs.isdir(tenant.root):
                tenant.recount()
        return len(self._tenants)


class Tenant:
    """The tenant-scoped facade — the public API surface of a namespace.

    Every method mirrors the :class:`HacFileSystem` call of the same name,
    with tenant-relative paths in and out.  Mutations charge the quota
    ledger first (a :class:`~repro.errors.QuotaExceeded` leaves no trace),
    run under a ``tenant.<op>`` span, and stamp the tenant id onto any
    journal intent they open.
    """

    def __init__(self, manager: TenantManager, name: str, spec: QuotaSpec):
        self.manager = manager
        self.name = name
        self.root = pathutil.join(TENANTS_ROOT, name)
        self.ledger = QuotaLedger(name, spec)
        self._hacfs = manager.hacfs
        self._stats = self._hacfs.counters.scoped(f"tenant.{name}")

    def __repr__(self):
        return f"Tenant({self.name!r}, root={self.root!r})"

    # -- path translation ---------------------------------------------------

    def _host(self, path: str) -> str:
        """Tenant-relative → host path; ``..`` cannot escape the root
        because it is collapsed lexically *before* the root is prefixed,
        clamping at the tenant's own root (chroot semantics)."""
        norm = pathutil.normalize(path if path.startswith("/") else "/" + path)
        comps: List[str] = []
        for comp in pathutil.split_components(norm):
            if comp == "..":
                if comps:
                    comps.pop()
            else:
                comps.append(comp)
        return self.root if not comps else self.root + "/" + "/".join(comps)

    def _rel(self, host_path: str) -> Optional[str]:
        """Host → tenant-relative path; None for paths outside the root."""
        if host_path == self.root:
            return "/"
        if host_path.startswith(self.root + "/"):
            return host_path[len(self.root):]
        return None

    @contextmanager
    def _op(self, op: str, **tags):
        """One facade operation: a tenant-tagged span, tenant-attributed
        journal intents, and a per-tenant op counter."""
        hacfs = self._hacfs
        self._stats.add("ops")
        prev = hacfs.journal.tenant
        hacfs.journal.tenant = self.name
        try:
            with hacfs.obs.trace.span(f"tenant.{op}", tenant=self.name,
                                      **tags):
                yield
        finally:
            hacfs.journal.tenant = prev

    # -- quota plumbing -----------------------------------------------------

    def _indexed_docs(self) -> int:
        """Documents the shared index holds under this root, plus updates
        still queued in this tenant's drain bucket."""
        count = 0
        scope_count = getattr(self._hacfs.engine, "scope_count", None)
        if callable(scope_count):
            count = scope_count(self.root)
        pending = self._hacfs.maintenance.pending_by_tenant()
        return count + pending.get(self.name, 0)

    def _charge_new_file(self, nbytes: int) -> None:
        self.ledger.check("inodes", 1)
        self.ledger.check("bytes", nbytes)
        self.ledger.check_docs(self._indexed_docs())

    def usage(self) -> Dict[str, int]:
        return self.ledger.usage()

    def quota(self) -> QuotaSpec:
        return self.ledger.spec

    def recount(self) -> Dict[str, int]:
        """Recompute the ledger from the live tree (attach/restore/audit)."""
        counted = recompute_usage(self._hacfs.fs, self.root)
        self.ledger.inodes = counted["inodes"]
        self.ledger.bytes = counted["bytes"]
        return counted

    # -- hierarchical operations --------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755):
        with self._op("mkdir", path=path):
            self.ledger.check("inodes", 1)
            stat = self._hacfs.mkdir(self._host(path), mode=mode)
            self.ledger.commit("inodes", 1)
            return stat

    def makedirs(self, path: str, mode: int = 0o755) -> None:
        host = self._host(path)
        missing = sum(1 for p in list(pathutil.ancestors(host)) + [host]
                      if p.startswith(self.root) and not self._hacfs.exists(p))
        with self._op("makedirs", path=path):
            self.ledger.check("inodes", missing)
            self._hacfs.makedirs(host, mode=mode)
            self.ledger.commit("inodes", missing)

    def rmdir(self, path: str) -> None:
        host = self._host(path)
        if host == self.root:
            raise InvalidArgument(path, "cannot remove the tenant root")
        with self._op("rmdir", path=path):
            self._hacfs.rmdir(host)
            self.ledger.commit("inodes", -1)

    def create(self, path: str, mode: int = 0o644):
        with self._op("create", path=path):
            self._charge_new_file(0)
            stat = self._hacfs.create(self._host(path), mode=mode)
            self.ledger.commit("inodes", 1)
            return stat

    def write_file(self, path: str, data: bytes, append: bool = False) -> int:
        host = self._host(path)
        with self._op("write_file", path=path):
            is_new = not self._hacfs.exists(host, follow=False)
            old = 0 if is_new else (self._hacfs.fs.stat(host).size
                                    if self._hacfs.fs.isfile(host) else 0)
            new = old + len(data) if append else len(data)
            if is_new:
                self._charge_new_file(new)
            else:
                self.ledger.check("bytes", new - old)
            n = self._hacfs.write_file(host, data, append=append)
            if is_new:
                self.ledger.commit("inodes", 1)
            self.ledger.commit("bytes", new - old)
            return n

    def read_file(self, path: str) -> bytes:
        with self._op("read_file", path=path):
            return self._hacfs.read_file(self._host(path))

    def truncate(self, path: str, size: int = 0) -> None:
        host = self._host(path)
        with self._op("truncate", path=path):
            old = self._hacfs.fs.stat(host).size
            self.ledger.check("bytes", size - old)
            self._hacfs.truncate(host, size)
            self.ledger.commit("bytes", size - old)

    def unlink(self, path: str) -> None:
        host = self._host(path)
        with self._op("unlink", path=path):
            is_file = (not self._hacfs.islink(host)
                       and self._hacfs.fs.isfile(host))
            released = self._hacfs.fs.stat(host).size if is_file else 0
            self._hacfs.unlink(host)
            if is_file:
                self.ledger.commit("inodes", -1)
                self.ledger.commit("bytes", -released)

    def symlink(self, target: str, linkpath: str):
        # links are uncharged: re-evaluation materialises and drops them
        # outside the facade, so charging user links would drift the ledger
        host_target = target if "://" in target else self._host(target)
        with self._op("symlink", link=linkpath):
            return self._hacfs.symlink(host_target, self._host(linkpath))

    def rename(self, old: str, new: str) -> None:
        with self._op("rename", old=old, new=new):
            self._hacfs.rename(self._host(old), self._host(new))

    # -- read-side pass-throughs --------------------------------------------

    def stat(self, path: str):
        return self._hacfs.stat(self._host(path))

    def lstat(self, path: str):
        return self._hacfs.lstat(self._host(path))

    def listdir(self, path: str = "/") -> List[str]:
        return self._hacfs.listdir(self._host(path))

    def readlink(self, path: str) -> str:
        text = self._hacfs.readlink(self._host(path))
        if "://" in text:
            return text
        return self._rel(pathutil.normalize(text)) or text

    def exists(self, path: str, follow: bool = True) -> bool:
        return self._hacfs.exists(self._host(path), follow=follow)

    def isdir(self, path: str) -> bool:
        return self._hacfs.isdir(self._host(path))

    def isfile(self, path: str) -> bool:
        return self._hacfs.isfile(self._host(path))

    def islink(self, path: str) -> bool:
        return self._hacfs.islink(self._host(path))

    def chmod(self, path: str, mode: int) -> None:
        with self._op("chmod", path=path):
            self._hacfs.chmod(self._host(path), mode)

    # -- descriptor I/O -----------------------------------------------------

    def open(self, path: str, mode: str = "r") -> int:
        return self._hacfs.open(self._host(path), mode)

    def read(self, fd: int, size: int = -1) -> bytes:
        return self._hacfs.read(fd, size)

    def write(self, fd: int, data: bytes) -> int:
        with self._op("write", fd=fd):
            self.ledger.check("bytes", len(data))
            n = self._hacfs.write(fd, data)
            self.ledger.commit("bytes", n)
            return n

    def lseek(self, fd: int, offset: int, whence: int = 0) -> int:
        return self._hacfs.lseek(fd, offset, whence)

    def close(self, fd: int) -> None:
        self._hacfs.close(fd)

    # -- semantic operations ------------------------------------------------

    def _resolve_dir(self, path: str) -> Optional[int]:
        """Query dir-references resolve in the *tenant's* namespace."""
        return self._hacfs.dirmap.uid_of(self._host(path))

    def smkdir(self, path: str, query: str) -> str:
        with self._op("smkdir", path=path, query=query):
            self.ledger.check("inodes", 1)
            canon = self._hacfs.smkdir(self._host(path), query,
                                       resolve_dir=self._resolve_dir)
            self.ledger.commit("inodes", 1)
            return self._rel(canon) or canon

    def set_query(self, path: str, query: Optional[str]) -> None:
        with self._op("set_query", path=path):
            self._hacfs.set_query(self._host(path), query,
                                  resolve_dir=self._resolve_dir)

    def get_query(self, path: str) -> Optional[str]:
        _uid, state = self._hacfs._state_of(self._host(path))
        if state.query is None:
            return None
        return state.query.to_text(
            lambda uid: self._rel(self._hacfs.dirmap.path_of(uid) or "")
            or self._hacfs.dirmap.path_of(uid))

    def is_semantic(self, path: str) -> bool:
        return self._hacfs.is_semantic(self._host(path))

    def links(self, path: str) -> Dict[str, tuple]:
        return self._hacfs.links(self._host(path))

    def prohibited(self, path: str) -> List[str]:
        return self._hacfs.prohibited(self._host(path))

    def classify(self, link_path: str) -> Optional[str]:
        return self._hacfs.classify(self._host(link_path))

    def make_permanent(self, link_path: str) -> None:
        with self._op("make_permanent", link=link_path):
            self._hacfs.make_permanent(self._host(link_path))

    def unprohibit(self, dir_path: str, target_text: str) -> bool:
        target = target_text if "://" in target_text \
            else self._host(target_text)
        with self._op("unprohibit", path=dir_path):
            return self._hacfs.unprohibit(self._host(dir_path), target)

    def sact(self, link_path: str) -> List[str]:
        return self._hacfs.sact(self._host(link_path))

    def ssync(self, path: str = "/"):
        with self._op("ssync", path=path):
            return self._hacfs.ssync(self._host(path))

    def watch(self, path: str = "/") -> str:
        with self._op("watch", path=path):
            host_root = self._hacfs.watch(self._host(path))
            return self._rel(host_root) or host_root

    def unwatch(self, path: str = "/") -> bool:
        with self._op("unwatch", path=path):
            return self._hacfs.unwatch(self._host(path))

    def barrier(self) -> int:
        """Drain only this tenant's pending maintenance (fair-share: a
        neighbour's write storm stays in the neighbour's bucket)."""
        return self._hacfs.maintenance.barrier(tenant=self.name)

    # -- search -------------------------------------------------------------

    def glimpse(self, query: str, scope_path: str = "/",
                consistency: str = "strong") -> List[str]:
        """Ad-hoc search confined to the tenant subtree.

        The parsed query is wrapped in a ``scope:`` term for the tenant
        root, so the CAS index answers the subtree restriction from its
        prefix partitions in one probe (PR 9) — no per-tenant index, no
        walk.  ``strong`` drains only this tenant's bucket first
        (fair-share), ``snapshot`` answers from the last published
        version with no barrier at all.
        """
        from repro.cba.queryparser import parse_query
        from repro.cba import evaluator, queryast

        if consistency not in ("strong", "snapshot"):
            raise ValueError(f"unknown consistency level: {consistency!r}")
        hacfs = self._hacfs
        consistency = hacfs.admission.admit_read(consistency)
        host_scope = self._host(scope_path)
        with self._op("glimpse", query=query, consistency=consistency):
            ast = parse_query(query, resolve_dir=self._resolve_dir)
            scoped = queryast.scoped(ast, host_scope)
            resolve = lambda uid: hacfs.scopes.provided_by_uid(uid).local
            if consistency == "snapshot":
                view = hacfs.engine.snapshot_view()
                hits = evaluator.evaluate(scoped, view, resolve_dirref=resolve,
                                          scope=view.all_docs())
                docs = (view.doc_by_id(d) for d in hits)
            else:
                self.barrier()
                hits = evaluator.evaluate(scoped, hacfs.engine,
                                          resolve_dirref=resolve, scope=None)
                docs = (hacfs.engine.doc_by_id(d) for d in hits)
            out = []
            for doc in docs:
                if doc is None:
                    continue
                rel = self._rel(doc.path)
                if rel is not None:
                    out.append(rel)
        return sorted(out)

    # -- status -------------------------------------------------------------

    def health(self, path: Optional[str] = None) -> Dict[str, object]:
        """The tenant's view of :meth:`HacFileSystem.health`: shared-plane
        sections pass through, the ``directories`` section is filtered to
        (and rebased under) the tenant root, and a ``tenant`` section adds
        this tenant's usage/quota/pending."""
        host = self._hacfs.health(self._host(path) if path is not None
                                  else None)
        directories = {}
        for dir_path, entry in host["directories"].items():
            rel = self._rel(dir_path)
            if rel is not None:
                directories[rel] = entry
        report = dict(host)
        report["directories"] = directories
        report["tenant"] = {
            "name": self.name,
            "root": self.root,
            "usage": self.ledger.usage(),
            "quota": self.ledger.spec.to_obj(),
            "pending": self._hacfs.maintenance.pending_by_tenant()
                           .get(self.name, 0),
        }
        return report

    def describe_scope(self, path: str = "/") -> Dict[str, object]:
        return self._hacfs.describe_scope(self._host(path))
