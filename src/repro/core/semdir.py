"""Per-directory HAC state and its persistence (the MetaStore).

The paper's Table 1 analysis is explicit about what HAC does on every
``mkdir``: it creates and initialises *to empty* the data structures storing
the directory's query, its query-result, and its permanent and prohibited
link sets; records the directory in the global map; and adds an empty node
to the dependency graph — all persisted to disk.  We reproduce that
faithfully: **every** directory gets a :class:`SemanticDirState`; a
directory is "semantic" exactly when a query has been attached to it.

:class:`MetaStore` persists each state record write-through onto the
simulated block device using the record codec, so the Makedir/Copy overheads
in the Table 1 bench come from real (simulated) I/O, and the space-overhead
bench can report HAC's metadata footprint the way the paper does (222 KB vs
210 KB in their example).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.util import serialization
from repro.util.bitmap import Bitmap
from repro.vfs.blockdev import BlockDevice
from repro.cba import queryast
from repro.core.links import LinkSets


class SemanticDirState:
    """Everything HAC knows about one directory beyond the VFS itself."""

    __slots__ = ("uid", "query", "query_text", "links", "result_cache",
                 "degraded_remote", "degraded_shards")

    def __init__(self, uid: int):
        self.uid = uid
        #: the user's query AST, or None for a plain directory
        self.query: Optional[queryast.Node] = None
        #: the original query text as the user typed it (for display)
        self.query_text: Optional[str] = None
        self.links = LinkSets()
        #: cached bitmap of local doc-ids in the last evaluated result
        #: (the paper's N/8-byte stored representation)
        self.result_cache = Bitmap()
        #: namespace id → virtual time since when that back-end has been
        #: unreachable; its links are last-known-good (stale) while listed
        self.degraded_remote: Dict[str, float] = {}
        #: search-cluster shard id → virtual time since when that shard has
        #: been missing from this directory's evaluations (same degradation
        #: contract as ``degraded_remote``, for the local sharded engine)
        self.degraded_shards: Dict[str, float] = {}

    @property
    def is_semantic(self) -> bool:
        return self.query is not None

    def to_obj(self):
        return {
            "uid": self.uid,
            "query": self.query.to_obj() if self.query is not None else None,
            "query_text": self.query_text,
            "links": self.links.to_obj(),
            "result": self.result_cache.to_bytes(),
            "degraded_remote": dict(self.degraded_remote),
            "degraded_shards": dict(self.degraded_shards),
        }

    @classmethod
    def from_obj(cls, obj) -> "SemanticDirState":
        state = cls(obj["uid"])
        if obj["query"] is not None:
            state.query = queryast.from_obj(obj["query"])
        state.query_text = obj["query_text"]
        state.links = LinkSets.from_obj(obj["links"])
        state.result_cache = Bitmap.from_bytes(obj["result"])
        # records written before degradation tracking lack the fields
        state.degraded_remote = {str(k): float(v)
                                 for k, v in obj.get("degraded_remote", {}).items()}
        state.degraded_shards = {str(k): float(v)
                                 for k, v in obj.get("degraded_shards", {}).items()}
        return state

    def __repr__(self):
        kind = "semantic" if self.is_semantic else "plain"
        return f"SemanticDirState(uid={self.uid}, {kind}, {self.links!r})"


class MetaStore:
    """Write-through persistence of HAC state onto the block device.

    Records:
      * ``semdir:<uid>`` — one per directory;
      * ``globalmap`` — the UID ↔ path table;
      * ``depgraph`` — dependency edges.

    The in-memory copy is authoritative during a run; the store exists to
    (a) charge honest I/O for every state mutation and (b) support
    save/restore across :class:`HacFileSystem` instances (tested by the
    durability tests).
    """

    def __init__(self, device: BlockDevice):
        self.device = device
        self._states: Dict[int, SemanticDirState] = {}

    # -- directory state ------------------------------------------------------

    def create(self, uid: int) -> SemanticDirState:
        if uid in self._states:
            raise ValueError(f"state already exists for uid {uid}")
        state = SemanticDirState(uid)
        self._states[uid] = state
        self.flush(uid)
        return state

    def get(self, uid: int) -> Optional[SemanticDirState]:
        return self._states.get(uid)

    def require(self, uid: int) -> SemanticDirState:
        state = self._states.get(uid)
        if state is None:
            raise KeyError(f"no HAC state for uid {uid}")
        return state

    def drop(self, uid: int) -> None:
        self._states.pop(uid, None)
        self.device.delete_record(f"semdir:{uid}")

    def flush(self, uid: int) -> None:
        """Write-through one directory's record to the device."""
        state = self._states[uid]
        self.device.write_record(f"semdir:{uid}",
                                 serialization.dumps(state.to_obj()))

    def flush_aux(self, name: str, obj) -> None:
        """Persist an auxiliary structure (global map, dependency graph)."""
        self.device.write_record(name, serialization.dumps(obj))

    def load_aux(self, name: str):
        raw = self.device.read_record(name)
        return serialization.loads(raw) if raw is not None else None

    def uids(self) -> Iterator[int]:
        return iter(list(self._states))

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, uid: int) -> bool:
        return uid in self._states

    # -- reporting / durability -------------------------------------------------

    def metadata_bytes(self) -> int:
        """Bytes of persisted HAC metadata (the paper's +5 % figure)."""
        return self.device.record_bytes

    def reload_all(self) -> None:
        """Rebuild the in-memory states from device records (crash recovery)."""
        self._states.clear()
        for key in self.device.record_keys():
            if key.startswith("semdir:"):
                raw = self.device.read_record(key)
                if raw is None:
                    continue
                state = SemanticDirState.from_obj(serialization.loads(raw))
                self._states[state.uid] = state
