"""HacFileSystem — the user-level interposition layer (paper §4).

The paper implemented HAC as a dynamically linked library intercepting all
file-system calls for a user's personal name space, with no kernel changes.
This class is that library: every user-visible operation goes through it,
and each one carries the extra HAC work the paper describes:

* ``mkdir`` also registers the directory in the global map, creates and
  persists its (empty) query/link-set record, and adds a node to the
  dependency graph — the Makedir overhead of Table 1;
* ``create`` also initialises the attribute-cache entry — the Copy
  overhead;
* ``stat`` consults the attribute cache — the Scan speed-up;
* ``unlink`` of a link in a semantic directory records a *prohibition*;
* ``symlink`` into a semantic directory records a *permanent* link;
* ``rename`` updates the global UID map (queries referencing the moved
  directory stay valid) and triggers the scope-consistency cascade;
* the semantic command set — ``smkdir``, ``set_query``/``get_query``,
  ``ssync``, ``sact``, ``smount`` — extends the usual commands.

File *content* changes (create/write/delete) deliberately do **not**
re-evaluate queries: data consistency is settled at reindex time (§2.4).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    CorruptRecord,
    DeviceCrashed,
    FileNotFound,
    InvalidArgument,
    NotASemanticDirectory,
)
from repro.obs import Observability
from repro.util import pathutil
from repro.util.clock import VirtualClock
from repro.util.idmap import GlobalDirectoryMap
from repro.util.stats import Counters
from repro.vfs.attrcache import AttributeCache
from repro.vfs.fd import FDTable
from repro.vfs.filesystem import FileSystem, StatResult
from repro.vfs.inode import FileNode, SymlinkNode
from repro.vfs.walker import walk
from repro.cba import agrep
from repro.cba.engine import CBAEngine
from repro.cba.incremental import ReindexPlan
from repro.cba.queryast import content_projection
from repro.cba.queryparser import parse_query
from repro.cba.transducers import default_transducer
from repro.core.admission import AdmissionController
from repro.core.consistency import ConsistencyManager
from repro.core.datacon import ReindexScheduler
from repro.core.depgraph import DependencyGraph
from repro.core.journal import Journal
from repro.core.links import Target
from repro.core.scheduler import MaintenanceScheduler
from repro.core.scope import ScopeResolver
from repro.core.semdir import MetaStore
from repro.core.watch import WatchManager
from repro.core.tenant import TenantManager
from repro.remote.namespace import NameSpace
from repro.remote.semmount import SemanticMountTable


def _resolve_backend(backend, engine_factory):
    """Fold the deprecated ``engine_factory=`` shim into the unified
    ``backend=`` seam (one release of :class:`DeprecationWarning`, then
    the kwarg goes away).  Returns an engine factory or None (the
    built-in monolith path)."""
    if engine_factory is not None:
        import warnings

        warnings.warn(
            "HacFileSystem(engine_factory=...) is deprecated; pass "
            "backend=open_backend(spec) (repro.cba.backend) instead",
            DeprecationWarning, stacklevel=3)
        if backend is None:
            return engine_factory
    if backend is None:
        return None
    from repro.cba.backend import open_backend

    return open_backend(backend)


class HacFileSystem:
    """A personal name space with both path-name and content-based access."""

    def __init__(self, fs: Optional[FileSystem] = None,
                 clock: Optional[VirtualClock] = None,
                 counters: Optional[Counters] = None,
                 num_blocks: int = 64,
                 attr_cache_capacity: int = 256,
                 fast_path: bool = True,
                 obs: Optional[Observability] = None,
                 engine_factory=None,
                 path_map: bool = True,
                 segmented: bool = True,
                 backend=None):
        engine_factory = _resolve_backend(backend, engine_factory)
        self.counters = counters if counters is not None else Counters()
        self.clock = clock if clock is not None else VirtualClock()
        #: the observability plane — disabled by default; enable with
        #: ``hac.obs.enable()`` (or pass one in already enabled)
        self.obs = obs if obs is not None else Observability(
            clock=self.clock, counters=self.counters)
        # *path_map* only shapes a FileSystem built here; a caller-supplied
        # *fs* keeps whatever resolution cache it was constructed with
        self.fs = fs if fs is not None else FileSystem(
            name="hac", clock=self.clock, counters=self.counters,
            path_map=path_map)
        self._hac = self.counters.scoped("hac")
        self.dirmap = GlobalDirectoryMap()
        self.meta = MetaStore(self.fs.device)
        self.journal = Journal(self.fs.device, self.counters,
                               tracer=self.obs.trace)
        self.last_recovery = None
        self.depgraph = DependencyGraph()
        # the engine seam: anything honouring the CBAEngine protocol works
        # here — a ShardedSearchCluster via repro.cluster.ClusterFactory,
        # for instance (the paper's CBA generality argument, §2.2)
        if engine_factory is not None:
            self.engine = engine_factory(loader=self._load_doc,
                                         counters=self.counters,
                                         clock=self.clock,
                                         transducer=default_transducer,
                                         num_blocks=num_blocks,
                                         fast_path=fast_path)
        else:
            self.engine = CBAEngine(loader=self._load_doc,
                                    num_blocks=num_blocks,
                                    transducer=default_transducer,
                                    counters=self.counters,
                                    fast_path=fast_path,
                                    segmented=segmented)
        self.semmounts = SemanticMountTable(uid_of=self.dirmap.uid_of,
                                            path_of=self.dirmap.path_of)
        self.scopes = ScopeResolver(self)
        self.consistency = ConsistencyManager(self)
        #: the write-side maintenance pipeline (eager by default; flip to
        #: batched with ``maintenance.set_mode("batched")``)
        self.maintenance = MaintenanceScheduler(self)
        #: admission gate (disabled by default) consulted before queries
        #: and mutations when back-ends degrade
        self.admission = AdmissionController(self)
        self.scheduler = ReindexScheduler(self)
        self.watches = WatchManager(self)
        self.attrcache = AttributeCache(capacity=attr_cache_capacity,
                                        counters=self.counters)
        #: path → (fsid, ino, type) companion to the attribute cache
        self._stat_identity: Dict[str, Tuple[str, int, object]] = {}
        self.fdtable = FDTable()
        #: descriptor table the engine loader reads documents through
        self._loader_fds = FDTable()
        #: fsid → (FileSystem, mount prefix in the host name space)
        self._fs_registry: Dict[str, Tuple[FileSystem, str]] = {
            self.fs.fsid: (self.fs, "")
        }
        # the root's (empty) HAC state — uid 0 is pre-registered in the map
        self.meta.create(GlobalDirectoryMap.ROOT_UID)
        #: multi-tenant namespaces over this shared file system; empty
        #: until the first ``tenants.create(...)`` and costs nothing before
        self.tenants = TenantManager(self)
        self._persist_maps()
        self._wire_obs()

    # ==================================================================
    # plumbing
    # ==================================================================

    def _wire_obs(self) -> None:
        """Thread the observability plane through every component.

        Components hold the tracer as a plain attribute (disabled-mode cost:
        one attribute check), so re-wiring after a structure is rebuilt —
        ``reload_persisted`` replaces the dependency graph, ``restore``
        replaces everything — is just re-assignment."""
        tracer = self.obs.trace
        self.fs.tracer = tracer
        self.fs.device.tracer = tracer
        self.engine.tracer = tracer
        self.engine.metrics = self.obs.metrics
        self.depgraph.tracer = tracer

    def _load_doc(self, key) -> str:
        """Engine loader: fetch a document's current text by (fsid, ino).

        The fetch goes through the user-level library like any other access
        (§4): the file's name is resolved in the personal name space before
        the data is read — this is precisely why indexing and searching
        through HAC cost more than running Glimpse directly (Tables 3/4).
        """
        fsid, ino = key
        entry = self._fs_registry.get(fsid)
        if entry is None:
            return ""
        owner, _prefix = entry
        node = owner.node_by_ino(ino)
        if not isinstance(node, FileNode):
            return ""
        path = owner.path_of_ino(ino)
        if path is not None:
            # library-level resolution, then a native open/read/close cycle
            try:
                owner.resolve(path)
                fd = owner.open(self._loader_fds, path, "r")
                try:
                    data = owner.read(self._loader_fds, fd)
                finally:
                    owner.close(self._loader_fds, fd)
                return data.decode("utf-8", errors="replace")
            except Exception:
                pass
        owner.device.charge_read(len(node.data))
        return bytes(node.data).decode("utf-8", errors="replace")

    def path_for_target(self, target: Target) -> Optional[str]:
        """Current host-name-space path of a local target, if it is alive."""
        if not target.is_local:
            return None
        entry = self._fs_registry.get(target.realm)
        if entry is None:
            return None
        owner, prefix = entry
        inner = owner.path_of_ino(target.ino)
        if inner is None:
            return None
        return pathutil.join(prefix, inner.lstrip("/")) if prefix else inner

    def _canonical_dir(self, path: str) -> str:
        """The registered (symlink-free) path of an existing directory."""
        res = self.fs.resolve(path)
        prefix = self._fs_registry.get(res.fs.fsid, (None, None))[1]
        inner = res.fs.path_of_ino(res.node.ino)
        if inner is None:
            return pathutil.normalize(path)
        if prefix:
            return pathutil.join(prefix, inner.lstrip("/")) if inner != "/" else prefix
        return inner

    def _uid_of_dir(self, path: str) -> int:
        uid = self.dirmap.uid_of(self._canonical_dir(path))
        if uid is None:
            raise FileNotFound(path, "directory unknown to HAC")
        return uid

    def _chain_uids(self, dirpath: str) -> List[int]:
        """UIDs of every directory from the root down to *dirpath*."""
        uids: List[int] = []
        canon = self._canonical_dir(dirpath)
        for p in list(pathutil.ancestors(canon)) + [canon]:
            uid = self.dirmap.uid_of(p)
            if uid is not None:
                uids.append(uid)
        return uids

    def _persist_maps(self) -> None:
        self.meta.flush_aux("globalmap",
                            {str(u): p for u, p in self.dirmap.items()})
        self.meta.flush_aux("depgraph", self.depgraph.to_obj())

    def _planned_path(self, path: str) -> str:
        """Canonical path a not-yet-created entry will get (for intents)."""
        norm = pathutil.normalize(path)
        try:
            parent = self._canonical_dir(pathutil.dirname(norm))
        except Exception:
            return norm
        return pathutil.join(parent, pathutil.basename(norm))

    @contextmanager
    def _journaled(self, op: str, payload: Dict[str, object]):
        """Run a multi-structure mutation under a write-ahead intent.

        Commit on success; on a device crash, abandon (the wal stays on the
        device for :meth:`restore` to roll back); on any soft failure (e.g.
        a transient ENOSPC), roll back in process so the operation is fully
        absent.  Nested uses (``smkdir`` → ``mkdir``) join the outer intent.

        The whole operation runs under a ``hac.<op>`` trace span, opened
        *before* ``journal.begin`` so the journal can stamp the intent's
        sequence onto it as the span's op id — the journal↔trace
        correlation the crash sweep asserts on.  Nested uses produce nested
        spans with no op id of their own (the outer intent owns the op).
        """
        with self.obs.trace.span(f"hac.{op}", **payload):
            intent = self.journal.begin(op, payload)
            if intent is None:
                yield None
                return
            try:
                yield intent
            except DeviceCrashed:
                # the device is frozen: nothing more can be written, so leave
                # the wal in place — restore() rolls this intent back
                self.journal.abandon(intent)
                raise
            except BaseException:
                from repro.core.recovery import rollback_in_process

                try:
                    rollback_in_process(self, intent)
                except Exception:
                    # rollback itself failed (device died mid-rollback): the
                    # wal is still on the device, restore() finishes the job
                    if self.journal.active is intent:
                        self.journal.abandon(intent)
                raise
            self.journal.commit(intent)

    def reload_persisted(self) -> None:
        """Reload every persisted structure from the device records
        (after an in-process rollback rewrote them)."""
        raw_map = self.meta.load_aux("globalmap") or {"0": "/"}
        self.dirmap.load_snapshot({int(u): p for u, p in raw_map.items()})
        raw_graph = self.meta.load_aux("depgraph")
        self.depgraph = (DependencyGraph.from_obj(raw_graph)
                         if raw_graph else DependencyGraph())
        self.depgraph.tracer = self.obs.trace
        self.meta.reload_all()
        self._clear_attrs()

    def _library_resolve(self, path: str) -> str:
        """The §4 interposition cost: HAC is a user-level library that
        resolves every path in the personal name space before the native
        file system resolves it again.  Returns the normalised path."""
        norm = pathutil.normalize(path)
        try:
            self.fs.resolve(pathutil.dirname(norm))
        except Exception:
            pass  # the real operation will raise the precise error
        return norm

    def _invalidate_attrs(self, norm: str) -> None:
        self.attrcache.invalidate(norm)
        self._stat_identity.pop(norm, None)

    def _clear_attrs(self) -> None:
        self.attrcache.clear()
        self._stat_identity.clear()

    def _state_of(self, path: str):
        uid = self._uid_of_dir(path)
        return uid, self.meta.require(uid)

    # ==================================================================
    # intercepted hierarchical operations
    # ==================================================================

    def mkdir(self, path: str, mode: int = 0o755) -> StatResult:
        """Create a directory plus its HAC bookkeeping (map, state, node)."""
        self._hac.add("mkdir")
        with self._journaled("mkdir", {"path": self._planned_path(path)}):
            stat = self.fs.mkdir(path, mode=mode)
            canon = self._canonical_dir(path)
            uid = self.dirmap.register(canon)
            self.depgraph.add_node(uid)
            parent_uid = self.dirmap.uid_of(pathutil.dirname(canon))
            if parent_uid is not None:
                self.depgraph.set_hierarchy_edge(uid, parent_uid)
            self.meta.create(uid)
            self._persist_maps()
        return stat

    def makedirs(self, path: str, mode: int = 0o755) -> None:
        norm = pathutil.normalize(path)
        built = "/"
        for comp in pathutil.split_components(norm):
            built = pathutil.join(built, comp)
            if not self.fs.exists(built):
                self.mkdir(built, mode=mode)

    def rmdir(self, path: str) -> None:
        self._hac.add("rmdir")
        canon = self._canonical_dir(path)
        with self._journaled("rmdir", {"path": canon}):
            self.fs.rmdir(canon)
            uid = self.dirmap.uid_of(canon)
            if uid is not None:
                self.dirmap.unregister(canon)
                self.depgraph.remove_node(uid)
                self.meta.drop(uid)
                self.semmounts.drop_uid(uid)
            self._invalidate_attrs(canon)
            self._persist_maps()

    def create(self, path: str, mode: int = 0o644) -> StatResult:
        """Create a file; HAC also primes the attribute cache (§4)."""
        self.admission.admit_write(path)
        self._hac.add("create")
        if self.obs.trace.enabled:
            self.obs.trace.event("hac.create", path=path)
        norm = self._library_resolve(path)
        stat = self.fs.create(path, mode=mode)
        self.attrcache.put(norm, stat.attrs)
        self._stat_identity[norm] = (stat.fsid, stat.ino, stat.type)
        self.watches.on_content_changed(norm)
        return stat

    def write_file(self, path: str, data: bytes, append: bool = False) -> int:
        self.admission.admit_write(path)
        self._hac.add("write_file")
        norm = self._library_resolve(path)
        n = self.fs.write_file(path, data, append=append)
        # maintain (rather than drop) the attribute-cache entry: HAC owns
        # the write path, so the fresh attributes are known here (§4)
        stat = self.fs.lstat(path)
        self.attrcache.put(norm, stat.attrs)
        self._stat_identity[norm] = (stat.fsid, stat.ino, stat.type)
        self.watches.on_content_changed(norm)
        return n

    def read_file(self, path: str) -> bytes:
        """Read a file; remote links fetch through their name space."""
        self._hac.add("read_file")
        self._library_resolve(path)
        res = self.fs.resolve(path, follow=False)
        if isinstance(res.node, SymlinkNode) and "://" in res.node.target:
            namespace, _, doc = res.node.target.partition("://")
            ns = self.semmounts.require(namespace)
            return ns.fetch(doc).encode("utf-8")
        return self.fs.read_file(path)

    def truncate(self, path: str, size: int = 0) -> None:
        self.fs.truncate(path, size)
        self._invalidate_attrs(pathutil.normalize(path))
        self.watches.on_content_changed(pathutil.normalize(path))

    def unlink(self, path: str) -> None:
        """Remove a file or link; deleting a tracked link in a semantic
        directory records a prohibition (§2.3)."""
        self._hac.add("unlink")
        if self.obs.trace.enabled:
            self.obs.trace.event("hac.unlink", path=path)
        res = self.fs.resolve(path, follow=False)
        parent_dir = pathutil.dirname(pathutil.normalize(path))
        name = pathutil.basename(pathutil.normalize(path))
        if isinstance(res.node, SymlinkNode):
            uid = self.dirmap.uid_of(self._canonical_dir(parent_dir))
            state = self.meta.get(uid) if uid is not None else None
            if state is not None and state.is_semantic \
                    and state.links.target_of(name) is not None:
                state.links.prohibit(name)
                self.fs.unlink(path)
                self.meta.flush(uid)
                self._hac.add("prohibitions")
                # the directory's own result changed too: refresh it (the
                # prohibition keeps the link out) and cascade to dependents
                self.consistency.on_scope_changed([uid], include_origins=True)
                return
            self.fs.unlink(path)
            self._invalidate_attrs(pathutil.normalize(path))
            self.consistency.on_scope_changed(self._chain_uids(parent_dir))
            return
        key = (res.fs.fsid, res.node.ino) if isinstance(res.node, FileNode) \
            else None
        self.fs.unlink(path)
        self._invalidate_attrs(pathutil.normalize(path))
        # the index entry lingers until reindex (data inconsistency, §2.4) —
        # unless a watch covers the file, which withdraws it immediately
        if key is not None:
            self.watches.on_file_removed(key, parent_dir)
        self.consistency.on_scope_changed(self._chain_uids(parent_dir))

    def symlink(self, target: str, linkpath: str) -> StatResult:
        """Create a link; inside a semantic directory it becomes permanent
        (and lifts any prohibition on its target, §2.3)."""
        self._hac.add("symlink")
        if self.obs.trace.enabled:
            self.obs.trace.event("hac.symlink", target=target, link=linkpath)
        stat = self.fs.symlink(target, linkpath)
        parent_dir = pathutil.dirname(pathutil.normalize(linkpath))
        name = pathutil.basename(pathutil.normalize(linkpath))
        uid = self.dirmap.uid_of(self._canonical_dir(parent_dir))
        state = self.meta.get(uid) if uid is not None else None
        if state is not None and state.is_semantic:
            resolved = self._target_of_link_text(target)
            if resolved is not None:
                state.links.add_permanent(name, resolved)
                self.meta.flush(uid)
                self._hac.add("permanent_links")
            self.consistency.on_scope_changed([uid])
        else:
            self.consistency.on_scope_changed(self._chain_uids(parent_dir))
        return stat

    def _target_of_link_text(self, text: str) -> Optional[Target]:
        if "://" in text:
            namespace, _, doc = text.partition("://")
            return Target.remote(namespace, doc)
        try:
            res = self.fs.resolve(text, follow=True)
        except Exception:
            return None
        if isinstance(res.node, FileNode):
            return Target.local(res.fs.fsid, res.node.ino)
        return None

    def rename(self, old: str, new: str) -> None:
        """Move anything; directory moves update the global map so queries
        referencing the moved directories stay valid (§2.5)."""
        self._hac.add("rename")
        res = self.fs.resolve(old, follow=False)
        moving_dir = res.node.is_dir
        old_canon = self._canonical_dir(old) if moving_dir else None
        old_parent = pathutil.dirname(pathutil.normalize(old))
        new_parent = pathutil.dirname(pathutil.normalize(new))
        origins = self._chain_uids(old_parent)
        payload = {"old": old_canon if moving_dir else pathutil.normalize(old),
                   "new": self._planned_path(new), "dir": moving_dir}
        with self._journaled("rename", payload):
            self.fs.rename(old, new)
            if moving_dir:
                new_canon = self._canonical_dir(new)
                self.dirmap.rename_subtree(old_canon, new_canon)
                # one-pass path rebase alongside the path map: registry
                # paths and CAS prefix keys follow the moved subtree
                # immediately, so scope: queries stay correct without
                # waiting for an ssync to notice the drift
                rebase = getattr(self.engine, "rebase_paths", None)
                if callable(rebase):
                    rebase(old_canon, new_canon)
                moved_uid = self.dirmap.uid_of(new_canon)
                new_parent_uid = self.dirmap.uid_of(pathutil.dirname(new_canon))
                if moved_uid is not None and new_parent_uid is not None:
                    self.depgraph.set_hierarchy_edge(moved_uid, new_parent_uid)
                self._clear_attrs()
                self._persist_maps()
                if moved_uid is not None:
                    origins.append(moved_uid)
            else:
                self._invalidate_attrs(pathutil.normalize(old))
                self._invalidate_attrs(pathutil.normalize(new))
                if isinstance(res.node, FileNode):
                    key = (res.fs.fsid, res.node.ino)
                    live = self.path_for_target(Target.local(*key))
                    if live is not None and not self.watches.on_file_moved(key, live):
                        self.maintenance.note_rename(key, live)
            origins.extend(self._chain_uids(new_parent))
            self.consistency.on_scope_changed(origins)

    # -- pass-throughs with caching ------------------------------------------

    def stat(self, path: str) -> StatResult:
        """Stat with the shared attribute cache in front (§4, Scan phase)."""
        self._hac.add("stat")
        norm = pathutil.normalize(path)
        cached = self.attrcache.get(norm)
        identity = self._stat_identity.get(norm)
        if cached is not None and identity is not None:
            if self.obs.trace.enabled:
                self.obs.trace.event("hac.stat", path=norm, cache="hit")
            fsid, ino, node_type = identity
            return StatResult(fsid, ino, node_type, cached)
        if self.obs.trace.enabled:
            self.obs.trace.event("hac.stat", path=norm, cache="miss")
        stat = self.fs.stat(path)
        self.attrcache.put(norm, stat.attrs)
        self._stat_identity[norm] = (stat.fsid, stat.ino, stat.type)
        return stat

    def lstat(self, path: str) -> StatResult:
        return self.fs.lstat(path)

    def listdir(self, path: str) -> List[str]:
        return self.fs.listdir(path)

    def readlink(self, path: str) -> str:
        return self.fs.readlink(path)

    def exists(self, path: str, follow: bool = True) -> bool:
        return self.fs.exists(path, follow=follow)

    def isdir(self, path: str) -> bool:
        return self.fs.isdir(path)

    def isfile(self, path: str) -> bool:
        return self.fs.isfile(path)

    def islink(self, path: str) -> bool:
        return self.fs.islink(path)

    def chmod(self, path: str, mode: int) -> None:
        self.fs.chmod(path, mode)
        self._invalidate_attrs(pathutil.normalize(path))

    # -- descriptor I/O through the per-process table ---------------------------

    def open(self, path: str, mode: str = "r") -> int:
        self._hac.add("open")
        self._library_resolve(path)
        fd = self.fs.open(self.fdtable, path, mode)
        if mode != "r":
            self._invalidate_attrs(pathutil.normalize(path))
        return fd

    def read(self, fd: int, size: int = -1) -> bytes:
        return self.fs.read(self.fdtable, fd, size)

    def write(self, fd: int, data: bytes) -> int:
        of = self.fdtable.get(fd)
        n = self.fs.write(self.fdtable, fd, data)
        live = of.fs.path_of_ino(of.node.ino)
        if live is not None:
            self._invalidate_attrs(live)
            self.watches.on_content_changed(live)
        return n

    def lseek(self, fd: int, offset: int, whence: int = 0) -> int:
        return self.fs.lseek(self.fdtable, fd, offset, whence)

    def close(self, fd: int) -> None:
        self.fs.close(self.fdtable, fd)

    # ==================================================================
    # semantic operations
    # ==================================================================

    def smkdir(self, path: str, query: str, resolve_dir=None) -> str:
        """Create a semantic directory: a real directory with a query.

        *resolve_dir* overrides how the query's directory references map
        to UIDs (the tenant facade resolves them inside its namespace).
        """
        self._hac.add("smkdir")
        # one intent for the whole operation — the nested mkdir/set_query
        # intents join it, so a crash anywhere undoes the directory entirely
        with self._journaled("smkdir",
                             {"path": self._planned_path(path),
                              "query": query}):
            self.mkdir(path)
            canon = self._canonical_dir(path)
            self.set_query(canon, query, resolve_dir=resolve_dir)
        return canon

    def set_query(self, path: str, query: Optional[str],
                  resolve_dir=None) -> None:
        """Attach, change, or (with None) detach a directory's query."""
        self._hac.add("set_query")
        uid, state = self._state_of(path)
        canon = self.dirmap.path_of(uid)
        # parse before opening the intent: a syntax error is not a mutation
        ast = None if query is None \
            else parse_query(query, resolve_dir=resolve_dir
                             if resolve_dir is not None
                             else self.dirmap.uid_of)
        with self._journaled("set_query", {"path": canon, "query": query}):
            if query is None:
                # detach: drop transient links, keep permanent/prohibited
                for name in list(state.links.transient):
                    entry = pathutil.join(canon, name)
                    if self.fs.islink(entry):
                        self.fs.unlink(entry)
                    state.links.forget(name)
                state.query = None
                state.query_text = None
                state.result_cache = state.result_cache.__class__()
                self.depgraph.set_reference_edges(uid, [])
                self.meta.flush(uid)
                self._persist_maps()
                self.consistency.on_scope_changed([uid])
                return
            # validate/settle reference edges first: a cycle must leave the
            # old query fully intact
            self.depgraph.set_reference_edges(uid, set(ast.dir_refs()))
            state.query = ast
            state.query_text = query
            self.meta.flush(uid)
            self._persist_maps()
            self.consistency.on_scope_changed([uid], include_origins=True)

    def get_query(self, path: str) -> Optional[str]:
        """The directory's query, rendered with *current* directory paths —
        references are stored as UIDs, so renames update what this shows."""
        _uid, state = self._state_of(path)
        if state.query is None:
            return None
        return state.query.to_text(self.dirmap.path_of)

    def is_semantic(self, path: str) -> bool:
        try:
            _uid, state = self._state_of(path)
        except (FileNotFound, KeyError):
            return False
        return state.is_semantic

    def links(self, path: str) -> Dict[str, Tuple[str, str]]:
        """Classified listing: name → (classification, target display)."""
        _uid, state = self._state_of(path)
        out: Dict[str, Tuple[str, str]] = {}
        for name, target in state.links.permanent.items():
            out[name] = ("permanent", str(target))
        for name, target in state.links.transient.items():
            out[name] = ("transient", str(target))
        return out

    def prohibited(self, path: str) -> List[str]:
        _uid, state = self._state_of(path)
        return sorted(str(t) for t in state.links.prohibited)

    def health(self, path: Optional[str] = None) -> Dict[str, object]:
        """One structured degradation report for the whole name space —
        the *only* status surface (the pre-PR 5 per-probe accessors are
        gone)::

            {"backends":    {ns_id: breaker state},          # semantic mounts
             "shards":      {shard_id: health},              # search back-end
             "tenants":     {name: {usage, quota, pending}}, # namespaces
             "directories": {dir_path: {
                 "degraded_remote": {ns_id: since},
                 "degraded_shards": {shard_id: since},
                 "degraded_links":  [link names]}}}

        Only degrading directories appear.  *path* restricts the
        ``directories`` section to one directory (still listed only when
        degrading).
        """
        self._hac.add("health")
        directories: Dict[str, Dict[str, object]] = {}
        if path is not None:
            wanted = [self._uid_of_dir(path)]
        else:
            wanted = list(self.meta.uids())
        for uid in wanted:
            state = self.meta.get(uid)
            if state is None or not (state.degraded_remote
                                     or state.degraded_shards):
                continue
            dir_path = self.dirmap.path_of(uid)
            if dir_path is None:
                continue
            directories[dir_path] = {
                "degraded_remote": dict(state.degraded_remote),
                "degraded_shards": dict(state.degraded_shards),
                "degraded_links": self._degraded_link_names(state),
            }
        breakers: Dict[str, object] = {
            ns_id: b.describe() for ns_id, b in self.semmounts.breakers().items()
        }
        engine_breakers = getattr(self.engine, "breakers", None)
        if callable(engine_breakers):
            for b in engine_breakers().values():
                breakers[b.name] = b.describe()
        return {"backends": self.semmounts.health(),
                "shards": self.engine.health(),
                "snapshots": self.engine.snapshot_info(),
                "breakers": breakers,
                "admission": self.admission.status(),
                "tenants": self.tenants.describe(),
                "directories": directories}

    def describe_scope(self, path: str) -> Dict[str, object]:
        """Scope composition for one directory, with its degradation state.

        Merges :meth:`Scope.describe` (local/remote/namespaces — what the
        directory provides) with the same per-directory degradation entry
        :meth:`health` reports, so the shell's scope display and
        ``hac.health()`` can never disagree about what a scope contains
        or which parts of it are degraded.
        """
        norm = self._canonical_dir(path)
        out: Dict[str, object] = dict(self.scopes.provided(norm).describe())
        entry = self.health(norm)["directories"].get(norm)
        out["degraded_remote"] = dict(entry["degraded_remote"]) if entry else {}
        out["degraded_shards"] = dict(entry["degraded_shards"]) if entry else {}
        return out

    def _degraded_link_names(self, state) -> List[str]:
        degraded_ns = set(state.degraded_remote)
        out = [name for name, t in state.links.transient.items()
               if t.is_remote and t.realm in degraded_ns]
        degraded_shards = set(state.degraded_shards)
        if degraded_shards:
            out.extend(name for name, t in state.links.transient.items()
                       if t.is_local
                       and self.engine.shard_of(t.key) in degraded_shards)
        return sorted(out)

    def classify(self, link_path: str) -> Optional[str]:
        """'permanent' | 'transient' | None for one directory entry."""
        parent = pathutil.dirname(pathutil.normalize(link_path))
        name = pathutil.basename(pathutil.normalize(link_path))
        _uid, state = self._state_of(parent)
        if name in state.links.permanent:
            return "permanent"
        if name in state.links.transient:
            return "transient"
        return None

    def make_permanent(self, link_path: str) -> None:
        """Promote a transient link so re-evaluation can never drop it
        (part of the paper's sophisticated-user API).

        Journaled like every other multi-structure mutation: the promote
        is only real once the state record lands, so a failed or torn
        flush rolls the in-memory classification back too — the chaos
        soak caught the un-journaled version persisting "permanent" in
        memory only, which a later crash silently demoted.
        """
        parent = pathutil.dirname(pathutil.normalize(link_path))
        name = pathutil.basename(pathutil.normalize(link_path))
        uid, state = self._state_of(parent)
        if name not in state.links.transient:
            raise InvalidArgument(link_path, "not a transient link")
        with self._journaled("make_permanent",
                             {"path": self.dirmap.path_of(uid),
                              "link": name}):
            target = state.links.transient.pop(name)
            state.links.add_permanent(name, target)
            self.meta.flush(uid)

    def unprohibit(self, dir_path: str, target_text: str) -> bool:
        """Lift a tombstone: *target_text* is a path or ``ns://doc`` URI."""
        uid, state = self._state_of(dir_path)
        target = self._target_of_link_text(target_text)
        if target is None:
            return False
        lifted = state.links.unprohibit(target)
        if lifted:
            self.meta.flush(uid)
            self.consistency.on_scope_changed([uid], include_origins=True)
        return lifted

    def sact(self, link_path: str) -> List[str]:
        """Extract the query-matching lines of a link's file (§4's ``sact``)."""
        self._hac.add("sact")
        parent = pathutil.dirname(pathutil.normalize(link_path))
        name = pathutil.basename(pathutil.normalize(link_path))
        _uid, state = self._state_of(parent)
        if not state.is_semantic:
            raise NotASemanticDirectory(parent)
        target = state.links.target_of(name)
        if target is None:
            raise FileNotFound(link_path, "not a tracked link")
        if target.is_remote:
            ns = self.semmounts.require(target.realm)
            text = ns.fetch(target.ident)
        else:
            text = self._load_doc(target.key)
        return agrep.matching_lines(text, content_projection(state.query))

    # ==================================================================
    # mounts
    # ==================================================================

    def mount(self, path: str, other: FileSystem) -> None:
        """Syntactic mount: graft *other* at *path* and adopt its
        directories into the HAC name space."""
        self._hac.add("mount")
        canon = self._canonical_dir(path)
        self.fs.mount(canon, other)
        self._fs_registry[other.fsid] = (other, canon)
        # adopt every directory of the mounted tree into map/graph/state
        for dirpath, _dirs, _files in walk(self.fs, canon):
            if self.dirmap.uid_of(dirpath) is None:
                uid = self.dirmap.register(dirpath)
                self.depgraph.add_node(uid)
                parent_uid = self.dirmap.uid_of(pathutil.dirname(dirpath))
                if parent_uid is not None:
                    self.depgraph.set_hierarchy_edge(uid, parent_uid)
                self.meta.create(uid)
        self._persist_maps()
        self.consistency.on_scope_changed(self._chain_uids(canon))

    def unmount(self, path: str) -> FileSystem:
        self._hac.add("unmount")
        canon = self._canonical_dir(path)
        detached = self.fs.unmount(canon)
        self._fs_registry.pop(detached.fsid, None)
        for uid in self.dirmap.subtree_uids(canon, strict=True):
            sub_path = self.dirmap.path_of(uid)
            self.dirmap.unregister(sub_path)
            self.depgraph.remove_node(uid)
            self.meta.drop(uid)
            self.semmounts.drop_uid(uid)
        self._persist_maps()
        self.consistency.on_scope_changed(self._chain_uids(canon))
        return detached

    def smount(self, path: str, namespace: NameSpace) -> None:
        """Semantic mount: bind a remote query system at *path* (§3.1)."""
        self._hac.add("smount")
        canon = self._canonical_dir(path)
        self.semmounts.mount(canon, namespace)
        self.consistency.on_scope_changed(self._chain_uids(canon),
                                          include_origins=True)

    def sunmount(self, path: str, namespace_id: Optional[str] = None) -> None:
        self._hac.add("sunmount")
        canon = self._canonical_dir(path)
        self.semmounts.unmount(canon, namespace_id)
        self.consistency.on_scope_changed(self._chain_uids(canon),
                                          include_origins=True)

    # ==================================================================
    # data consistency
    # ==================================================================

    def _publish_engine(self) -> None:
        """Publish a snapshot after an engine-mutating operation — but
        never while an intent is still open: a publish inside an intent
        could ship ops to replicas that an in-process rollback then cannot
        take back.  When this runs nested (``ssync`` → ``reindex``), the
        inner call is a no-op and the outer one publishes at commit."""
        if self.journal.active is not None:
            return
        version = self.engine.publish()
        self.journal.note_publish(version)

    def _persist_segments(self, force_seal: bool = False,
                          force_compact: bool = False) -> None:
        """Seal/compact the engine's segment store and sync it to disk.

        MUST run inside an open journal intent: segment records and the
        manifest are written (and compacted-away records deleted) under
        the intent's pre-image capture, so a crash at any device write
        rolls the whole segment list back to its pre-intent state.  The
        scheduler calls this from every ``sched_batch`` drain
        (threshold-policed); ``reindex`` forces a full seal + merge —
        reindex *is* compaction in the segmented design.  Engines
        without a store (clusters, segments-off) make this a no-op.
        """
        store = getattr(self.engine, "segments", None)
        if store is None:
            return
        from repro.util import serialization

        device = self.fs.device
        changed = False
        if force_seal or store.should_seal:
            with self.obs.trace.span("cba.seal", rows=len(store.memtable)):
                changed = store.seal() is not None or changed
        if force_compact or store.should_compact:
            with self.obs.trace.span("cba.compact",
                                     segments=len(store.frozen)):
                changed = store.compact() is not None or changed
        # on-device truth, not the in-memory set: a soft-failure rollback
        # can restore records underneath us, and re-deriving what needs
        # writing from record_keys() self-heals that divergence
        on_device = {key[4:] for key in device.record_keys()
                     if key.startswith("seg:")}
        live = {seg.seg_id for seg in store.frozen}
        for seg in store.frozen:
            if seg.seg_id not in on_device:
                device.write_record(f"seg:{seg.seg_id}",
                                    serialization.dumps(seg.to_obj()))
                changed = True
        for seg_id in sorted(on_device - live):
            device.delete_record(f"seg:{seg_id}")
            changed = True
        store.persisted = live
        if changed:
            manifest = dict(store.to_manifest())
            manifest["next"] = getattr(self.engine, "_next_doc_id", 0)
            manifest["num_blocks"] = self.engine.num_blocks
            self.meta.flush_aux("segmanifest", manifest)

    def reindex(self, path: str = "/") -> ReindexPlan:
        """Reindex the files under *path* (crossing syntactic mounts)."""
        self._hac.add("reindex")
        # drain pending maintenance first: the tree walk below must see the
        # engine state those events (and their reserved doc ids) produce
        self.maintenance.barrier()
        canon = self._canonical_dir(path)
        current: List[Tuple[Tuple[str, int], str, float]] = []
        for dirpath, _dirs, filenames in walk(self.fs, canon):
            for name in filenames:
                fpath = pathutil.join(dirpath, name)
                res = self.fs.resolve(fpath, follow=False)
                if isinstance(res.node, FileNode):
                    current.append(((res.fs.fsid, res.node.ino), fpath,
                                    res.node.attrs.mtime))
        current_keys = {key for key, _p, _m in current}
        previous = {}
        for key, mtime in self.engine.mtime_snapshot().items():
            doc = self.engine.doc_by_key(key)
            in_subtree = doc is not None and pathutil.is_ancestor(
                canon, doc.path, strict=False)
            if in_subtree or key in current_keys:
                previous[key] = mtime
        with self._journaled("reindex", {"path": canon}):
            plan = self.engine.reindex(current, previous=previous)
            # persist the compact file table (the paper's "compact
            # representation of the list of all file names") so the index maps
            # back to names after a crash; part of HAC's on-disk footprint
            self.meta.flush_aux("filetable", {
                str(doc.doc_id): [doc.path, doc.mtime]
                for doc in (self.engine.doc_by_id(d)
                            for d in self.engine.all_docs())
                if doc is not None
            })
            # reindex-as-merge: everything the reindex noted is sealed and
            # the frozen list folded to one segment, inside this intent
            self._persist_segments(force_seal=True, force_compact=True)
        self._publish_engine()
        return plan

    def ssync(self, path: str = "/") -> ReindexPlan:
        """Reindex *path* and re-evaluate every dependent directory —
        the paper's ``ssync`` command plus the §2.4 settle-everything pass."""
        self._hac.add("ssync")
        self.maintenance.barrier()
        canon = self._canonical_dir(path)
        with self._journaled("ssync", {"path": canon}):
            plan = self.reindex(path)
            if canon == "/":
                self.consistency.reevaluate_all()
            else:
                self.consistency.on_scope_changed(self._chain_uids(canon),
                                                  include_origins=True)
        self._publish_engine()
        return plan

    def fsck(self, repair: bool = False):
        """Audit the agreement of the VFS tree, global map, MetaStore,
        dependency graph, and index; optionally repair the safe cases.
        Returns a list of :class:`repro.core.fsck.Finding`."""
        from repro.core.fsck import hacfsck

        self._hac.add("fsck")
        self.maintenance.barrier()
        return hacfsck(self, repair=repair)

    def watch(self, path: str) -> str:
        """Keep the subtree at *path* index-fresh on every mutation
        (eager data consistency — the §2.4 'as soon as new mail comes in'
        policy).  Returns the watch root."""
        self._hac.add("watch")
        return self.watches.add(path)

    def unwatch(self, path: str) -> bool:
        self._hac.add("unwatch")
        return self.watches.remove(path)

    def adopt_engine(self, engine) -> None:
        """Swap in a different CBA engine — e.g. a freshly built
        :class:`~repro.cluster.ShardedSearchCluster` (the shell's
        ``smkcluster``) — and bring it in line with the tree: the new
        engine is wired into the observability plane, the corpus is
        (re)indexed into it, and every semantic directory is re-evaluated.
        """
        self._hac.add("adopt_engine")
        # drain into the *old* engine first: pending entries carry doc ids
        # reserved against it, and the new engine re-derives everything
        # from the tree during the ssync below anyway
        self.maintenance.barrier()
        self.engine = engine
        self._wire_obs()
        self.ssync("/")

    # ==================================================================
    # reporting / durability
    # ==================================================================

    def save_index(self) -> int:
        """Persist the content index to the device (Glimpse's index files).

        :meth:`restore` will then rebuild the engine without re-reading the
        corpus — recovery cost drops from Θ(corpus) to Θ(changes since the
        save).  Returns the persisted record size in bytes.
        """
        self._hac.add("save_index")
        from repro.util import serialization

        self.maintenance.barrier()
        record = serialization.dumps(self.engine.to_obj())
        with self._journaled("save_index", {}):
            self.fs.device.write_record("cbaindex", record)
        return len(record)

    def metadata_bytes(self) -> int:
        return self.meta.metadata_bytes()

    def shared_memory_bytes(self) -> int:
        """Attribute cache + fd table footprint (the paper's ~16 KB/process)."""
        return self.attrcache.approximate_bytes() + self.fdtable.approximate_bytes()

    def semantic_dirs(self) -> List[str]:
        out = []
        for uid in self.meta.uids():
            state = self.meta.get(uid)
            if state is not None and state.is_semantic:
                path = self.dirmap.path_of(uid)
                if path is not None:
                    out.append(path)
        return sorted(out)

    @classmethod
    def restore(cls, fs: FileSystem,
                clock: Optional[VirtualClock] = None,
                counters: Optional[Counters] = None,
                reuse_index: bool = True,
                fast_path: bool = True,
                obs: Optional[Observability] = None,
                engine_factory=None,
                backend=None,
                segmented: bool = True) -> "HacFileSystem":
        """Rebuild a HAC file system from the records persisted on *fs*'s
        device (crash recovery / reopen).

        The reopen doubles as the crash-recovery path: any fault plan on the
        device is lifted (the reboot), incomplete journal intents are rolled
        back at the record level, and the VFS tree is reconciled against the
        healed records before anything is rebuilt — see
        :mod:`repro.core.recovery`; the report lands in ``last_recovery``.

        Link classifications and queries come back verbatim; the content
        index is restored from the persisted copy when one exists (see
        :meth:`save_index`), else — with *segmented* — merged back from
        the persisted segment list with zero tokenisation
        (reindex-as-merge), and brought current by an incremental sync;
        it is rebuilt from scratch only when neither record exists.  An
        *unreadable* ``cbaindex`` record is neither: it raises
        :class:`~repro.errors.CorruptRecord` (and counts
        ``restore.index_corrupt``) instead of silently rebuilding — a
        checksum failure means data loss the caller must acknowledge
        (``reuse_index=False`` opts into the rebuild)."""
        from repro.core.recovery import (RecoveryReport, recover_records,
                                         undo_tree)

        engine_factory = _resolve_backend(backend, engine_factory)
        hacfs = cls.__new__(cls)
        hacfs.counters = counters if counters is not None else Counters()
        hacfs.clock = clock if clock is not None else VirtualClock()
        hacfs.obs = obs if obs is not None else Observability(
            clock=hacfs.clock, counters=hacfs.counters)
        hacfs.fs = fs
        hacfs._hac = hacfs.counters.scoped("hac")
        fs.device.clear_faults()  # the reboot: the device comes back up
        # the reopened instance resolves paths itself from here on; cached
        # generations from the pre-crash instance must not survive the reboot
        # (a pinned fsid would otherwise revalidate them as live)
        fs.reset_path_map()
        fs.tracer = hacfs.obs.trace
        fs.device.tracer = hacfs.obs.trace
        hacfs.meta = MetaStore(fs.device)
        hacfs.journal = Journal(fs.device, hacfs.counters,
                                tracer=hacfs.obs.trace)
        report = RecoveryReport()
        with hacfs.obs.trace.span("hac.recover") as span:
            pending = recover_records(hacfs.journal, report)
            span.set(rolled_back=len(pending))
        hacfs.last_recovery = report
        raw_map = hacfs.meta.load_aux("globalmap") or {"0": "/"}
        hacfs.dirmap = GlobalDirectoryMap.restore(
            {int(u): p for u, p in raw_map.items()})
        raw_graph = hacfs.meta.load_aux("depgraph")
        hacfs.depgraph = (DependencyGraph.from_obj(raw_graph)
                          if raw_graph else DependencyGraph())
        hacfs.engine = None  # chosen below: restored or fresh
        hacfs.semmounts = SemanticMountTable(uid_of=hacfs.dirmap.uid_of,
                                             path_of=hacfs.dirmap.path_of)
        hacfs.scopes = ScopeResolver(hacfs)
        hacfs.consistency = ConsistencyManager(hacfs)
        hacfs.maintenance = MaintenanceScheduler(hacfs)
        hacfs.admission = AdmissionController(hacfs)
        hacfs.scheduler = ReindexScheduler(hacfs)
        hacfs.watches = WatchManager(hacfs)
        hacfs.attrcache = AttributeCache(counters=hacfs.counters)
        hacfs._stat_identity = {}
        hacfs.fdtable = FDTable()
        hacfs._loader_fds = FDTable()
        hacfs._fs_registry = {fs.fsid: (fs, "")}
        hacfs.meta.reload_all()
        # tree-level undo needs map + states loaded, but not the engine
        undo_tree(hacfs, pending, report)
        restore_stats = hacfs.counters.scoped("restore")
        saved = None
        if reuse_index:
            try:
                saved = hacfs.meta.load_aux("cbaindex")
            except CorruptRecord:
                restore_stats.add("index_corrupt")
                raise
        if saved is not None:
            if engine_factory is not None:
                hacfs.engine = engine_factory.from_obj(
                    saved, loader=hacfs._load_doc,
                    transducer=default_transducer, counters=hacfs.counters,
                    clock=hacfs.clock, fast_path=fast_path)
            elif isinstance(saved, dict) and saved.get("cluster"):
                # a persisted sharded index restores as a cluster even when
                # the caller did not pass the factory it was built with
                from repro.cluster import ShardedSearchCluster

                hacfs.engine = ShardedSearchCluster.from_obj(
                    saved, loader=hacfs._load_doc,
                    transducer=default_transducer, counters=hacfs.counters,
                    clock=hacfs.clock, fast_path=fast_path)
            else:
                hacfs.engine = CBAEngine.from_obj(
                    saved, loader=hacfs._load_doc,
                    transducer=default_transducer, counters=hacfs.counters,
                    fast_path=fast_path, segmented=segmented)
            restore_stats.add("index_restored")
        elif (reuse_index and segmented and engine_factory is None
              and (segment_state := cls._load_segments(hacfs)) is not None):
            store, next_doc, num_blocks = segment_state
            hacfs.engine = CBAEngine.from_segments(
                store, loader=hacfs._load_doc, next_doc_id=next_doc,
                transducer=default_transducer, counters=hacfs.counters,
                fast_path=fast_path, num_blocks=num_blocks)
            restore_stats.add("index_from_segments")
        elif engine_factory is not None:
            hacfs.engine = engine_factory(loader=hacfs._load_doc,
                                          counters=hacfs.counters,
                                          clock=hacfs.clock,
                                          transducer=default_transducer,
                                          fast_path=fast_path)
            restore_stats.add("index_rebuilds")
        else:
            hacfs.engine = CBAEngine(loader=hacfs._load_doc,
                                     transducer=default_transducer,
                                     counters=hacfs.counters,
                                     fast_path=fast_path,
                                     segmented=segmented)
            restore_stats.add("index_rebuilds")
        hacfs._wire_obs()
        hacfs.tenants = TenantManager(hacfs)
        hacfs.tenants.reload()
        # a saved index makes this incremental (Θ(changes), not Θ(corpus))
        hacfs.ssync("/")
        return hacfs

    @staticmethod
    def _load_segments(hacfs: "HacFileSystem"):
        """Load the persisted segment list, or ``None`` when there is no
        usable manifest.  A manifest naming a missing segment record is
        treated as unusable (counted, rebuild takes over) — recovery has
        already rolled incomplete intents back, so this only happens when
        records were lost outside any journaled write.  An unreadable
        segment raises :class:`~repro.errors.CorruptRecord`, the same
        acknowledge-your-data-loss contract as ``cbaindex``."""
        from repro.cba.segments import Segment, SegmentStore

        restore_stats = hacfs.counters.scoped("restore")
        try:
            manifest = hacfs.meta.load_aux("segmanifest")
            if not manifest:
                return None
            segments = []
            for seg_id in manifest.get("segments", ()):
                raw = hacfs.meta.load_aux(f"seg:{seg_id}")
                if raw is None:
                    restore_stats.add("segment_missing")
                    return None
                segments.append(Segment.from_obj(raw))
        except CorruptRecord:
            restore_stats.add("segment_corrupt")
            raise
        store = SegmentStore(counters=hacfs.counters)
        store.load_frozen(manifest, segments)
        return (store, int(manifest.get("next", 0)),
                int(manifest.get("num_blocks", 64)))

