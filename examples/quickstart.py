#!/usr/bin/env python
"""Quickstart: a HAC file system in ninety seconds.

Creates a small personal name space, indexes it, builds a semantic
directory, and shows the three link classes (transient / permanent /
prohibited) in action.

Run:  python examples/quickstart.py
"""

from repro import HacFileSystem


def main() -> None:
    hac = HacFileSystem()

    # --- an ordinary hierarchical file system, nothing semantic yet --------
    hac.makedirs("/notes")
    hac.makedirs("/mail")
    hac.write_file("/notes/design.txt",
                   b"fingerprint matcher design: minutiae, ridges, cores\n")
    hac.write_file("/notes/groceries.txt", b"milk, coffee, bananas\n")
    hac.write_file("/mail/from-alice.txt",
                   b"From: alice\n\nthe fingerprint sensor prototype works!\n")
    hac.write_file("/mail/from-bob.txt",
                   b"From: bob\n\nlunch at noon on friday?\n")

    # index the name space (HAC settles data consistency at reindex time)
    hac.clock.tick()
    plan = hac.ssync("/")
    print(f"indexed the name space: {plan!r}")

    # --- a semantic directory: a real directory whose contents are a query --
    hac.smkdir("/fingerprint", "fingerprint")
    print("\n/fingerprint after smkdir:")
    for name, (cls, target) in sorted(hac.links("/fingerprint").items()):
        print(f"  {name:<18} [{cls}] -> {target}")

    # the links are ordinary symlinks: read straight through them
    body = hac.read_file("/fingerprint/from-alice.txt")
    print(f"\nreading through a link: {body.decode().splitlines()[-1]!r}")

    # sact: just the lines that made the file match
    print("sact:", hac.sact("/fingerprint/design.txt"))

    # --- curation: edit the query result like any directory ----------------
    # 1. remove a result -> HAC prohibits it (it will not come back)
    hac.unlink("/fingerprint/from-alice.txt")
    # 2. add an unrelated file by hand -> a permanent link
    hac.symlink("/notes/groceries.txt", "/fingerprint/offsite-shopping.txt")

    hac.ssync("/")  # re-evaluation respects the user's edits
    print("\n/fingerprint after curation + ssync:")
    for name, (cls, target) in sorted(hac.links("/fingerprint").items()):
        print(f"  {name:<22} [{cls}]")
    print("prohibited:", hac.prohibited("/fingerprint"))

    # --- new matching content appears at the next sync ----------------------
    hac.write_file("/mail/from-carol.txt",
                   b"From: carol\n\nnew fingerprint dataset attached\n")
    hac.clock.tick()
    hac.ssync("/")
    assert "from-carol.txt" in hac.listdir("/fingerprint")
    print("\nnew mail picked up:", sorted(hac.listdir("/fingerprint")))

    # --- refinement: a child semantic directory scopes to its parent --------
    hac.smkdir("/fingerprint/datasets", "dataset")
    print("/fingerprint/datasets:", sorted(hac.listdir("/fingerprint/datasets")))


if __name__ == "__main__":
    main()
