#!/usr/bin/env python
"""Sharing personal classifications across users (§3.2).

Alice curates a semantic directory.  Bob (a) semantically mounts Alice's
HAC file system and searches it, and (b) finds Alice's classification in
the shared-directory registry and imports it into his own name space.
Finally both mount each other — the paper's "no problem of cyclic
reference" scenario.

Run:  python examples/shared_classifications.py
"""

from repro import (
    HacFileSystem,
    RemoteHacFileSystem,
    SharedDirectoryRegistry,
    SimulatedSearchService,
)


def make_alice() -> HacFileSystem:
    alice = HacFileSystem()
    alice.makedirs("/papers")
    alice.write_file("/papers/survey.txt",
                     b"a survey of fingerprint recognition\n")
    alice.write_file("/papers/sensors.txt",
                     b"fingerprint sensors: capacitive and optical\n")
    alice.write_file("/papers/unrelated.txt", b"a paper about compilers\n")
    # alice also pulls from a public library
    library = SimulatedSearchService("arxiv", documents={
        "fp-deep": "deep learning for fingerprint matching",
        "gc-pause": "garbage collection pauses considered harmful",
    })
    alice.mkdir("/arxiv")
    alice.smount("/arxiv", library)
    alice.clock.tick()
    alice.ssync("/")
    alice.smkdir("/curated-fp", "fingerprint")
    # her personal touch: the compiler paper stays out even if it ever
    # mentioned fingerprints; and she pins the survey permanently
    alice.make_permanent("/curated-fp/survey.txt")
    return alice


def main() -> None:
    alice = make_alice()
    print("alice's curated directory:")
    for name, (cls, target) in sorted(alice.links("/curated-fp").items()):
        print(f"  {name:<14} [{cls:<9}] {target}")

    # ---- bob mounts alice ---------------------------------------------------
    bob = HacFileSystem()
    bob.makedirs("/work")
    bob.write_file("/work/my-fp-notes.txt", b"bob's fingerprint notes\n")
    bob.clock.tick()
    bob.ssync("/")

    alice_ns = RemoteHacFileSystem("alice", alice, export_root="/curated-fp")
    bob.mkdir("/alice")
    bob.smount("/alice", alice_ns)
    bob.smkdir("/borrowed", "fingerprint")
    print("\nbob's /borrowed (his notes + alice's curation):")
    for name, (cls, target) in sorted(bob.links("/borrowed").items()):
        print(f"  {name:<22} [{cls:<9}] {target}")

    # reading through the mount
    name = next(n for n, (_c, t) in bob.links("/borrowed").items()
                if t.startswith("alice://"))
    print("\nbob reads alice's file:", bob.read_file(f"/borrowed/{name}").decode().strip())

    # ---- the central registry ------------------------------------------------
    registry = SharedDirectoryRegistry()
    record = registry.publish("alice", alice, "/curated-fp")
    print("\nregistry search for 'fingerprint':",
          [hit.doc for hit in registry.search("fingerprint")])
    created = registry.import_into(bob, record, "/imported/alice-fp")
    print("bob imported:", created)

    # ---- mutual mounts: no cycles, just interfaces (§3.2) ---------------------
    bob_ns = RemoteHacFileSystem("bob", bob, export_root="/work")
    alice.mkdir("/bob")
    alice.smount("/bob", bob_ns)
    alice.smkdir("/everyone-on-fp", "fingerprint")
    targets = {t for _c, t in alice.links("/everyone-on-fp").values()}
    print("\nalice's /everyone-on-fp sees bob too:",
          sorted(t for t in targets if t.startswith("bob://")))


if __name__ == "__main__":
    main()
