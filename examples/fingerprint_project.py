#!/usr/bin/env python
"""The paper's running example (§2.1): the fingerprint project.

Information about the project lives in mail, notes, and source files, on
this machine and on a laptop, plus a remote digital library.  HAC combines
all of it in one semantic directory, keeps it consistent, and lets the user
fine-tune the result.

Run:  python examples/fingerprint_project.py
"""

from repro import HacFileSystem, HacShell, SimulatedSearchService
from repro.remote.rpc import RpcTransport
from repro.vfs.filesystem import FileSystem
from repro.workloads.mailgen import MailGenerator


def build_world() -> HacShell:
    shell = HacShell(HacFileSystem())
    hac = shell.hacfs

    # local material: notes, source code, a mailbox
    hac.makedirs("/notes")
    hac.write_file("/notes/minutiae.txt",
                   b"fingerprint minutiae: endings, bifurcations, deltas\n")
    hac.write_file("/notes/todo.txt", b"call the dentist\n")
    hac.makedirs("/src")
    hac.write_file("/src/match.c",
                   b"/* fingerprint matching: ridge orientation field */\n"
                   b"int ridge_count(int a, int b) { return a + b; }\n")
    MailGenerator(seed=2).populate(hac, "/mail", count=12)

    # the laptop arrives: a separate file system, syntactically mounted
    laptop = FileSystem(name="laptop")
    laptop.makedirs("/experiments")
    laptop.write_file("/experiments/run1.log",
                      b"fingerprint experiment run 1: 93.2% accuracy\n")
    laptop.write_file("/experiments/scratch.txt", b"nothing to see\n")
    hac.mkdir("/laptop")
    hac.mount("/laptop", laptop)

    # a digital library, semantically mounted (queries forward to it)
    library = SimulatedSearchService(
        "digilib",
        documents={
            "henry-1900": "the henry system of fingerprint classification",
            "fbi-afis": "automated fingerprint identification systems at scale",
            "cnn-1998": "gradient based learning applied to documents",
        },
        titles={"henry-1900": "Henry1900", "fbi-afis": "FBI-AFIS",
                "cnn-1998": "LeCun98"},
        transport=RpcTransport("digilib", clock=hac.clock, latency=0.05),
    )
    hac.mkdir("/library")
    hac.smount("/library", library)

    hac.clock.tick()
    hac.ssync("/")
    return shell


def main() -> None:
    shell = build_world()
    hac = shell.hacfs

    print("== gather everything about the project ==")
    shell.smkdir("/fingerprint", "fingerprint")
    for name, cls, target in shell.sls("/fingerprint"):
        print(f"  {name:<22} [{cls:<9}] {target}")

    print("\n== read a remote result through the file system ==")
    print(" ", shell.cat("/fingerprint/FBI-AFIS").strip())

    print("\n== fine-tune: drop noise, keep a keeper ==")
    mail_noise = [n for n, _c, _t in shell.sls("/fingerprint")
                  if n.startswith("msg")][0]
    shell.rm(f"/fingerprint/{mail_noise}")          # prohibited now
    shell.ln("/notes/todo.txt", "/fingerprint/dont-forget.txt")  # permanent
    print("  prohibited:", shell.sprohibited("/fingerprint"))

    print("\n== refinement hierarchy ==")
    shell.smkdir("/fingerprint/experiments", "accuracy OR experiment")
    print("  /fingerprint/experiments:", shell.ls("/fingerprint/experiments").split())
    shell.smkdir("/fingerprint/classic-papers", "classification OR identification")
    print("  /fingerprint/classic-papers:",
          shell.ls("/fingerprint/classic-papers").split())

    print("\n== combine searching and browsing (§2.5) ==")
    shell.smkdir("/reports", "accuracy AND /fingerprint")
    print("  /reports:", shell.ls("/reports").split())

    print("\n== new mail triggers a mail-only sync (§2.4) ==")
    hac.write_file("/mail/msg9999.txt",
                   b"From: boss\nSubject: fingerprint demo\n\n"
                   b"the fingerprint accuracy demo is on monday\n")
    hac.clock.tick()
    shell.ssync("/mail")
    assert "msg9999.txt" in shell.ls("/fingerprint")
    print("  picked up msg9999.txt; /reports:", shell.ls("/reports").split())

    print("\n== the directory moves; queries survive (the global UID map) ==")
    hac.makedirs("/projects")
    shell.mv("/fingerprint", "/projects/fingerprint")
    print("  /reports query is now:", shell.squery("/reports"))
    # moving under a plain directory RE-SCOPES the query to that subtree
    # (§2.3 trigger 2): /projects holds no mail or notes, so only the
    # permanent link survives the move
    print("  /projects/fingerprint after the move:",
          shell.ls("/projects/fingerprint").split())
    assert shell.hacfs.classify(
        "/projects/fingerprint/dont-forget.txt") == "permanent"
    print("  (permanent links always survive; transient ones re-scope)")
    shell.mv("/projects/fingerprint", "/fingerprint")   # back at the root
    shell.ssync("/")
    print("  moved back, everything returns:",
          len(shell.ls("/fingerprint").split()), "entries —",
          "prohibited mail still out:",
          mail_noise not in shell.ls("/fingerprint").split())

    library = hac.semmounts.get("digilib")
    print("\ndone — rpc calls made to the library:",
          int(library.transport.calls))


if __name__ == "__main__":
    main()
