#!/usr/bin/env python
"""A guided tour of the scope-consistency problem and HAC's solution (§2.3).

Walks through the four ways a semantic directory's scope can change —
parent edits, moves, upstream cascades, query changes — and shows the
invariant holding after each, including the dependency-DAG case where the
affected directory is nowhere near the change (§2.5).

Run:  python examples/consistency_tour.py
"""

from repro import HacFileSystem


def show(hac, path, label):
    names = sorted(hac.links(path))
    print(f"  {label:<38} {path}: {names}")


def main() -> None:
    hac = HacFileSystem()
    hac.makedirs("/docs")
    for name, text in {
        "pandas.txt": "pandas eat bamboo in the mountains",
        "redpanda.txt": "the red panda also eats bamboo",
        "zoo.txt": "the zoo keeps pandas and penguins",
        "recipes.txt": "bamboo shoots stir fry recipe",
    }.items():
        hac.write_file(f"/docs/{name}", text.encode())
    hac.clock.tick()
    hac.ssync("/")

    print("== setup: a two-level hierarchy of semantic directories ==")
    hac.smkdir("/bamboo", "bamboo")
    hac.smkdir("/bamboo/eaters", "pandas OR panda")
    show(hac, "/bamboo", "parent")
    show(hac, "/bamboo/eaters", "child (refines parent)")

    print("\n== trigger 1: editing the parent's links ==")
    hac.unlink("/bamboo/redpanda.txt")        # user deletes -> prohibited
    show(hac, "/bamboo", "parent after rm")
    show(hac, "/bamboo/eaters", "child re-evaluated automatically")

    print("\n== trigger 2: moving the semantic directory ==")
    hac.smkdir("/zoo-stuff", "zoo OR penguins")
    hac.rename("/bamboo/eaters", "/eaters")   # scope: /bamboo -> root
    show(hac, "/eaters", "moved to the root scope")

    print("\n== trigger 3: a change cascading from a grandparent ==")
    hac.rename("/eaters", "/bamboo/eaters")   # put it back
    hac.smkdir("/bamboo/eaters/reds", "red")
    show(hac, "/bamboo/eaters/reds", "grandchild")
    hac.unprohibit("/bamboo", "/docs/redpanda.txt")
    show(hac, "/bamboo", "prohibition lifted")
    show(hac, "/bamboo/eaters", "child sees it")
    show(hac, "/bamboo/eaters/reds", "grandchild sees it")

    print("\n== trigger 4: changing a query in place ==")
    hac.set_query("/bamboo/eaters", "zoo")
    show(hac, "/bamboo/eaters", "same dir, new query, same scope")

    print("\n== §2.5: dependencies that ignore the hierarchy ==")
    hac.smkdir("/watchlist", "/bamboo AND pandas")
    show(hac, "/watchlist", "depends on /bamboo by reference")
    hac.unlink("/bamboo/pandas.txt")
    show(hac, "/watchlist", "updated though it's not under /bamboo")

    print("\n== renames never break reference queries (global UID map) ==")
    hac.rename("/bamboo", "/bambusa")
    print("  /watchlist query is now:", hac.get_query("/watchlist"))
    hac.ssync("/")
    show(hac, "/watchlist", "still consistent")

    print("\n== cycles are rejected up front ==")
    from repro.errors import DependencyCycle
    try:
        hac.set_query("/bambusa", "bamboo AND /watchlist")
    except DependencyCycle as exc:
        print("  rejected:", exc)
    print("  /bambusa query unchanged:", hac.get_query("/bambusa"))


if __name__ == "__main__":
    main()
