"""Unit tests for the open-loop serving harness (pure queueing math)."""

import pytest

from repro.bench.serving import (Arrival, CostMeter, ServingConfig,
                                 percentile, poisson_schedule, simulate,
                                 summarize)
from repro.util.stats import Counters


class TestPoissonSchedule:
    def test_deterministic_for_a_seed(self):
        config = ServingConfig(rate_per_s=100.0, duration_s=2.0, seed=42)
        assert poisson_schedule(config) == poisson_schedule(config)
        shifted = config._replace(seed=43)
        assert poisson_schedule(shifted) != poisson_schedule(config)

    def test_time_ordered_within_horizon(self):
        schedule = poisson_schedule(ServingConfig(duration_s=1.0, seed=1))
        assert schedule == sorted(schedule, key=lambda a: (a.at_ms, a.session))
        assert all(0 < a.at_ms < 1000.0 for a in schedule)

    def test_rate_and_mix_are_roughly_honoured(self):
        config = ServingConfig(rate_per_s=500.0, duration_s=4.0,
                               read_fraction=0.8, sessions=4, seed=0)
        schedule = poisson_schedule(config)
        assert len(schedule) == pytest.approx(2000, rel=0.15)
        reads = sum(1 for a in schedule if a.kind == "read")
        assert reads / len(schedule) == pytest.approx(0.8, abs=0.05)
        assert {a.session for a in schedule} == {0, 1, 2, 3}


class TestCostMeter:
    def test_weighted_delta_plus_floor(self):
        counters = Counters()
        meter = CostMeter(lambda: [counters],
                          weights={"engine.tokenisations": 0.5},
                          floor_ms=0.1)
        _result, cost = meter.measure(
            lambda: counters.add("engine.tokenisations", 4))
        assert cost == pytest.approx(0.5 * 4 + 0.1)
        _result, idle = meter.measure(lambda: None)
        assert idle == pytest.approx(0.1)

    def test_sources_reread_each_measurement(self):
        """Lazily attached counter sources (replicas) must be picked up."""
        pool = [Counters()]
        meter = CostMeter(lambda: list(pool), weights={"x": 1.0},
                          floor_ms=0.0)

        def op():
            late = Counters()
            late.add("x", 3)
            pool.append(late)

        _result, cost = meter.measure(op)
        assert cost == pytest.approx(3.0)

    def test_unweighted_counters_are_free(self):
        counters = Counters()
        meter = CostMeter(lambda: [counters], weights={"x": 1.0},
                          floor_ms=0.0)
        _result, cost = meter.measure(lambda: counters.add("y", 100))
        assert cost == 0.0


class TestSimulate:
    def test_open_loop_queueing_arithmetic(self):
        schedule = [Arrival(0.0, 0, "read"), Arrival(1.0, 0, "read"),
                    Arrival(50.0, 0, "write")]
        counters = Counters()
        meter = CostMeter(lambda: [counters], weights={"x": 1.0},
                          floor_ms=0.0)
        samples = simulate(schedule, lambda kind: counters.add("x", 10),
                           meter)
        # first op: no wait; second queues behind it; third finds it idle
        assert [s.latency_ms for s in samples] == \
            pytest.approx([10.0, 19.0, 10.0])
        assert [s.start_ms for s in samples] == \
            pytest.approx([0.0, 10.0, 50.0])
        assert all(s.cost_ms == pytest.approx(10.0) for s in samples)

    def test_kinds_are_passed_through(self):
        schedule = [Arrival(0.0, 0, "write"), Arrival(1.0, 0, "read")]
        seen = []
        meter = CostMeter(lambda: [], floor_ms=1.0)
        simulate(schedule, seen.append, meter)
        assert seen == ["write", "read"]


class TestSummaries:
    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50.0) == 50
        assert percentile(values, 99.0) == 99
        assert percentile(values, 99.9) == 100
        assert percentile([7.0], 99.0) == 7.0
        assert percentile([], 50.0) == 0.0

    def test_summarize_shapes_and_saturation(self):
        schedule = [Arrival(float(i), 0, "read" if i % 2 else "write")
                    for i in range(10)]
        counters = Counters()
        meter = CostMeter(lambda: [counters], weights={"x": 1.0},
                          floor_ms=0.0)
        samples = simulate(schedule, lambda kind: counters.add("x", 2),
                           meter)
        summary = summarize(samples)
        assert set(summary) == {"read", "write", "all"}
        assert summary["read"]["count"] == 5.0
        for field in ("p50_ms", "p99_ms", "p999_ms", "mean_cost_ms",
                      "max_ms"):
            assert field in summary["read"]
        # 10 ops at 2ms of service each = 500 ops/s at saturation
        assert summary["all"]["saturation_ops_per_s"] == pytest.approx(500.0)
