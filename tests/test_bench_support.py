"""The benchmark support machinery itself."""

import pytest

from repro.bench.harness import (
    BenchResult,
    assert_shape,
    report,
    report_phases,
    time_call,
)
from repro.bench.tables import PAPER, ratio, slowdown_pct


class TestTables:
    def test_paper_constants_cover_every_table(self):
        assert set(PAPER) == {"table1", "table2", "table3", "table4",
                              "in_text"}
        assert PAPER["table1"]["unix"]["total"] == 38
        assert PAPER["table2"]["hac"] == 46.0
        assert PAPER["table4"]["few"]["ratio"] == 4.0

    def test_ratio(self):
        assert ratio(3.0, 2.0) == 1.5
        assert ratio(1.0, 0.0) == float("inf")

    def test_slowdown_pct(self):
        assert slowdown_pct(57, 38) == pytest.approx(50.0)
        assert slowdown_pct(38, 38) == 0.0


class TestHarness:
    def test_time_call_returns_result(self):
        seconds, value = time_call(lambda: 41 + 1)
        assert value == 42
        assert seconds >= 0

    def test_bench_result_rows(self):
        assert BenchResult("x", 1.5, 2.0).row() == ["x", "1.5", "2"]
        assert BenchResult("y", 3.0).row() == ["y", "3", "-"]
        assert BenchResult("z", 1.0, 2.0, unit="s").row() == ["z", "1s", "2s"]

    def test_report_renders_and_returns(self, capsys):
        text = report("demo", [BenchResult("m", 1.0, 2.0)])
        out = capsys.readouterr().out
        assert "demo" in text and "demo" in out
        assert "m" in text and "paper" in text

    def test_report_phases(self, capsys):
        text = report_phases("phases", {"sys": {"a": 1.0, "b": 2.0}},
                             ["a", "b"])
        assert "sys" in text and "1.0000" in text

    def test_assert_shape(self):
        assert_shape("ok", 1.5, 1.0, 2.0)
        with pytest.raises(AssertionError) as exc:
            assert_shape("bad", 5.0, 1.0, 2.0)
        assert "bad" in str(exc.value)
        assert "5.000" in str(exc.value)
