"""The central database of shared semantic directories (§3.2)."""

import pytest

from repro.remote.registry import SharedDirectoryRegistry


@pytest.fixture
def registry():
    return SharedDirectoryRegistry()


@pytest.fixture
def published(registry, populated):
    populated.smkdir("/fp", "fingerprint")
    record_id = registry.publish("alice", populated, "/fp")
    return record_id


class TestPublish:
    def test_publish_records_query_and_entries(self, registry, populated, published):
        rec = registry.get(published)
        assert rec.user == "alice"
        assert rec.query_text == "fingerprint"
        assert len(rec.entries) == 3

    def test_republish_updates(self, registry, populated, published):
        populated.unlink("/fp/msg1.txt")
        registry.publish("alice", populated, "/fp")
        assert len(registry.get(published).entries) == 2
        assert len(registry) == 1

    def test_republish_bumps_the_record_version(self, registry, populated,
                                                published):
        """Regression: republished records used to keep ``mtime=0.0``, so a
        mirror diffing mtime snapshots never saw the update."""
        before = registry._engine.mtime_snapshot()
        assert before[published] > 0.0
        populated.unlink("/fp/msg1.txt")
        registry.publish("alice", populated, "/fp")
        after = registry._engine.mtime_snapshot()
        assert after[published] > before[published]

    def test_withdraw(self, registry, published):
        registry.withdraw(published)
        assert registry.get(published) is None
        assert len(registry) == 0
        registry.withdraw(published)  # idempotent


class TestSearchable:
    def test_find_users_with_similar_tastes(self, registry, populated, published):
        hits = registry.search("fingerprint")
        assert [h.doc for h in hits] == ["alice:/fp"]

    def test_fetch_renders_record(self, registry, published):
        text = registry.fetch(published)
        assert "alice" in text and "fingerprint" in text
        assert registry.fetch("ghost") == ""

    def test_records_listing(self, registry, populated, published):
        populated.smkdir("/lunchq", "lunch")
        registry.publish("bob", populated, "/lunchq")
        users = [r.user for r in registry.records()]
        assert users == ["alice", "bob"]


class TestImport:
    def test_import_creates_permanent_links(self, registry, populated):
        # publish a directory whose entries are remote URIs (importable)
        populated.mkdir("/lib")
        from repro.remote.searchsvc import SimulatedSearchService
        lib = SimulatedSearchService("digilib", documents={
            "p1": "fingerprint paper one", "p2": "other topic"})
        populated.smount("/lib", lib)
        populated.smkdir("/fp", "fingerprint")
        record_id = registry.publish("alice", populated, "/fp")

        importer_links = registry.import_into(populated, record_id, "/imported")
        assert importer_links  # the remote URI entries came across
        assert populated.classify(importer_links[0]) is None  # plain dir: untracked
        # imported into a semantic dir they become permanent
        populated.smkdir("/sem-import", "zzznothing")
        created = registry.import_into(populated, record_id, "/sem-import")
        assert all(populated.classify(p) == "permanent" for p in created)

    def test_import_unknown_record(self, registry, populated):
        with pytest.raises(KeyError):
            registry.import_into(populated, "nobody:/x", "/dest")

    def test_import_skips_inode_entries(self, registry, populated):
        populated.smkdir("/fp", "fingerprint")
        record_id = registry.publish("alice", populated, "/fp")
        created = registry.import_into(populated, record_id, "/dest")
        # all local entries are inode ids on the exporter side: skipped
        assert created == []
