"""The simulated remote search service (digital library)."""

import pytest

from repro.cba.incremental import plan_reindex
from repro.errors import QuerySyntaxError
from repro.remote.rpc import RpcTransport
from repro.remote.searchsvc import SimulatedSearchService
from repro.util.clock import VirtualClock


@pytest.fixture
def svc():
    return SimulatedSearchService("lib", documents={
        "d1": "fingerprint recognition overview",
        "d2": "cooking with cast iron",
        "d3": "fingerprint sensors and cooking",
    }, titles={"d1": "Overview"})


class TestSearch:
    def test_basic_search(self, svc):
        hits = svc.search("fingerprint")
        assert [h.doc for h in hits] == ["d1", "d3"]

    def test_titles_used(self, svc):
        hits = {h.doc: h.title for h in svc.search("fingerprint")}
        assert hits["d1"] == "Overview"
        assert hits["d3"] == "d3"

    def test_boolean(self, svc):
        hits = svc.search("fingerprint AND cooking")
        assert [h.doc for h in hits] == ["d3"]

    def test_star_returns_all(self, svc):
        assert len(svc.search("*")) == 3

    def test_dir_refs_not_supported(self, svc):
        with pytest.raises(QuerySyntaxError):
            svc.search("/local/path")

    def test_remote_id_helper(self, svc):
        hit = svc.search("cast")[0]
        assert hit.remote_id("lib").uri() == "lib://d2"


class TestCorpus:
    def test_fetch(self, svc):
        assert "cast iron" in svc.fetch("d2")
        with pytest.raises(KeyError):
            svc.fetch("nope")

    def test_add_update_remove(self, svc):
        svc.add_document("d4", "new fingerprint paper", title="New")
        assert "d4" in [h.doc for h in svc.search("fingerprint")]
        svc.add_document("d4", "now about gardening")
        assert "d4" not in [h.doc for h in svc.search("fingerprint")]
        svc.remove_document("d4")
        assert len(svc) == 3
        svc.remove_document("d4")  # idempotent

    def test_title_of(self, svc):
        assert svc.title_of("d1") == "Overview"
        assert svc.title_of("d2") is None


class TestVersioning:
    def test_versions_are_monotonic_not_zero(self, svc):
        """Regression: documents used to be stamped ``mtime=0.0``, making
        every update invisible to mtime-snapshot staleness checks."""
        snap = svc.mtime_snapshot()
        assert sorted(snap.values()) == [1.0, 2.0, 3.0]

    def test_update_bumps_the_version(self, svc):
        before = svc.mtime_snapshot()
        svc.add_document("d2", "now about gardening")
        after = svc.mtime_snapshot()
        assert after["d2"] > before["d2"]
        assert after["d1"] == before["d1"]

    def test_snapshot_diff_detects_the_update(self, svc):
        before = svc.mtime_snapshot()
        svc.add_document("d2", "now about gardening")
        svc.add_document("d4", "a fourth paper")
        svc.remove_document("d3")
        plan = plan_reindex(before, svc.mtime_snapshot())
        assert plan.added == ["d4"]
        assert plan.removed == ["d3"]
        assert plan.changed == ["d2"]


class TestTitleContract:
    def test_update_without_title_keeps_it(self, svc):
        svc.add_document("d1", "revised overview text")
        assert svc.title_of("d1") == "Overview"

    def test_clear_title_flag_drops_it(self, svc):
        svc.add_document("d1", "revised overview text", clear_title=True)
        assert svc.title_of("d1") is None
        hits = {h.doc: h.title for h in svc.search("revised")}
        assert hits["d1"] == "d1"  # falls back to the document name

    def test_clear_title_method(self, svc):
        svc.clear_title("d1")
        assert svc.title_of("d1") is None
        svc.clear_title("d1")  # idempotent
        svc.clear_title("ghost")  # unknown docs are a no-op

    def test_title_with_clear_title_rejected(self, svc):
        with pytest.raises(ValueError):
            svc.add_document("d1", "text", title="X", clear_title=True)


class TestTransportIntegration:
    def test_latency_accrues(self):
        clock = VirtualClock()
        svc = SimulatedSearchService(
            "lib", documents={"d": "x"},
            transport=RpcTransport("lib", clock=clock, latency=0.1))
        svc.search("x")
        svc.fetch("d")
        assert clock.now == pytest.approx(0.2)

    def test_describe(self, svc):
        assert svc.describe() == "lib (glimpse)"
