"""The simulated remote search service (digital library)."""

import pytest

from repro.errors import QuerySyntaxError
from repro.remote.rpc import RpcTransport
from repro.remote.searchsvc import SimulatedSearchService
from repro.util.clock import VirtualClock


@pytest.fixture
def svc():
    return SimulatedSearchService("lib", documents={
        "d1": "fingerprint recognition overview",
        "d2": "cooking with cast iron",
        "d3": "fingerprint sensors and cooking",
    }, titles={"d1": "Overview"})


class TestSearch:
    def test_basic_search(self, svc):
        hits = svc.search("fingerprint")
        assert [h.doc for h in hits] == ["d1", "d3"]

    def test_titles_used(self, svc):
        hits = {h.doc: h.title for h in svc.search("fingerprint")}
        assert hits["d1"] == "Overview"
        assert hits["d3"] == "d3"

    def test_boolean(self, svc):
        hits = svc.search("fingerprint AND cooking")
        assert [h.doc for h in hits] == ["d3"]

    def test_star_returns_all(self, svc):
        assert len(svc.search("*")) == 3

    def test_dir_refs_not_supported(self, svc):
        with pytest.raises(QuerySyntaxError):
            svc.search("/local/path")

    def test_remote_id_helper(self, svc):
        hit = svc.search("cast")[0]
        assert hit.remote_id("lib").uri() == "lib://d2"


class TestCorpus:
    def test_fetch(self, svc):
        assert "cast iron" in svc.fetch("d2")
        with pytest.raises(KeyError):
            svc.fetch("nope")

    def test_add_update_remove(self, svc):
        svc.add_document("d4", "new fingerprint paper", title="New")
        assert "d4" in [h.doc for h in svc.search("fingerprint")]
        svc.add_document("d4", "now about gardening")
        assert "d4" not in [h.doc for h in svc.search("fingerprint")]
        svc.remove_document("d4")
        assert len(svc) == 3
        svc.remove_document("d4")  # idempotent

    def test_title_of(self, svc):
        assert svc.title_of("d1") == "Overview"
        assert svc.title_of("d2") is None


class TestTransportIntegration:
    def test_latency_accrues(self):
        clock = VirtualClock()
        svc = SimulatedSearchService(
            "lib", documents={"d": "x"},
            transport=RpcTransport("lib", clock=clock, latency=0.1))
        svc.search("x")
        svc.fetch("d")
        assert clock.now == pytest.approx(0.2)

    def test_describe(self, svc):
        assert svc.describe() == "lib (glimpse)"
