"""RPC simulation: latency, counting, deterministic failures."""

import pytest

from repro.errors import RemoteUnavailable
from repro.remote.rpc import RpcTransport
from repro.util.clock import VirtualClock
from repro.util.stats import Counters


class TestTransport:
    def test_latency_charged_to_clock(self):
        clock = VirtualClock()
        rpc = RpcTransport("svc", clock=clock, latency=0.25)
        rpc.call("op", lambda: 1)
        rpc.call("op", lambda: 2)
        assert clock.now == 0.5

    def test_result_passthrough(self):
        rpc = RpcTransport("svc")
        assert rpc.call("op", lambda: "value") == "value"

    def test_counters(self):
        counters = Counters()
        rpc = RpcTransport("svc", counters=counters)
        rpc.call("search", lambda: None)
        rpc.call("fetch", lambda: None)
        assert rpc.calls == 2
        assert counters.get("rpc.svc.calls.search") == 1

    def test_failure_rate_validation(self):
        with pytest.raises(ValueError):
            RpcTransport("svc", failure_rate=1.5)

    def test_deterministic_failures(self):
        def failures(seed):
            rpc = RpcTransport("svc", failure_rate=0.5, seed=seed)
            out = []
            for i in range(20):
                try:
                    rpc.call("op", lambda: i)
                    out.append(False)
                except RemoteUnavailable:
                    out.append(True)
            return out

        assert failures(7) == failures(7)
        assert any(failures(7)) and not all(failures(7))

    def test_zero_rate_never_fails(self):
        rpc = RpcTransport("svc", failure_rate=0.0)
        for i in range(50):
            assert rpc.call("op", lambda: i) == i

    def test_failure_counter(self):
        counters = Counters()
        rpc = RpcTransport("svc", failure_rate=1.0, counters=counters)
        with pytest.raises(RemoteUnavailable):
            rpc.call("op", lambda: None)
        assert counters.get("rpc.svc.failures") == 1


class TestFailOnSchedule:
    def test_exact_indices_fail(self):
        rpc = RpcTransport("svc", fail_on={1, 3})
        outcomes = []
        for i in range(5):
            try:
                rpc.call("op", lambda: i)
                outcomes.append("ok")
            except RemoteUnavailable:
                outcomes.append("fail")
        assert outcomes == ["ok", "fail", "ok", "fail", "ok"]

    def test_schedule_overrides_rate_mode(self):
        rpc = RpcTransport("svc", failure_rate=1.0, fail_on=set())
        for i in range(10):
            assert rpc.call("op", lambda: i) == i

    def test_scheduled_failures_are_counted(self):
        counters = Counters()
        rpc = RpcTransport("svc", fail_on={0}, counters=counters)
        with pytest.raises(RemoteUnavailable):
            rpc.call("op", lambda: None)
        assert counters.get("rpc.svc.failures") == 1


class TestRetryPolicy:
    def test_retry_masks_a_transient_failure(self):
        from repro.remote.rpc import RetryPolicy

        counters = Counters()
        rpc = RpcTransport("svc", fail_on={0}, counters=counters,
                           retry=RetryPolicy(max_attempts=3))
        assert rpc.call("op", lambda: "v") == "v"
        assert counters.get("rpc.svc.calls") == 2
        assert counters.get("rpc.svc.retries") == 1
        assert counters.get("rpc.svc.giveups") == 0

    def test_backoff_advances_the_virtual_clock(self):
        from repro.remote.rpc import RetryPolicy

        clock = VirtualClock()
        rpc = RpcTransport("svc", clock=clock, latency=0.1,
                           fail_on={0, 1},
                           retry=RetryPolicy(max_attempts=3, base_delay=0.05,
                                             multiplier=2.0))
        assert rpc.call("op", lambda: "v") == "v"
        # three attempts at 0.1 each, plus waits 0.05 and 0.10
        assert clock.now == pytest.approx(0.45)

    def test_gives_up_after_max_attempts(self):
        from repro.remote.rpc import RetryPolicy

        counters = Counters()
        rpc = RpcTransport("svc", failure_rate=1.0, counters=counters,
                           retry=RetryPolicy(max_attempts=3))
        with pytest.raises(RemoteUnavailable):
            rpc.call("op", lambda: None)
        assert counters.get("rpc.svc.calls") == 3
        assert counters.get("rpc.svc.giveups") == 1

    def test_deadline_stops_retrying_early(self):
        from repro.remote.rpc import RetryPolicy

        policy = RetryPolicy(max_attempts=10, base_delay=1.0,
                             multiplier=1.0, deadline=2.5)
        assert policy.next_delay(1, elapsed=0.0) == 1.0
        assert policy.next_delay(2, elapsed=1.5) == 1.0
        assert policy.next_delay(3, elapsed=3.0) is None  # budget exhausted

    def test_exhausted_attempts_return_none(self):
        from repro.remote.rpc import RetryPolicy

        policy = RetryPolicy(max_attempts=2)
        assert policy.next_delay(2, elapsed=0.0) is None

    def test_jitter_is_seeded_and_bounded(self):
        from repro.remote.rpc import RetryPolicy

        def delays(seed):
            policy = RetryPolicy(max_attempts=5, base_delay=1.0,
                                 multiplier=1.0, jitter=0.2, seed=seed)
            return [policy.next_delay(a, 0.0) for a in range(1, 5)]

        assert delays(3) == delays(3)
        assert all(1.0 <= d <= 1.2 for d in delays(3))

    def test_retries_do_not_change_which_calls_fail(self):
        # the jitter rng is independent of the transport's failure rng
        from repro.remote.rpc import RetryPolicy

        def failure_pattern(retry):
            rpc = RpcTransport("svc", failure_rate=0.5, seed=11, retry=retry)
            pattern = []
            for i in range(12):
                try:
                    rpc.call("op", lambda: i)
                    pattern.append(False)
                except RemoteUnavailable:
                    pattern.append(True)
            return [rpc.call_index, pattern.count(True) > 0]

        plain = failure_pattern(None)
        jittered = failure_pattern(RetryPolicy(max_attempts=1, jitter=0.5))
        assert plain == jittered


class TestCircuitBreaker:
    def _tripped(self, threshold=3, cooldown=100.0, counters=None):
        from repro.remote.rpc import CircuitBreaker

        clock = VirtualClock()
        breaker = CircuitBreaker(failure_threshold=threshold,
                                 cooldown=cooldown, counters=counters,
                                 name="svc")
        rpc = RpcTransport("svc", clock=clock, failure_rate=1.0,
                           counters=counters, breaker=breaker)
        for _ in range(threshold):
            with pytest.raises(RemoteUnavailable):
                rpc.call("op", lambda: None)
        return rpc, breaker, clock

    def test_trips_after_consecutive_failures(self):
        rpc, breaker, _clock = self._tripped(threshold=3)
        assert breaker.state == "open"
        assert breaker.retry_at is not None

    def test_open_rejects_locally_without_charging(self):
        from repro.errors import CircuitOpen

        counters = Counters()
        rpc, breaker, clock = self._tripped(counters=counters)
        calls_before, now_before = rpc.calls, clock.now
        with pytest.raises(CircuitOpen):
            rpc.call("op", lambda: None)
        assert rpc.calls == calls_before      # no back-end traffic
        assert clock.now == now_before        # no latency charged
        assert counters.get("breaker.svc.rejections") == 1

    def test_circuit_open_is_a_backend_unavailable(self):
        from repro.errors import BackendUnavailable, CircuitOpen

        # one except-clause covers transport failures and open breakers,
        # for remote namespaces and search shards alike
        assert issubclass(CircuitOpen, BackendUnavailable)
        assert issubclass(RemoteUnavailable, BackendUnavailable)

    def test_circuit_open_names_its_backend(self):
        from repro.errors import CircuitOpen

        exc = CircuitOpen("svc", retry_at=12.5)
        assert exc.retry_at == 12.5
        assert exc.backend == "svc"
        assert exc.namespace == "svc"   # compat alias for old handlers

    def test_half_open_probe_success_closes(self):
        rpc, breaker, clock = self._tripped(cooldown=100.0)
        clock.advance(100.0)
        rpc.failure_rate = 0.0
        assert rpc.call("op", lambda: "back") == "back"
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        rpc, breaker, clock = self._tripped(cooldown=100.0)
        clock.advance(100.0)
        with pytest.raises(RemoteUnavailable):
            rpc.call("op", lambda: None)      # probe runs, fails
        assert breaker.state == "open"
        assert breaker.retry_at == pytest.approx(clock.now + 100.0)

    def test_interleaved_successes_keep_it_closed(self):
        from repro.remote.rpc import CircuitBreaker

        breaker = CircuitBreaker(failure_threshold=3, clock=VirtualClock())
        rpc = RpcTransport("svc", fail_on={0, 2, 4, 6}, breaker=breaker)
        for i in range(8):
            try:
                rpc.call("op", lambda: i)
            except RemoteUnavailable:
                pass
        assert breaker.state == "closed"

    def test_trip_and_close_are_counted(self):
        counters = Counters()
        rpc, breaker, clock = self._tripped(counters=counters)
        clock.advance(100.0)
        rpc.failure_rate = 0.0
        rpc.call("op", lambda: None)
        assert counters.get("breaker.svc.opens") == 1
        assert counters.get("breaker.svc.half_opens") == 1
        assert counters.get("breaker.svc.closes") == 1
