"""RPC simulation: latency, counting, deterministic failures."""

import pytest

from repro.errors import RemoteUnavailable
from repro.remote.rpc import RpcTransport
from repro.util.clock import VirtualClock
from repro.util.stats import Counters


class TestTransport:
    def test_latency_charged_to_clock(self):
        clock = VirtualClock()
        rpc = RpcTransport("svc", clock=clock, latency=0.25)
        rpc.call("op", lambda: 1)
        rpc.call("op", lambda: 2)
        assert clock.now == 0.5

    def test_result_passthrough(self):
        rpc = RpcTransport("svc")
        assert rpc.call("op", lambda: "value") == "value"

    def test_counters(self):
        counters = Counters()
        rpc = RpcTransport("svc", counters=counters)
        rpc.call("search", lambda: None)
        rpc.call("fetch", lambda: None)
        assert rpc.calls == 2
        assert counters.get("rpc.svc.calls.search") == 1

    def test_failure_rate_validation(self):
        with pytest.raises(ValueError):
            RpcTransport("svc", failure_rate=1.5)

    def test_deterministic_failures(self):
        def failures(seed):
            rpc = RpcTransport("svc", failure_rate=0.5, seed=seed)
            out = []
            for i in range(20):
                try:
                    rpc.call("op", lambda: i)
                    out.append(False)
                except RemoteUnavailable:
                    out.append(True)
            return out

        assert failures(7) == failures(7)
        assert any(failures(7)) and not all(failures(7))

    def test_zero_rate_never_fails(self):
        rpc = RpcTransport("svc", failure_rate=0.0)
        for i in range(50):
            assert rpc.call("op", lambda: i) == i

    def test_failure_counter(self):
        counters = Counters()
        rpc = RpcTransport("svc", failure_rate=1.0, counters=counters)
        with pytest.raises(RemoteUnavailable):
            rpc.call("op", lambda: None)
        assert counters.get("rpc.svc.failures") == 1
