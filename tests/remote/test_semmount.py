"""Semantic mount points: §3.1/3.2 behaviour through HacFileSystem."""

import pytest

from repro.errors import MountError, QueryLanguageMismatch
from repro.remote.namespace import NameSpace, RemoteDoc
from repro.remote.rpc import CircuitBreaker, RpcTransport
from repro.remote.searchsvc import SimulatedSearchService


class OtherLanguage(NameSpace):
    namespace_id = "weird"
    query_language = "sql"

    def search(self, query_text):
        return []

    def fetch(self, doc):
        return ""


class TestMountTable:
    def test_mount_and_scope_import(self, populated, library):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        populated.smkdir("/fp", "fingerprint")
        names = populated.links("/fp")
        # local hits plus the two matching remote papers (by title)
        assert {"Survey", "Sensors"} <= set(names)
        assert names["Survey"][1] == "digilib://fp-survey"

    def test_remote_link_readable_through_fetch(self, populated, library):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        populated.smkdir("/fp", "fingerprint")
        body = populated.read_file("/fp/Survey")
        assert b"survey of fingerprint" in body

    def test_mount_scope_is_positional(self, populated, library):
        # mounted under /lib: a query scoped to /notes must NOT import
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        populated.smkdir("/notes/fp", "fingerprint")
        assert all("digilib" not in tgt
                   for _c, tgt in populated.links("/notes/fp").values())

    def test_double_mount_same_id_rejected(self, populated, library):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        with pytest.raises(MountError):
            populated.smount("/lib", library)

    def test_language_mismatch_rejected(self, populated, library):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        with pytest.raises(QueryLanguageMismatch):
            populated.smount("/lib", OtherLanguage())

    def test_multiple_mount_unions_scopes(self, populated, library):
        other = SimulatedSearchService("arxiv", documents={
            "fp-new": "new fingerprint matching paper",
        })
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        populated.smount("/lib", other)
        populated.smkdir("/fp", "fingerprint")
        targets = {tgt for _c, tgt in populated.links("/fp").values()}
        assert "digilib://fp-survey" in targets
        assert "arxiv://fp-new" in targets  # results stay disjoint by ns

    def test_sunmount_stops_imports(self, populated, library):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        populated.smkdir("/fp", "fingerprint")
        assert "Survey" in populated.links("/fp")
        populated.sunmount("/lib", "digilib")
        assert "Survey" not in populated.links("/fp")

    def test_sunmount_unknown_rejected(self, populated, library):
        populated.mkdir("/lib")
        with pytest.raises(MountError):
            populated.sunmount("/lib")
        populated.smount("/lib", library)
        with pytest.raises(MountError):
            populated.sunmount("/lib", "nope")

    def test_mount_survives_rename(self, populated, library):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        populated.rename("/lib", "/library")
        assert populated.semmounts.is_mount_point("/library")
        populated.smkdir("/fp", "fingerprint")
        assert "Survey" in populated.links("/fp")

    def test_mount_points_listing(self, populated, library):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        assert list(populated.semmounts.mount_points()) == [("/lib", ["digilib"])]


class TestRefinement:
    def test_child_refines_remote_results(self, populated, library):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/fp/sensors", "capacitive")
        names = populated.links("/fp/sensors")
        assert set(names) == {"Sensors"}

    def test_prohibited_remote_result(self, populated, library):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        populated.smkdir("/fp", "fingerprint")
        populated.unlink("/fp/Survey")
        populated.ssync("/")
        assert "Survey" not in populated.listdir("/fp")
        assert "digilib://fp-survey" in populated.prohibited("/fp")

    def test_remote_result_gone_from_backend_drops(self, populated, library):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        populated.smkdir("/fp", "fingerprint")
        library.remove_document("fp-survey")
        populated.ssync("/")
        assert "Survey" not in populated.listdir("/fp")

    def test_physical_file_in_mount_dir_indexed(self, populated, library):
        """§3.1: physical files within a semantic mount point are indexed
        and can match queries outside the mount's subtree."""
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        populated.write_file("/lib/reading-notes.txt",
                             b"my fingerprint reading notes")
        populated.clock.tick()
        populated.ssync("/")
        populated.smkdir("/fp", "fingerprint")
        assert "reading-notes.txt" in populated.links("/fp")


class TestHealth:
    """``semmounts.health()`` reflects each back-end's breaker state."""

    @pytest.fixture
    def guarded(self, populated):
        return SimulatedSearchService(
            "guardlib",
            documents={"fp-atlas": "an atlas of fingerprint patterns"},
            transport=RpcTransport(
                "guardlib", clock=populated.clock,
                breaker=CircuitBreaker(failure_threshold=1, cooldown=30.0)))

    def test_breakerless_backend_is_unmonitored(self, populated, library):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        assert populated.semmounts.health() == {"digilib": "unmonitored"}

    def test_open_breaker_is_reported_and_flags_directories(
            self, populated, library, guarded):
        populated.mkdir("/lib")
        populated.smount("/lib", library)
        populated.smount("/lib", guarded)
        populated.smkdir("/fp", "fingerprint")
        assert populated.semmounts.health()["guardlib"] == "closed"
        assert "fp-atlas" in populated.links("/fp")

        guarded.transport.failure_rate = 1.0
        populated.ssync("/")  # degrades, never raises
        assert populated.semmounts.health() == {"digilib": "unmonitored",
                                                "guardlib": "open"}
        # last-known-good links are kept and flagged stale
        entry = populated.health("/fp")["directories"]["/fp"]
        assert "guardlib" in entry["degraded_remote"]
        assert "fp-atlas" in entry["degraded_links"]
        assert "fp-atlas" in populated.links("/fp")
        # while open, further syncs are rejected locally (no backend calls)
        calls = guarded.transport.calls
        populated.ssync("/")
        assert guarded.transport.calls == calls
        assert populated.semmounts.health()["guardlib"] == "open"

    def test_breaker_recovers_half_open_to_closed(self, populated, guarded):
        populated.mkdir("/lib")
        populated.smount("/lib", guarded)
        populated.smkdir("/fp", "fingerprint")
        guarded.transport.failure_rate = 1.0
        populated.ssync("/")
        assert populated.semmounts.health()["guardlib"] == "open"

        guarded.transport.failure_rate = 0.0
        populated.clock.advance(31.0)  # past the cool-down: half-open probe
        populated.ssync("/")
        assert populated.semmounts.health()["guardlib"] == "closed"
        assert populated.health("/fp")["directories"] == {}
        assert "fp-atlas" in populated.links("/fp")
