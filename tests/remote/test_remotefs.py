"""Another user's HAC file system as a mountable name space (§3)."""

import pytest

from repro.core.hacfs import HacFileSystem
from repro.remote.remotefs import RemoteHacFileSystem


@pytest.fixture
def coworker():
    other = HacFileSystem()
    other.makedirs("/papers")
    other.write_file("/papers/fp.txt", b"her fingerprint bibliography")
    other.write_file("/papers/ml.txt", b"machine learning reading list")
    other.smkdir("/curated", "bibliography OR reading")
    other.ssync("/")
    return other


class TestExport:
    def test_search_remote_hac(self, coworker):
        ns = RemoteHacFileSystem("carol", coworker)
        hits = ns.search("fingerprint")
        assert [h.doc for h in hits] == ["/papers/fp.txt"]

    def test_fetch(self, coworker):
        ns = RemoteHacFileSystem("carol", coworker)
        assert "bibliography" in ns.fetch("/papers/fp.txt")

    def test_export_root_restricts(self, coworker):
        coworker.makedirs("/private")
        coworker.write_file("/private/fp-secret.txt", b"private fingerprint")
        coworker.ssync("/")
        ns = RemoteHacFileSystem("carol", coworker, export_root="/papers")
        docs = [h.doc for h in ns.search("fingerprint")]
        assert docs == ["/papers/fp.txt"]

    def test_export_semantic_dir_shares_curation(self, coworker):
        """Mounting a coworker's *semantic directory* searches only their
        curated result — browsing someone else's classification (§3.2)."""
        ns = RemoteHacFileSystem("carol", coworker, export_root="/curated")
        docs = {h.doc for h in ns.search("*")}
        assert docs == {"/papers/fp.txt", "/papers/ml.txt"}
        docs = {h.doc for h in ns.search("learning")}
        assert docs == {"/papers/ml.txt"}


class TestMountedIntoLocal(object):
    def test_full_cycle(self, populated, coworker):
        ns = RemoteHacFileSystem("carol", coworker)
        populated.mkdir("/carol")
        populated.smount("/carol", ns)
        populated.smkdir("/fp", "fingerprint")
        links = populated.links("/fp")
        assert "carol://" + "/papers/fp.txt" in {t for _c, t in links.values()}
        # read the remote file through the local link name
        name = next(n for n, (_c, t) in links.items()
                    if t == "carol:///papers/fp.txt")
        assert b"bibliography" in populated.read_file(f"/fp/{name}")

    def test_mutual_mounts_no_cycle_trouble(self, populated, coworker):
        """§3.2: s.Local as a multiple mount — 'no problem of cyclic
        reference here' because a mount is just a CBA interface."""
        here_ns = RemoteHacFileSystem("me", populated)
        there_ns = RemoteHacFileSystem("carol", coworker)
        populated.mkdir("/carol")
        populated.smount("/carol", there_ns)
        coworker.mkdir("/me")
        coworker.smount("/me", here_ns)
        populated.smkdir("/fp", "fingerprint")
        coworker.smkdir("/fp2", "fingerprint")
        assert populated.links("/fp")
        assert coworker.links("/fp2")
