"""The MIT SFS baseline — and the limitations HAC lifts."""

import pytest

from repro.baselines.sfs import SemanticFileSystem, default_transducer
from repro.errors import InvalidArgument
from repro.vfs.filesystem import FileSystem


@pytest.fixture
def sfs():
    physical = FileSystem()
    physical.makedirs("/mail")
    physical.write_file("/mail/m1", b"From: alice\nSubject: fingerprint\n\n"
                                    b"the sensor works\n")
    physical.write_file("/mail/m2", b"From: bob\nSubject: lunch\n\nnoon?\n")
    physical.write_file("/mail/m3", b"From: alice\nSubject: lunch\n\nlate\n")
    system = SemanticFileSystem(physical)
    system.index_all()
    return system


class TestTransducer:
    def test_header_extraction(self):
        pairs = default_transducer("/m", "From: alice\nSubject: x\n\nbody here")
        assert ("from", "alice") in pairs
        assert ("subject", "x") in pairs
        assert ("text", "body") in pairs
        assert ("name", "m") in pairs

    def test_headers_stop_at_first_non_header(self):
        pairs = default_transducer("/m", "no header\nFrom: late")
        assert ("from", "late") not in pairs


class TestVirtualDirectories:
    def test_single_attribute_lookup(self, sfs):
        assert sfs.lookup("/sfs/from:/alice") == ["/mail/m1", "/mail/m3"]

    def test_conjunction_by_path(self, sfs):
        # the SFS trick: "/" between virtual components means AND
        assert sfs.lookup("/sfs/from:/alice/subject:/lunch") == ["/mail/m3"]

    def test_body_text_attribute(self, sfs):
        assert sfs.lookup("/sfs/text:/sensor") == ["/mail/m1"]

    def test_no_match(self, sfs):
        assert sfs.lookup("/sfs/from:/carol") == []

    def test_listdir_values_enumeration(self, sfs):
        assert sfs.listdir("/sfs/from:") == ["alice", "bob"]
        assert sfs.listdir("/sfs/from:/alice/subject:") == ["fingerprint", "lunch"]

    def test_listdir_files(self, sfs):
        assert sfs.listdir("/sfs/from:/alice") == ["m1", "m3"]

    def test_bad_paths_rejected(self, sfs):
        with pytest.raises(InvalidArgument):
            sfs.lookup("/elsewhere/from:/alice")
        with pytest.raises(InvalidArgument):
            sfs.lookup("/sfs/notanattr/alice")

    def test_reindex_after_change(self, sfs):
        sfs.physical.write_file("/mail/m4", b"From: carol\n\nhi\n")
        sfs.index_all()
        assert sfs.lookup("/sfs/from:/carol") == ["/mail/m4"]


class TestLimitations:
    """§5's list of what SFS cannot do — kept as executable documentation."""

    def test_cannot_create_files_in_virtual_dirs(self, sfs):
        with pytest.raises(InvalidArgument):
            sfs.create_in_virtual("/sfs/from:/alice", "new.txt")

    def test_cannot_customise_results(self, sfs):
        with pytest.raises(InvalidArgument):
            sfs.remove_result("/sfs/from:/alice", "m1")
