"""Pseudo-FS-style marshal/unmarshal interposition baseline."""

import pytest

from repro.baselines.pseudofs import PseudoFileSystem
from repro.errors import FileNotFound
from repro.vfs.filesystem import FileSystem


@pytest.fixture
def pseudo():
    return PseudoFileSystem(FileSystem())


class TestForwarding:
    def test_file_roundtrip(self, pseudo):
        pseudo.mkdir("/d")
        pseudo.write_file("/d/f", b"through the server")
        assert pseudo.read_file("/d/f") == b"through the server"
        assert pseudo.physical.read_file("/d/f") == b"through the server"

    def test_stat_marshals_to_dict(self, pseudo):
        pseudo.write_file("/f", b"12345")
        st = pseudo.stat("/f")
        assert st["size"] == 5
        assert st["nlink"] == 1

    def test_listdir_rename_unlink(self, pseudo):
        pseudo.write_file("/a", b"x")
        pseudo.rename("/a", "/b")
        assert pseudo.listdir("/") == ["b"]
        pseudo.unlink("/b")
        assert pseudo.listdir("/") == []

    def test_symlink_readlink(self, pseudo):
        pseudo.write_file("/t", b"x")
        pseudo.symlink("/t", "/l")
        assert pseudo.readlink("/l") == "/t"

    def test_rmdir(self, pseudo):
        pseudo.mkdir("/d")
        pseudo.rmdir("/d")
        assert not pseudo.exists("/d")

    def test_exists(self, pseudo):
        assert pseudo.exists("/")
        assert not pseudo.exists("/ghost")

    def test_errors_propagate(self, pseudo):
        with pytest.raises(FileNotFound):
            pseudo.read_file("/ghost")

    def test_fd_io(self, pseudo):
        fd = pseudo.open("/f", "w")
        pseudo.write(fd, b"abc")
        pseudo.close(fd)
        fd = pseudo.open("/f", "r")
        assert pseudo.read(fd, 2) == b"ab"
        pseudo.close(fd)

    def test_every_call_counts_a_request(self, pseudo):
        before = pseudo.counters.get("pseudo.requests")
        pseudo.mkdir("/x")
        pseudo.listdir("/")
        assert pseudo.counters.get("pseudo.requests") == before + 2
        assert pseudo.counters.get("pseudo.request_bytes") > 0
        assert pseudo.counters.get("pseudo.reply_bytes") > 0
