"""The Prospero baseline: flexible filters, zero consistency guarantees."""

import pytest

from repro.baselines.prospero import (
    ProsperoFileSystem,
    grep_filter,
    suffix_filter,
)
from repro.errors import InvalidArgument
from repro.vfs.filesystem import FileSystem


@pytest.fixture
def prospero():
    fs = FileSystem()
    fs.makedirs("/docs")
    fs.write_file("/docs/a.txt", b"fingerprint study")
    fs.write_file("/docs/b.txt", b"image processing")
    fs.write_file("/docs/c.md", b"fingerprint markdown")
    return ProsperoFileSystem(fs)


class TestFilters:
    def test_plain_link_lists_target(self, prospero):
        prospero.add_link("all", "/docs")
        assert prospero.view("all") == ["/docs/a.txt", "/docs/b.txt",
                                        "/docs/c.md"]

    def test_grep_filter(self, prospero):
        prospero.add_link("fp", "/docs",
                          [grep_filter("fingerprint", prospero.physical)])
        assert prospero.run_filter("fp") == ["/docs/a.txt", "/docs/c.md"]

    def test_filter_composition(self, prospero):
        prospero.add_link("fp-txt", "/docs",
                          [grep_filter("fingerprint", prospero.physical)])
        prospero.compose("fp-txt", suffix_filter(".txt"))
        assert prospero.run_filter("fp-txt") == ["/docs/a.txt"]

    def test_arbitrary_callable_is_a_filter(self, prospero):
        prospero.add_link("weird", "/docs",
                          [lambda _d, entries: entries[::-1][:1]])
        assert prospero.run_filter("weird") == ["/docs/c.md"]

    def test_link_validation(self, prospero):
        with pytest.raises(InvalidArgument):
            prospero.add_link("bad", "/docs/a.txt")
        prospero.add_link("x", "/docs")
        with pytest.raises(InvalidArgument):
            prospero.add_link("x", "/docs")
        with pytest.raises(InvalidArgument):
            prospero.view("ghost")


class TestNoConsistencyGuarantees:
    """§5: 'Prospero does not offer consistency guarantees of any kind.'"""

    def test_view_before_first_run_is_an_error(self, prospero):
        prospero.add_link("fp", "/docs",
                          [grep_filter("fingerprint", prospero.physical)])
        with pytest.raises(InvalidArgument):
            prospero.view("fp")

    def test_view_goes_stale_on_data_change(self, prospero):
        prospero.add_link("fp", "/docs",
                          [grep_filter("fingerprint", prospero.physical)])
        prospero.run_filter("fp")
        prospero.physical.write_file("/docs/d.txt", b"new fingerprint file")
        # the view is silently stale...
        assert "/docs/d.txt" not in prospero.view("fp")
        # ...until the USER re-runs the filter
        assert "/docs/d.txt" in prospero.run_filter("fp")

    def test_view_goes_stale_on_filter_change(self, prospero):
        prospero.add_link("fp", "/docs",
                          [grep_filter("fingerprint", prospero.physical)])
        prospero.run_filter("fp")
        prospero.compose("fp", suffix_filter(".md"))
        assert prospero.view("fp") == ["/docs/a.txt", "/docs/c.md"]  # stale
        assert prospero.run_filter("fp") == ["/docs/c.md"]

    def test_contrast_hac_keeps_results_consistent(self, populated):
        """The §5 punchline: the same curation event that Prospero leaves
        stale triggers HAC's automatic cascade."""
        populated.smkdir("/fp", "fingerprint")
        populated.smkdir("/fp/mail", "alice")
        populated.unlink("/fp/msg1.txt")
        # no user-driven re-run anywhere — the dependent updated itself
        assert populated.listdir("/fp/mail") == []
