"""The Nebula baseline: views, scopes, DAGs, and its limitations."""

import pytest

from repro.baselines.nebula import NebulaFileSystem
from repro.errors import DependencyCycle, InvalidArgument
from repro.vfs.filesystem import FileSystem


@pytest.fixture
def nebula():
    fs = FileSystem()
    fs.makedirs("/docs")
    fs.write_file("/docs/p1.txt", b"From: alice\n\nfingerprint study\n")
    fs.write_file("/docs/p2.txt", b"From: bob\n\nfingerprint and images\n")
    fs.write_file("/docs/p3.txt", b"From: alice\n\nimage segmentation\n")
    return NebulaFileSystem(fs)


class TestViews:
    def test_unscoped_view_covers_all_files(self, nebula):
        nebula.create_view("fp", "fingerprint")
        assert nebula.view_contents("fp") == ["/docs/p1.txt", "/docs/p2.txt"]

    def test_attribute_queries(self, nebula):
        nebula.create_view("alice", "from:alice")
        assert nebula.view_contents("alice") == ["/docs/p1.txt", "/docs/p3.txt"]

    def test_scoped_view_refines(self, nebula):
        nebula.create_view("fp", "fingerprint")
        nebula.create_view("fp-alice", "from:alice", scope=["fp"])
        assert nebula.view_contents("fp-alice") == ["/docs/p1.txt"]

    def test_dag_union_scope(self, nebula):
        nebula.create_view("fp", "fingerprint")
        nebula.create_view("img", "image OR images")
        nebula.create_view("either", "from:alice OR from:bob",
                           scope=["fp", "img"])
        assert nebula.view_contents("either") == [
            "/docs/p1.txt", "/docs/p2.txt", "/docs/p3.txt"]

    def test_scope_editing_customises(self, nebula):
        nebula.create_view("fp", "fingerprint")
        nebula.create_view("img", "image OR images")
        nebula.create_view("pick", "from:alice", scope=["fp"])
        assert nebula.view_contents("pick") == ["/docs/p1.txt"]
        nebula.set_scope("pick", ["img"])        # the Nebula move
        assert nebula.view_contents("pick") == ["/docs/p3.txt"]

    def test_always_consistent_with_live_data(self, nebula):
        nebula.create_view("fp", "fingerprint")
        nebula.physical.write_file("/docs/p4.txt", b"more fingerprint data\n")
        assert "/docs/p4.txt" in nebula.view_contents("fp")
        nebula.physical.unlink("/docs/p1.txt")
        assert "/docs/p1.txt" not in nebula.view_contents("fp")

    def test_set_query(self, nebula):
        nebula.create_view("v", "fingerprint")
        nebula.set_query("v", "segmentation")
        assert nebula.view_contents("v") == ["/docs/p3.txt"]


class TestStructuralRules:
    def test_duplicate_view_rejected(self, nebula):
        nebula.create_view("v", "x")
        with pytest.raises(InvalidArgument):
            nebula.create_view("v", "y")

    def test_unknown_scope_rejected(self, nebula):
        with pytest.raises(InvalidArgument):
            nebula.create_view("v", "x", scope=["ghost"])

    def test_scope_cycle_rejected(self, nebula):
        nebula.create_view("a", "x")
        nebula.create_view("b", "x", scope=["a"])
        with pytest.raises(DependencyCycle):
            nebula.set_scope("a", ["b"])
        with pytest.raises(DependencyCycle):
            nebula.set_scope("a", ["a"])

    def test_drop_view_in_use_rejected(self, nebula):
        nebula.create_view("a", "x")
        nebula.create_view("b", "x", scope=["a"])
        with pytest.raises(InvalidArgument):
            nebula.drop_view("a")
        nebula.drop_view("b")
        nebula.drop_view("a")
        assert nebula.views() == []


class TestLimitations:
    """§5's criticisms of Nebula, kept executable."""

    def test_views_are_not_directories(self, nebula):
        nebula.create_view("fp", "fingerprint")
        with pytest.raises(InvalidArgument):
            nebula.create_file_in_view("fp", "notes.txt")

    def test_cannot_group_arbitrary_files(self, nebula):
        nebula.create_view("fp", "fingerprint")
        with pytest.raises(InvalidArgument):
            nebula.add_to_view("fp", "/docs/p3.txt")

    def test_cannot_prune_results(self, nebula):
        nebula.create_view("fp", "fingerprint")
        with pytest.raises(InvalidArgument):
            nebula.remove_from_view("fp", "/docs/p1.txt")
