"""Jade-style logical name space baseline."""

import pytest

from repro.baselines.jadefs import JadeFileSystem
from repro.vfs.filesystem import FileSystem


@pytest.fixture
def jade():
    physical = FileSystem()
    physical.makedirs("/vol1/home")
    physical.makedirs("/vol2/proj")
    jfs = JadeFileSystem(physical)
    jfs.attach("/home", "/vol1/home")
    jfs.attach("/proj", "/vol2/proj")
    return jfs


class TestTranslation:
    def test_identity_default(self, jade):
        assert jade.translate("/elsewhere/x") == "/elsewhere/x"

    def test_prefix_mapping(self, jade):
        assert jade.translate("/home/f.txt") == "/vol1/home/f.txt"
        assert jade.translate("/proj") == "/vol2/proj"

    def test_longest_prefix_wins(self, jade):
        jade.attach("/home/special", "/vol2/proj")
        assert jade.translate("/home/special/x") == "/vol2/proj/x"
        assert jade.translate("/home/plain") == "/vol1/home/plain"

    def test_name_cache_hits(self, jade):
        jade.translate("/home/f")
        before = jade.counters.get("jade.components")
        jade.translate("/home/f")
        assert jade.counters.get("jade.components") == before  # cached

    def test_attach_invalidates_cache(self, jade):
        jade.translate("/home/f")
        jade.attach("/home/f", "/vol2/proj")
        assert jade.translate("/home/f") == "/vol2/proj"


class TestForwardedOps:
    def test_file_roundtrip_lands_in_physical(self, jade):
        jade.write_file("/home/a.txt", b"via jade")
        assert jade.read_file("/home/a.txt") == b"via jade"
        assert jade.physical.read_file("/vol1/home/a.txt") == b"via jade"

    def test_mkdir_listdir_stat(self, jade):
        jade.mkdir("/proj/sub")
        assert jade.listdir("/proj") == ["sub"]
        assert jade.stat("/proj/sub").is_dir

    def test_rename_within_logical_space(self, jade):
        jade.write_file("/home/a", b"x")
        jade.rename("/home/a", "/home/b")
        assert jade.exists("/home/b") and not jade.exists("/home/a")

    def test_symlink_and_unlink(self, jade):
        jade.write_file("/home/t", b"x")
        jade.symlink("/vol1/home/t", "/home/l")
        assert jade.readlink("/home/l") == "/vol1/home/t"
        jade.unlink("/home/l")
        jade.unlink("/home/t")
        assert jade.listdir("/home") == []

    def test_fd_io(self, jade):
        fd = jade.open("/home/f", "w")
        jade.write(fd, b"hello")
        jade.close(fd)
        fd = jade.open("/home/f", "r")
        assert jade.read(fd) == b"hello"
        jade.close(fd)

    def test_translations_counted(self, jade):
        before = jade.counters.get("jade.translations")
        jade.write_file("/home/y", b"1")
        assert jade.counters.get("jade.translations") > before
