"""Property: a tenant cannot observe its neighbours, byte for byte.

For any fuzzed interleaving of two tenants' operation streams over one
shared :class:`HacFileSystem`, every observable a tenant has — its tree,
its semantic-directory links, its strong query answers, and the final
``tenant_digest`` — must be identical to a *solo twin*: a world that
hosts only that tenant and replays only that tenant's stream.  The
shared world additionally takes host-namespace noise (files outside
``/tenants``) that must be equally invisible.

This is the fault-free half of the isolation story; the chaos half
(faults aimed at one tenant) lives in :mod:`repro.chaos.tenantsoak`.

``TENANT_SEED`` shifts the fuzz seeds and ``TENANT_K`` (>0) runs the
shared world over a sharded search cluster (the CI tenant-sweep matrix
runs monolith and K=3; the solo twins always run the monolith, so K>0
also cross-checks cluster answers against monolith answers).
"""

import os
import random

from repro.chaos.tenantsoak import tenant_digest
from repro.core.hacfs import HacFileSystem
from repro.core.quota import QuotaSpec

SEED = int(os.environ.get("TENANT_SEED", "0"))
K = int(os.environ.get("TENANT_K", "0"))

TERMS = ("fingerprint", "retrieval", "compression", "minutiae", "ridge",
         "indexing", "archive")
FILLER = ("survey report ledger corpus draft agenda recipe benchmark "
          "analysis snapshot hierarchy replica").split()


def make_world(names, k=0):
    backend = None
    if k > 0:
        from repro.cba.backend import open_backend

        backend = open_backend({"kind": "cluster", "shards": k,
                                "latency": 0.0})
    hac = HacFileSystem(backend=backend)
    hac.maintenance.set_mode("batched")
    tenants = {name: hac.tenants.create(name, quota=QuotaSpec(weight=w))
               for name, w in names}
    return hac, tenants


class TenantOpFuzzer:
    """One tenant's deterministic op stream, valid by construction.

    The fuzzer tracks the namespace it has built so every generated op is
    legal; the same op objects are applied to the shared world's facade
    and to the solo twin's, so any divergence is the *world's* fault."""

    def __init__(self, name, rng):
        self.name = name
        self.rng = rng
        self.files = []
        self.dirs = ["/"]
        self.counter = 0

    def _text(self):
        words = self.rng.choices(FILLER, k=self.rng.randint(3, 10))
        words.insert(self.rng.randrange(len(words) + 1),
                     self.rng.choice(TERMS))
        return " ".join(words).encode("utf-8")

    def next_op(self):
        self.counter += 1
        r = self.rng.random()
        if r < 0.30 or not self.files:
            d = self.rng.choice(self.dirs)
            path = (d.rstrip("/") or "") + f"/f{self.counter}.txt"
            self.files.append(path)
            return ("write", path, self._text())
        if r < 0.42:
            return ("write", self.rng.choice(self.files), self._text())
        if r < 0.50:
            d = self.rng.choice(self.dirs)
            path = (d.rstrip("/") or "") + f"/d{self.counter}"
            self.dirs.append(path)
            return ("mkdir", path)
        if r < 0.58:
            old = self.rng.choice(self.files)
            new = old[:-4] + f"_r{self.counter}.txt"
            self.files[self.files.index(old)] = new
            return ("rename", old, new)
        if r < 0.66:
            victim = self.files.pop(self.rng.randrange(len(self.files)))
            return ("unlink", victim)
        if r < 0.72:
            path = f"/q{self.counter}"
            return ("smkdir", path, self.rng.choice(TERMS))
        if r < 0.80:
            return ("barrier",)
        return ("query", self.rng.choice(TERMS))


def apply_op(tenant, op):
    kind = op[0]
    if kind == "write":
        tenant.write_file(op[1], op[2])
    elif kind == "mkdir":
        tenant.mkdir(op[1])
    elif kind == "rename":
        tenant.rename(op[1], op[2])
    elif kind == "unlink":
        tenant.unlink(op[1])
    elif kind == "smkdir":
        if not tenant.exists(op[1]):
            tenant.smkdir(op[1], op[2])
    elif kind == "barrier":
        tenant.barrier()
    elif kind == "query":
        return tenant.glimpse(op[1])
    return None


def test_fuzzed_interleavings_match_solo_twins():
    rng = random.Random(0x7E4A + SEED)
    for round_no in range(3):
        shared, tenants = make_world([("alpha", 3), ("beta", 1)], k=K)
        solos = {name: make_world([(name, 1)])[1][name]
                 for name in ("alpha", "beta")}
        fuzzers = {name: TenantOpFuzzer(
            name, random.Random(rng.randrange(1 << 30)))
            for name in ("alpha", "beta")}
        shared.watch("/")  # host noise flows through the shared pipeline
        shared.makedirs("/noise")
        for step in range(40):
            name = "alpha" if rng.random() < 0.6 else "beta"
            op = fuzzers[name].next_op()
            ours = apply_op(tenants[name], op)
            theirs = apply_op(solos[name], op)
            assert ours == theirs, \
                (round_no, step, name, op[0], ours, theirs)
            if rng.random() < 0.2:  # host-namespace noise, tenant-invisible
                shared.write_file(f"/noise/h{round_no}_{step}.txt",
                                  b"host fingerprint noise")
        for name in ("alpha", "beta"):
            assert tenant_digest(tenants[name]) == \
                tenant_digest(solos[name]), (round_no, name)


def test_neighbour_churn_never_leaks_into_query_answers():
    """Beta issues only queries while alpha churns hard; every answer
    beta sees must equal the answer from a world where alpha's churn
    never happened."""
    rng = random.Random(0xBEEF + SEED)
    shared, tenants = make_world([("alpha", 1), ("beta", 1)], k=K)
    solo_beta = make_world([("beta", 1)])[1]["beta"]
    alpha_fuzz = TenantOpFuzzer("alpha", random.Random(rng.randrange(1 << 30)))
    for t in (tenants["beta"], solo_beta):
        t.smkdir("/hits", "fingerprint")
        for i in range(4):
            t.write_file(f"/doc{i}.txt",
                         b"fingerprint ridge %d minutiae" % i)
        t.barrier()
    for step in range(30):
        apply_op(tenants["alpha"], alpha_fuzz.next_op())
        term = rng.choice(TERMS)
        assert tenants["beta"].glimpse(term) == solo_beta.glimpse(term), \
            (step, term)
    assert sorted(tenants["beta"].links("/hits")) == \
        sorted(solo_beta.links("/hits"))
    assert tenant_digest(tenants["beta"]) == tenant_digest(solo_beta)
