"""Seeded grammar fuzz for the query language and the fast path.

Complements ``test_fastpath_equivalence.py`` (hypothesis strategies over a
small word pool) with a plain seeded :class:`random.Random` grammar fuzzer
that is deterministic run-to-run with no external machinery:

* **roundtrips** — for random ASTs, ``parse(print(ast)) == ast``, including
  directory references rendered through a live directory map;
* **equivalence** — the planner + fast path answer bit-identically
  (``Bitmap.to_bytes``) to the exhaustive naive scan when everything is
  indexable, to the seed scan-path engine under real stopwords (where the
  naive scan stops being the oracle), and to the naive scan through the
  boolean evaluator under arbitrary scopes.

The word pool deliberately mixes ordinary words, stopwords (``the``,
``a``, ``of``) and tokenizer edge shapes (digits, underscores), because
the stopword/answerability corner is where the fast path has historically
diverged.
"""

import random

from repro.cba import evaluator
from repro.cba.engine import CBAEngine
from repro.cba.queryast import (
    And,
    Approx,
    DirRef,
    FieldTerm,
    MatchAll,
    Not,
    Or,
    Phrase,
    Term,
)
from repro.cba.queryparser import parse_query
from repro.cba.tokenizer import DEFAULT_STOPWORDS
from repro.core.hacfs import HacFileSystem
from repro.util.bitmap import Bitmap

#: parser keywords can never be bare terms; stopwords deliberately can
WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "the", "a", "of",
         "zeta9", "fbi_v2"]
FIELDS = [("from", "alice"), ("from", "bob"), ("type", "mail")]

CONTENT_KINDS = ("term", "term", "phrase", "approx", "all")
ROUNDTRIP_KINDS = CONTENT_KINDS + ("field",)


class QueryFuzzer:
    """Random query ASTs from one seeded rng, straight off the grammar."""

    def __init__(self, rng: random.Random, kinds=ROUNDTRIP_KINDS, uids=()):
        self.rng = rng
        self.kinds = tuple(kinds) + (("dir",) if uids else ())
        self.uids = tuple(uids)

    def leaf(self):
        kind = self.rng.choice(self.kinds)
        if kind == "term":
            return Term(self.rng.choice(WORDS))
        if kind == "phrase":
            # one-word phrases parse back to Term, so always use >= 2
            n = self.rng.randint(2, 3)
            return Phrase([self.rng.choice(WORDS) for _ in range(n)])
        if kind == "approx":
            return Approx(self.rng.choice(WORDS), self.rng.randint(1, 2))
        if kind == "field":
            field, value = self.rng.choice(FIELDS)
            return FieldTerm(field, value)
        if kind == "dir":
            return DirRef(self.rng.choice(self.uids))
        return MatchAll()

    def node(self, depth: int = 3):
        if depth <= 0 or self.rng.random() < 0.35:
            return self.leaf()
        op = self.rng.choice(("and", "or", "not"))
        if op == "not":
            return Not(self.node(depth - 1))
        children = [self.node(depth - 1)
                    for _ in range(self.rng.randint(2, 3))]
        return (And if op == "and" else Or)(children)


def random_corpus(rng: random.Random, n_docs: int):
    return [" ".join(rng.choice(WORDS)
                     for _ in range(rng.randint(0, 12)))
            for _ in range(n_docs)]


def build_engine(texts, num_blocks=4, fast_path=True, **kwargs):
    store = dict(enumerate(texts))
    engine = CBAEngine(loader=lambda k: store.get(k, ""),
                       num_blocks=num_blocks, fast_path=fast_path, **kwargs)
    for key in store:
        engine.index_document(key, path=f"/{key}", mtime=0.0)
    return engine


# ----------------------------------------------------------------------
# parse → print → parse roundtrips
# ----------------------------------------------------------------------

def test_fuzz_roundtrip():
    fuzz = QueryFuzzer(random.Random(0xF00D))
    for _ in range(500):
        ast = fuzz.node()
        text = ast.to_text()
        again = parse_query(text)
        assert again == ast, f"{text!r} reparsed to {again!r}"
        # printing is a fixed point: once parsed, text is stable
        assert again.to_text() == text


def test_fuzz_roundtrip_with_dir_refs():
    hac = HacFileSystem()
    hac.makedirs("/projects/fbi")
    hac.mkdir("/mail")
    uids = [hac.dirmap.uid_of(p) for p in ("/projects", "/projects/fbi",
                                           "/mail")]
    assert all(uid is not None for uid in uids)
    fuzz = QueryFuzzer(random.Random(0xCAFE), uids=uids)
    for _ in range(300):
        ast = fuzz.node()
        text = ast.to_text(hac.dirmap.path_of)
        again = parse_query(text, resolve_dir=hac.dirmap.uid_of)
        assert again == ast, f"{text!r} reparsed to {again!r}"


# ----------------------------------------------------------------------
# planner + fast path vs the naive evaluator, bit-identical
# ----------------------------------------------------------------------

def test_fuzz_fast_path_bit_identical_to_naive():
    """With everything indexable the exhaustive scan is the oracle; the
    planned/postings/memoised answer must serialise byte-for-byte equal."""
    rng = random.Random(2024)
    fuzz = QueryFuzzer(rng, kinds=CONTENT_KINDS)
    for _ in range(120):
        engine = build_engine(random_corpus(rng, rng.randint(0, 14)),
                              num_blocks=rng.choice([1, 3, 8]),
                              min_term_length=1, stopwords=set())
        for _ in range(3):
            ast = fuzz.node()
            got = engine.search(ast)
            want = engine.naive_search(ast)
            assert got == want, ast
            assert got.to_bytes() == want.to_bytes(), ast


def test_fuzz_fast_path_matches_seed_scan_under_stopwords():
    """Under real stopwords + min length the index is blind to some tokens
    and the seed scan-path engine becomes the oracle (the answerability
    gate must refuse unsound postings answers)."""
    rng = random.Random(7)
    fuzz = QueryFuzzer(rng, kinds=CONTENT_KINDS)
    for _ in range(100):
        texts = random_corpus(rng, rng.randint(0, 12))
        num_blocks = rng.choice([1, 2, 6])
        fast = build_engine(texts, num_blocks, fast_path=True,
                            min_term_length=2,
                            stopwords=set(DEFAULT_STOPWORDS))
        slow = build_engine(texts, num_blocks, fast_path=False,
                            min_term_length=2,
                            stopwords=set(DEFAULT_STOPWORDS))
        for _ in range(3):
            ast = fuzz.node()
            assert fast.search(ast).to_bytes() == \
                slow.search(ast).to_bytes(), ast


def test_fuzz_evaluator_matches_naive_under_scopes():
    """The boolean evaluator with the planner on, over random scopes."""
    rng = random.Random(99)
    fuzz = QueryFuzzer(rng, kinds=CONTENT_KINDS)
    for _ in range(100):
        engine = build_engine(random_corpus(rng, rng.randint(0, 12)),
                              min_term_length=1, stopwords=set())
        universe = sorted(engine.all_docs())
        scope = Bitmap(doc for doc in universe if rng.random() < 0.6)
        ast = fuzz.node()
        got = evaluator.evaluate(ast, engine,
                                 resolve_dirref=lambda uid: Bitmap(),
                                 scope=scope)
        assert got == engine.naive_search(ast, scope), ast
