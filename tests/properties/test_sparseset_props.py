"""Property tests: SparseSet ≡ set ≡ Bitmap over mixed-density id spaces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitmap import Bitmap
from repro.util.sparseset import SparseSet

# mix small ids (dense, same chunk) and huge ids (sparse, many chunks)
ids = st.sets(st.one_of(
    st.integers(min_value=0, max_value=300),
    st.integers(min_value=60000, max_value=70000),
    st.integers(min_value=0, max_value=5_000_000),
))


@given(ids)
def test_roundtrip_matches_set(xs):
    s = SparseSet(xs)
    assert set(s) == xs
    assert len(s) == len(xs)
    assert list(s) == sorted(xs)


@given(ids, ids)
def test_algebra_matches_set(a, b):
    assert set(SparseSet(a) | SparseSet(b)) == a | b
    assert set(SparseSet(a) & SparseSet(b)) == a & b
    assert set(SparseSet(a) - SparseSet(b)) == a - b


@given(ids, ids)
def test_predicates_match_set(a, b):
    assert SparseSet(a).issubset(SparseSet(b)) == (a <= b)
    assert SparseSet(a).intersects(SparseSet(b)) == bool(a & b)


@given(ids)
def test_serialisation_roundtrip(a):
    s = SparseSet(a)
    assert SparseSet.from_bytes(s.to_bytes()) == s


@given(ids, st.integers(min_value=0, max_value=5_000_000))
def test_add_discard(a, x):
    s = SparseSet(a)
    s.add(x)
    assert set(s) == a | {x}
    s.discard(x)
    assert set(s) == a - {x}


@settings(max_examples=30)
@given(st.sets(st.integers(min_value=0, max_value=9000)))
def test_agrees_with_bitmap(a):
    """The two representations are interchangeable on the same data."""
    sparse, flat = SparseSet(a), Bitmap(a)
    assert list(sparse) == list(flat)
    assert sparse.max_id() == flat.max_id()
    assert len(sparse) == len(flat)


@given(st.sets(st.integers(min_value=0, max_value=100_000), min_size=0,
               max_size=60))
def test_sparse_wins_on_sparse_data(a):
    """Below ~3% density the sparse layout never loses to N/8."""
    if not a or max(a) <= 1000:
        return  # tiny id spaces: the flat bitmap's N/8 is already small
    sparse, flat = SparseSet(a), Bitmap(a)
    if len(a) * 16 < max(a):  # genuinely sparse
        assert sparse.nbytes <= flat.nbytes
