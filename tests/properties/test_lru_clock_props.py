"""Model-based property tests for the LRU cache and the virtual clock."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.clock import VirtualClock
from repro.util.lru import LRUCache

# -- LRU against a reference model ----------------------------------------------

ops = st.lists(st.tuples(st.sampled_from(["put", "get", "invalidate"]),
                         st.integers(min_value=0, max_value=12)),
               max_size=60)


@settings(max_examples=80)
@given(st.integers(min_value=1, max_value=6), ops)
def test_lru_matches_reference_model(capacity, operations):
    cache = LRUCache(capacity)
    model = []  # list of (key, value), most-recent last

    def model_get(key):
        for i, (k, v) in enumerate(model):
            if k == key:
                model.append(model.pop(i))
                return v
        return None

    def model_put(key, value):
        for i, (k, _v) in enumerate(model):
            if k == key:
                model.pop(i)
                break
        model.append((key, value))
        if len(model) > capacity:
            model.pop(0)

    for op, key in operations:
        if op == "put":
            model_put(key, key * 10)
            cache.put(key, key * 10)
        elif op == "get":
            assert cache.get(key) == model_get(key)
        else:
            expected = any(k == key for k, _v in model)
            model[:] = [(k, v) for k, v in model if k != key]
            assert cache.invalidate(key) == expected
        assert len(cache) == len(model)
        assert set(cache) == {k for k, _v in model}


# -- the clock fires every timer exactly at (or after) its deadline --------------

timer_specs = st.lists(st.tuples(st.floats(min_value=0.1, max_value=50),
                                 st.booleans()),
                       min_size=1, max_size=8)


@settings(max_examples=60)
@given(timer_specs, st.floats(min_value=1, max_value=200))
def test_clock_fires_in_deadline_order(specs, horizon):
    clock = VirtualClock()
    fired = []
    for idx, (delay, periodic) in enumerate(specs):
        if periodic:
            clock.schedule_periodic(delay, lambda i=idx: fired.append(
                (clock.now, i)))
        else:
            clock.schedule(delay, lambda i=idx: fired.append((clock.now, i)))
    clock.advance(horizon)
    times = [t for t, _i in fired]
    assert times == sorted(times), "timers must fire in time order"
    assert all(t <= horizon + 1e-9 for t in times)
    for idx, (delay, periodic) in enumerate(specs):
        count = sum(1 for _t, i in fired if i == idx)
        if periodic:
            # deadlines accumulate by repeated addition, so allow one step
            # of float drift against the closed-form count
            assert abs(count - int(horizon / delay)) <= 1
        else:
            assert count == (1 if delay <= horizon else 0)
