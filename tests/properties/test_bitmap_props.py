"""Property tests: Bitmap behaves exactly like a set of small ints."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitmap import Bitmap

ids = st.sets(st.integers(min_value=0, max_value=2000))


@given(ids)
def test_roundtrip_matches_set(xs):
    assert set(Bitmap(xs)) == xs
    assert len(Bitmap(xs)) == len(xs)


@given(ids, ids)
def test_or_is_union(a, b):
    assert set(Bitmap(a) | Bitmap(b)) == a | b


@given(ids, ids)
def test_and_is_intersection(a, b):
    assert set(Bitmap(a) & Bitmap(b)) == a & b


@given(ids, ids)
def test_sub_is_difference(a, b):
    assert set(Bitmap(a) - Bitmap(b)) == a - b


@given(ids, ids)
def test_inplace_ops_match(a, b):
    bm = Bitmap(a)
    bm |= Bitmap(b)
    assert set(bm) == a | b
    bm = Bitmap(a)
    bm &= Bitmap(b)
    assert set(bm) == a & b
    bm = Bitmap(a)
    bm -= Bitmap(b)
    assert set(bm) == a - b


@given(ids, ids)
def test_issubset_and_intersects(a, b):
    assert Bitmap(a).issubset(Bitmap(b)) == (a <= b)
    assert Bitmap(a).intersects(Bitmap(b)) == bool(a & b)


@given(ids)
def test_bytes_roundtrip(a):
    bm = Bitmap(a)
    assert Bitmap.from_bytes(bm.to_bytes()) == bm


@given(ids, st.integers(min_value=0, max_value=2000))
def test_add_discard(a, x):
    bm = Bitmap(a)
    bm.add(x)
    assert set(bm) == a | {x}
    bm.discard(x)
    assert set(bm) == a - {x}


@given(ids)
def test_nbytes_is_n_over_8(a):
    bm = Bitmap(a)
    expected = 0 if not a else max(a) // 8 + 1
    assert bm.nbytes == expected


@given(ids, ids)
def test_equality_is_extensional(a, b):
    assert (Bitmap(a) == Bitmap(b)) == (a == b)
