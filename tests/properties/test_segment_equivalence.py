"""Property: the segmented index store is observationally identical to
the monolithic one.

The segment plane (DESIGN.md §3i) restructures *how* GlimpseIndex state
is buffered, published, persisted, and recovered — memtable, frozen
segments, sealed log — while the live aggregates keep answering every
query.  Its contract is bit-identity: after any interleaving of writes,
removals, moves, strong and snapshot queries, async syncs, drains,
publishes, and reindexes, the segmented world's query answers, final
engine state, and serialized index must equal the monolithic world's,
byte for byte.  Both worlds share one pinned fsid and identical op
schedules, so doc keys and ids line up exactly and raw bitmap / to_obj
comparisons are meaningful.

A separate crash test arms a device crash inside the batched drain and
proves both worlds recover — the segmented one by folding its persisted
segments back (or rebuilding when the crash beat the first persist) —
to the same canonical state digest.

``SEG_SEED`` shifts the fuzz seeds and ``SEG_K`` (>0) runs the same
property against a sharded search cluster (CI matrix).
"""

import os
import random
from types import SimpleNamespace

import pytest

from repro.cba.queryparser import parse_query
from repro.chaos.invariants import state_digest
from repro.cluster import ClusterFactory
from repro.core.hacfs import HacFileSystem
from repro.errors import DeviceCrashed
from repro.shell.session import HacShell
from repro.util import serialization
from repro.util.clock import VirtualClock
from repro.util.stats import Counters
from repro.vfs.blockdev import FaultPlan
from repro.vfs.filesystem import FileSystem

BASE_SEED = int(os.environ.get("SEG_SEED", "0"))
K = int(os.environ.get("SEG_K", "0"))

NAMES = [f"m{i}.txt" for i in range(8)]
WORDS = ["fingerprint", "banana", "ridge", "recipe", "lunch", "budget",
         "minutiae", "bread"]
QUERIES = ["fingerprint", "banana AND recipe", "fingerprint OR lunch",
           "ridge AND NOT banana", '"fingerprint ridge"']


def build_world(segmented: bool) -> HacShell:
    # one pinned fsid in both worlds: doc keys embed it, and the twin
    # runs are op-for-op identical, so with the id pinned the serialized
    # indexes must match byte for byte
    clock = VirtualClock()
    counters = Counters()
    fs = FileSystem(name="hac", clock=clock, counters=counters,
                    fsid="hac#segeq")
    factory = (ClusterFactory(shards=K, latency=0.0, segmented=segmented)
               if K else None)
    shell = HacShell(HacFileSystem(fs=fs, clock=clock, counters=counters,
                                   engine_factory=factory,
                                   segmented=segmented))
    hac = shell.hacfs
    hac.makedirs("/mail")
    hac.write_file("/mail/seed.txt", b"fingerprint ridge baseline\n")
    hac.clock.tick()
    hac.ssync("/")
    hac.smkdir("/fp", "fingerprint")
    hac.watch("/mail")
    hac.maintenance.set_mode("batched")
    return shell


def op_script(seed: int, n_ops: int = 90):
    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        r = rng.random()
        if r < 0.40:
            text = " ".join(rng.choices(WORDS, k=rng.randint(2, 6))) + "\n"
            ops.append(("write", rng.choice(NAMES), text))
        elif r < 0.52:
            ops.append(("rm", rng.choice(NAMES)))
        elif r < 0.62:
            ops.append(("mv", rng.choice(NAMES), rng.choice(NAMES)))
        elif r < 0.74:
            ops.append(("query", rng.choice(QUERIES)))
        elif r < 0.80:
            ops.append(("snap_query", rng.choice(QUERIES)))
        elif r < 0.86:
            ops.append(("ssync_async",))
        elif r < 0.92:
            ops.append(("drain",))
        elif r < 0.96:
            ops.append(("publish",))
        else:
            ops.append(("reindex",))
    ops.append(("query", QUERIES[0]))
    return ops


def apply_op(shell: HacShell, op):
    """Run one scripted op; both worlds guard identically (same tree), so
    an op that is a no-op in one is a no-op in the other."""
    hac = shell.hacfs
    kind = op[0]
    if kind == "write":
        shell.write(f"/mail/{op[1]}", op[2])
        hac.clock.tick()
    elif kind == "rm":
        if hac.isfile(f"/mail/{op[1]}"):
            shell.rm(f"/mail/{op[1]}")
    elif kind == "mv":
        src, dst = f"/mail/{op[1]}", f"/mail/{op[2]}"
        if hac.isfile(src) and not hac.exists(dst):
            shell.mv(src, dst)
    elif kind == "query":
        return shell.glimpse(op[1])
    elif kind == "snap_query":
        # the zero-barrier path: answered by a replica fed segments (or
        # the op log in the monolithic-store world)
        return shell.glimpse(op[1], consistency="snapshot")
    elif kind == "ssync_async":
        shell.ssync("/", asynchronous=True)
    elif kind == "drain":
        shell.sched_drain()
    elif kind == "publish":
        hac.maintenance.publish()
    elif kind == "reindex":
        hac.reindex()
    return None


def engine_state(hac: HacFileSystem) -> dict:
    eng = hac.engine
    docs = []
    for doc_id in eng.all_docs():
        doc = eng.doc_by_id(doc_id)
        docs.append((doc_id, doc.path, doc.mtime))
    return {
        "next_doc_id": eng._next_doc_id,
        "all_docs": eng.all_docs().to_bytes(),
        "mtimes": {eng.doc_id_of(k): m
                   for k, m in eng.mtime_snapshot().items()},
        "docs": sorted(docs),
    }


def raw_answer(hac: HacFileSystem, query: str) -> bytes:
    ast = parse_query(query, resolve_dir=hac.dirmap.uid_of)
    return hac.engine.search(ast).to_bytes()


def as_world(shell: HacShell) -> SimpleNamespace:
    return SimpleNamespace(hac=shell.hacfs, shell=shell)


@pytest.mark.parametrize("seed",
                         [BASE_SEED, BASE_SEED + 1, BASE_SEED + 2])
def test_segmented_is_bit_identical_to_monolithic(seed):
    mono, seg = build_world(False), build_world(True)
    for op in op_script(seed):
        a = apply_op(mono, op)
        b = apply_op(seg, op)
        if op[0] in ("query", "snap_query"):
            assert a == b, (seed, op)

    # settle both worlds the same way, then compare everything observable
    for shell in (mono, seg):
        shell.hacfs.maintenance.barrier()
    assert engine_state(mono.hacfs) == engine_state(seg.hacfs), seed
    for query in QUERIES:
        assert raw_answer(mono.hacfs, query) == \
            raw_answer(seg.hacfs, query), (seed, query)
    # the serialized index (save_index payload) is byte-identical: the
    # segment plane changes buffering and persistence, never the index
    assert serialization.dumps(mono.hacfs.engine.to_obj()) == \
        serialization.dumps(seg.hacfs.engine.to_obj()), seed
    assert set(mono.hacfs.links("/fp")) == set(seg.hacfs.links("/fp")), seed
    assert state_digest(as_world(mono), queries=QUERIES) == \
        state_digest(as_world(seg), queries=QUERIES), seed

    # and the segment plane actually engaged: rows coalesced into the
    # memtable and at least one seal cut (reindex forces one; so does any
    # publish once a snapshot query attached a replica)
    c = seg.hacfs.counters
    assert c.get("segments.noted") > 0, seed
    assert c.get("segments.seals") > 0, seed
    assert mono.hacfs.counters.get("segments.noted") == 0, seed


@pytest.mark.skipif(K > 0, reason="segment-merge restore is the monolith "
                                  "engine's path; clusters restore via "
                                  "their persisted cbaindex")
@pytest.mark.parametrize("seed",
                         [BASE_SEED, BASE_SEED + 1, BASE_SEED + 2])
def test_crash_recovery_converges_identically(seed):
    """Crash both twins mid-drain, restore both, and require the same
    canonical state digest.  The intact intent journal makes the crash
    atomic in either store; restore's catch-up sync then converges them
    regardless of which record the crash fell on."""
    mono, seg = build_world(False), build_world(True)
    script = op_script(seed)
    for op in script[:40]:
        apply_op(mono, op)
        apply_op(seg, op)
    restored = []
    for shell in (mono, seg):
        hac = shell.hacfs
        hac.clock.tick()
        hac.write_file("/mail/crashy.txt", b"fingerprint at the scene\n")
        hac.write_file("/mail/seed.txt", b"ridge rewritten baseline\n")
        dev = hac.fs.device
        dev.set_fault_plan(
            FaultPlan(crash_at=dev.record_write_index + seed % 3))
        with pytest.raises(DeviceCrashed):
            hac.maintenance.drain()
            hac.ssync("/")
        revived = HacFileSystem.restore(hac.fs)
        assert [f for f in revived.fsck() if f.severity == "error"] == [], \
            seed
        restored.append(as_world(HacShell(revived)))
    assert state_digest(restored[0], queries=QUERIES) == \
        state_digest(restored[1], queries=QUERIES), seed
