"""Seeded grammar fuzz for the sharded search cluster.

Reuses the PR 3 query fuzzer to check the coordinator's scatter-gather
against the monolithic engine:

* **equivalence** — for every fuzzed query (including scopes and real
  stopwords) the cluster's merged answer serialises byte-for-byte equal
  (``Bitmap.to_bytes``) to the single-engine answer, for K ∈ {1, 3, 8};
* **degradation** — killing any single shard yields exactly the union of
  the surviving shards' answers, tagged with ``missing_shards``;
* **rebalancing** — growing and shrinking the cluster mid-life never
  changes an answer.

``CLUSTER_SEED`` and ``CLUSTER_K`` environment knobs let CI sweep seeds
and shard counts without editing the file.
"""

import os
import random

from repro.cba import planner
from repro.cba.queryast import MatchAll
from repro.cba.tokenizer import DEFAULT_STOPWORDS
from repro.cluster import ShardedSearchCluster
from repro.util.bitmap import Bitmap

from tests.properties.test_query_fuzz import (CONTENT_KINDS, QueryFuzzer,
                                              build_engine, random_corpus)

SEED = int(os.environ.get("CLUSTER_SEED", "0"))
KS = [int(x) for x in os.environ.get("CLUSTER_K", "1,3,8").split(",")]


def build_cluster(texts, k, num_blocks=4, fast_path=True, **kwargs):
    store = dict(enumerate(texts))
    cluster = ShardedSearchCluster(lambda key: store.get(key, ""),
                                   [f"s{i}" for i in range(k)],
                                   num_blocks=num_blocks,
                                   fast_path=fast_path, latency=0.0,
                                   **kwargs)
    for key in store:
        cluster.index_document(key, path=f"/{key}", mtime=0.0)
    return cluster


def test_fuzz_cluster_bit_identical_to_monolith():
    """Indexable-only config: the naive scan is the oracle, and every K
    must serialise byte-for-byte equal to it and to the fast monolith."""
    rng = random.Random(1000 + SEED)
    fuzz = QueryFuzzer(rng, kinds=CONTENT_KINDS)
    for _ in range(30):
        texts = random_corpus(rng, rng.randint(0, 14))
        num_blocks = rng.choice([1, 3, 8])
        mono = build_engine(texts, num_blocks, min_term_length=1,
                            stopwords=set())
        clusters = [build_cluster(texts, k, num_blocks, min_term_length=1,
                                  stopwords=set()) for k in KS]
        for _ in range(3):
            ast = fuzz.node()
            want = mono.search(ast)
            assert want.to_bytes() == mono.naive_search(ast).to_bytes(), ast
            for k, cluster in zip(KS, clusters):
                got = cluster.search(ast)
                assert got.to_bytes() == want.to_bytes(), (k, ast)


def test_fuzz_cluster_matches_monolith_under_stopwords():
    """Real stopwords + min length: the scan-verified monolith is the
    oracle; per-term block unions must preserve the answerability gate."""
    rng = random.Random(7000 + SEED)
    fuzz = QueryFuzzer(rng, kinds=CONTENT_KINDS)
    for _ in range(25):
        texts = random_corpus(rng, rng.randint(0, 12))
        num_blocks = rng.choice([1, 2, 6])
        mono = build_engine(texts, num_blocks, min_term_length=2,
                            stopwords=set(DEFAULT_STOPWORDS))
        clusters = [build_cluster(texts, k, num_blocks, min_term_length=2,
                                  stopwords=set(DEFAULT_STOPWORDS))
                    for k in KS]
        for _ in range(3):
            ast = fuzz.node()
            want = mono.search(ast).to_bytes()
            for k, cluster in zip(KS, clusters):
                assert cluster.search(ast).to_bytes() == want, (k, ast)


def test_fuzz_cluster_scoped_search_equivalence():
    """Random scopes thread through the scatter (per-shard member masks)
    without changing the answer."""
    rng = random.Random(9900 + SEED)
    fuzz = QueryFuzzer(rng, kinds=CONTENT_KINDS)
    for _ in range(25):
        texts = random_corpus(rng, rng.randint(0, 12))
        mono = build_engine(texts, min_term_length=1, stopwords=set())
        clusters = [build_cluster(texts, k, min_term_length=1,
                                  stopwords=set()) for k in KS]
        scope = Bitmap(doc for doc in range(len(texts))
                       if rng.random() < 0.6)
        ast = fuzz.node()
        want = mono.search(ast, scope).to_bytes()
        assert want == mono.naive_search(ast, scope).to_bytes(), ast
        for k, cluster in zip(KS, clusters):
            assert cluster.search(ast, scope).to_bytes() == want, (k, ast)


def test_fuzz_killing_one_shard_yields_union_of_survivors():
    """For every fuzzed query, a dead shard degrades the answer to exactly
    the union of the surviving shards' members — never an exception — and
    the coordinator tags the result with the missing shard."""
    rng = random.Random(4400 + SEED)
    fuzz = QueryFuzzer(rng, kinds=CONTENT_KINDS)
    for _ in range(20):
        texts = random_corpus(rng, rng.randint(1, 14))
        mono = build_engine(texts, min_term_length=1, stopwords=set())
        for k in KS:
            if k < 2:
                continue  # killing the only shard leaves no survivors
            cluster = build_cluster(texts, k, min_term_length=1,
                                    stopwords=set())
            dead = f"s{rng.randrange(k)}"
            cluster.kill_shard(dead)
            for _ in range(3):
                ast = fuzz.node()
                planned = planner.plan(ast, mono.index)
                cluster.reset_missing_shards()
                got = cluster.search(ast)
                if isinstance(planned, MatchAll):
                    # answered whole from the coordinator's registry —
                    # no scatter, nothing missing
                    assert got == cluster.all_docs()
                    assert cluster.missing_shards == set()
                    continue
                if planner.provably_empty(planned, mono.index.lexicon.df,
                                          mono._indexable,
                                          mono.scope_count):
                    # answered whole from the coordinator's summed
                    # statistics — no scatter, nothing missing
                    assert got.to_bytes() == b"", (k, dead, ast)
                    assert cluster.missing_shards == set()
                    continue
                want = mono.search(ast) - cluster.members(dead)
                assert got.to_bytes() == want.to_bytes(), (k, dead, ast)
                assert cluster.missing_shards == {dead}
            cluster.revive_shard(dead)
            cluster.reset_missing_shards()
            ast = fuzz.node()
            assert cluster.search(ast).to_bytes() == \
                mono.search(ast).to_bytes(), (k, ast)
            assert cluster.missing_shards == set()


def test_fuzz_rebalancing_preserves_answers():
    """Adding then removing a shard (deterministic rendezvous moves +
    incremental reindex plans) never changes a fuzzed answer."""
    rng = random.Random(6600 + SEED)
    fuzz = QueryFuzzer(rng, kinds=CONTENT_KINDS)
    for _ in range(10):
        texts = random_corpus(rng, rng.randint(1, 14))
        mono = build_engine(texts, min_term_length=1, stopwords=set())
        for k in KS:
            cluster = build_cluster(texts, k, min_term_length=1,
                                    stopwords=set())
            queries = [fuzz.node() for _ in range(3)]
            want = [mono.search(ast).to_bytes() for ast in queries]
            cluster.add_shard("grown")
            for ast, expected in zip(queries, want):
                assert cluster.search(ast).to_bytes() == expected, (k, ast)
            cluster.remove_shard(f"s{rng.randrange(k)}")
            for ast, expected in zip(queries, want):
                assert cluster.search(ast).to_bytes() == expected, (k, ast)
