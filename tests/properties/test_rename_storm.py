"""Property: under a storm of renames the path map never serves a stale
resolution, and its invalidation/rebase accounting matches an oracle.

The map's coherence protocol (repro.vfs.pathmap) claims that after any
mutation every *live* entry still equals what a fresh component walk
would resolve.  This suite hammers exactly the operations that move or
destroy canonical paths — directory and file renames, rmdir/unlink,
mount and unmount — on a deep warmed tree, and after **every** op:

* each live cached path re-resolves by a raw walk to the very node the
  map holds (identity, not equality), proving no stale service;
* every live entry's generation stamp is from the current generation
  era (> the generation before the op when the entry was rebased by it);
* the counted work matches an oracle computed *before* the op from
  ``live_keys()``: a dir rename must rebase exactly the live entries
  under the old prefix (plus the dir itself), an unlink/rmdir must
  tombstone at most the one exact entry, a mount/unmount must kill the
  covered prefix.

``PATHMAP_SEED`` shifts the fuzz seed (CI matrix shares it with the
equivalence harness).
"""

import os
import random

import pytest

from repro.vfs.filesystem import FileSystem

BASE_SEED = int(os.environ.get("PATHMAP_SEED", "0"))

TOP = ["/a", "/b", "/c"]
MIDS = ["m0", "m1"]
LEAVES = ["x", "y"]


def build_fs() -> FileSystem:
    fs = FileSystem(name="storm")
    for top in TOP:
        fs.mkdir(top)
        for mid in MIDS:
            fs.mkdir(f"{top}/{mid}")
            for leaf in LEAVES:
                fs.mkdir(f"{top}/{mid}/{leaf}")
                fs.write_file(f"{top}/{mid}/{leaf}/f.txt", b"data")
    return fs


def warm(fs: FileSystem) -> None:
    """Touch every path so the map holds the whole tree."""
    stack = ["/"]
    while stack:
        path = stack.pop()
        for name in sorted(fs.listdir(path)):
            child = (path.rstrip("/") or "") + "/" + name
            fs.stat(child)
            if fs.isdir(child):
                stack.append(child)


def all_dirs(fs: FileSystem):
    out = []
    stack = ["/"]
    while stack:
        path = stack.pop()
        for name in sorted(fs.listdir(path)):
            child = (path.rstrip("/") or "") + "/" + name
            if fs.isdir(child):
                out.append(child)
                stack.append(child)
    return out


def assert_no_stale_service(fs: FileSystem) -> None:
    """Every live entry must resolve — by a raw walk, bypassing the map —
    to the identical node object the map would serve."""
    pm = fs._pathmap
    for key in pm.live_keys():
        _fs, node, _literal = fs._walk(key, follow_last=False)
        cached = pm.lookup(key)
        # lookup may evict via the liveness backstop; served ⇒ identical
        if cached is not None:
            assert cached is node, key


def test_rename_storm_never_serves_stale(seed: int = BASE_SEED):
    rng = random.Random(seed)
    fs = build_fs()
    subfs = FileSystem(name="storm-sub")
    subfs.write_file("/inner.txt", b"mounted")
    mounted_at = None
    warm(fs)
    pm = fs._pathmap
    assert len(pm) > 20  # the storm starts from a fully warmed map

    for _step in range(160):
        dirs = all_dirs(fs)
        live_before = set(pm.live_keys())
        gen_before = pm.generation
        r = rng.random()
        if r < 0.45 and len(dirs) > 1:
            src = rng.choice(dirs)
            dparent = rng.choice(dirs + ["/"])
            dst = (dparent.rstrip("/") or "") + "/" + f"r{_step}"
            covered = (mounted_at.rstrip("/") + "/"
                       if mounted_at is not None else None)
            crosses = covered is not None and any(
                p == mounted_at or p.startswith(covered)
                for p in (src, dst, dparent))
            if (not crosses and not dst.startswith(src + "/")
                    and not fs.exists(dst)
                    and not dparent.startswith(src)
                    and not fs._subtree_has_mounts(
                        fs, fs.resolve(src).node)):
                moved_oracle = len([k for k in live_before
                                    if k == src
                                    or k.startswith(src + "/")])
                before = fs.counters.get("pathmap.rebased")
                fs.rename(src, dst)
                moved = fs.counters.get("pathmap.rebased") - before
                assert moved == moved_oracle, (src, dst)
                # rebased entries are stamped with the new generation
                for key in pm.live_keys():
                    if key == dst or key.startswith(dst.rstrip("/") + "/"):
                        assert pm.entry_generation(key) > gen_before, key
        elif r < 0.60:
            files = [k for k in live_before if k.endswith(".txt")
                     and fs.isfile(k)]
            if files:
                victim = rng.choice(files)
                before = fs.counters.get("pathmap.invalidated")
                fs.unlink(victim)
                assert fs.counters.get("pathmap.invalidated") - before == 1
                assert pm.lookup(victim) is None
        elif r < 0.72:
            # keep a floor of directories so the storm never empties the
            # tree (rmdir of the last few would starve later ops)
            empties = [d for d in dirs
                       if not fs.listdir(d) and d != mounted_at]
            if empties and len(dirs) > 6:
                fs.rmdir(rng.choice(empties))
        elif r < 0.82 and mounted_at is None and dirs:
            cover = rng.choice(dirs)
            if not fs.listdir(cover):
                fs.mount(cover, subfs)
                mounted_at = cover
                # the covered prefix is dead: resolving under it now
                # crosses the mount, so nothing there may be served
                for key in pm.live_keys():
                    assert not key.startswith(cover.rstrip("/") + "/"), key
        elif r < 0.90 and mounted_at is not None:
            fs.unmount(mounted_at)
            mounted_at = None
        elif dirs:
            # re-warm a random subtree so the map stays populated
            target = rng.choice(dirs)
            for name in fs.listdir(target):
                fs.stat((target.rstrip("/") or "") + "/" + name)
        assert_no_stale_service(fs)

    assert fs.counters.get("pathmap.rebased") > 0
    assert fs.counters.get("pathmap.stale") >= 0
    assert fs.counters.get("pathmap.hit") > 0


@pytest.mark.parametrize("seed", [BASE_SEED + 1, BASE_SEED + 2])
def test_rename_storm_more_seeds(seed):
    test_rename_storm_never_serves_stale(seed)
