"""Property tests: query ASTs survive rendering and re-parsing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cba.queryast import And, Approx, Not, Or, Phrase, Term
from repro.cba.queryparser import parse_query

words = st.text(alphabet="abcdefgh", min_size=2, max_size=6).filter(
    lambda w: w not in ("and", "or", "not"))

leaves = st.one_of(
    words.map(Term),
    st.tuples(words, st.integers(min_value=1, max_value=3)).map(
        lambda t: Approx(*t)),
    st.lists(words, min_size=2, max_size=3).map(Phrase),
)


def compounds(children):
    return st.one_of(
        st.lists(children, min_size=2, max_size=3).map(And),
        st.lists(children, min_size=2, max_size=3).map(Or),
        children.map(Not),
    )


queries = st.recursive(leaves, compounds, max_leaves=8)


@given(queries)
def test_to_text_parse_roundtrip(ast):
    text = ast.to_text()
    reparsed = parse_query(text)
    # rendering normalises nesting (flattened AND/OR), so compare the
    # *second* round trip: render(parse(render(x))) == render(parse(x))
    assert parse_query(reparsed.to_text()) == reparsed


@given(queries)
def test_obj_roundtrip_exact(ast):
    from repro.cba.queryast import from_obj
    assert from_obj(ast.to_obj()) == ast


@given(queries)
def test_terms_survive_roundtrip(ast):
    reparsed = parse_query(ast.to_text())
    assert sorted(set(reparsed.terms())) == sorted(set(ast.terms()))
