"""Property: batched maintenance is observationally identical to eager.

The maintenance scheduler's contract (DESIGN.md §3f) is that coalescing
changes *when* index work happens, never *what* the index ends up saying:
after any interleaving of writes, removals, moves, queries, and async
syncs, the batched world's final index state and every query answer along
the way must be bit-identical to the eager world fed the same events.
Doc ids are reserved at enqueue time precisely so block placement
(``doc_id % num_blocks``) cannot drift — this suite fuzzes that claim.

Both worlds run the same scripted op sequence; queries go through the
shell (``glimpse``), so the batched side exercises the real pre-query
barrier rather than a test-only drain.

``SCHED_SEED`` shifts the fuzz seeds and ``SCHED_K`` (>0) runs the same
property against a sharded search cluster (CI matrix).
"""

import os
import random

import pytest

from repro.cba.queryparser import parse_query
from repro.cluster import ClusterFactory
from repro.core.hacfs import HacFileSystem
from repro.shell.session import HacShell

BASE_SEED = int(os.environ.get("SCHED_SEED", "0"))
K = int(os.environ.get("SCHED_K", "0"))

NAMES = [f"m{i}.txt" for i in range(8)]
WORDS = ["fingerprint", "banana", "ridge", "recipe", "lunch", "budget",
         "minutiae", "bread"]
QUERIES = ["fingerprint", "banana AND recipe", "fingerprint OR lunch",
           "ridge AND NOT banana", '"fingerprint ridge"']


def build_world(mode: str) -> HacShell:
    # latency 0 keeps the virtual clock identical across modes in cluster
    # runs (fewer RPCs batched would otherwise skew later mtimes)
    factory = ClusterFactory(shards=K, latency=0.0) if K else None
    shell = HacShell(HacFileSystem(engine_factory=factory))
    hac = shell.hacfs
    hac.makedirs("/mail")
    hac.write_file("/mail/seed.txt", b"fingerprint ridge baseline\n")
    hac.clock.tick()
    hac.ssync("/")
    hac.smkdir("/fp", "fingerprint")
    hac.watch("/mail")
    hac.maintenance.set_mode(mode)
    return shell


def op_script(seed: int, n_ops: int = 90):
    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        r = rng.random()
        if r < 0.45:
            text = " ".join(rng.choices(WORDS, k=rng.randint(2, 6))) + "\n"
            ops.append(("write", rng.choice(NAMES), text))
        elif r < 0.60:
            ops.append(("rm", rng.choice(NAMES)))
        elif r < 0.72:
            ops.append(("mv", rng.choice(NAMES), rng.choice(NAMES)))
        elif r < 0.88:
            ops.append(("query", rng.choice(QUERIES)))
        elif r < 0.94:
            ops.append(("ssync_async",))
        else:
            ops.append(("drain",))
    ops.append(("query", QUERIES[0]))
    return ops


def apply_op(shell: HacShell, op):
    """Run one scripted op; both worlds guard identically (same tree), so
    an op that is a no-op in one is a no-op in the other."""
    hac = shell.hacfs
    kind = op[0]
    if kind == "write":
        shell.write(f"/mail/{op[1]}", op[2])
        hac.clock.tick()
    elif kind == "rm":
        if hac.isfile(f"/mail/{op[1]}"):
            shell.rm(f"/mail/{op[1]}")
    elif kind == "mv":
        src, dst = f"/mail/{op[1]}", f"/mail/{op[2]}"
        if hac.isfile(src) and not hac.exists(dst):
            shell.mv(src, dst)
    elif kind == "query":
        return shell.glimpse(op[1])
    elif kind == "ssync_async":
        shell.ssync("/", asynchronous=True)
    elif kind == "drain":
        shell.sched_drain()
    return None


def engine_state(hac: HacFileSystem) -> dict:
    # doc keys are (fsid, ino) and neither half is cross-world comparable
    # (fsids embed a process-global counter; link materialisation timing
    # shifts ino allocation), so docs are identified by doc id — which the
    # reservation scheme pins — plus path and mtime
    eng = hac.engine
    docs = []
    for doc_id in eng.all_docs():
        doc = eng.doc_by_id(doc_id)
        docs.append((doc_id, doc.path, doc.mtime))
    return {
        "next_doc_id": eng._next_doc_id,
        "all_docs": eng.all_docs().to_bytes(),
        "mtimes": {eng.doc_id_of(k): m
                   for k, m in eng.mtime_snapshot().items()},
        "docs": sorted(docs),
    }


def raw_answer(hac: HacFileSystem, query: str) -> bytes:
    ast = parse_query(query, resolve_dir=hac.dirmap.uid_of)
    return hac.engine.search(ast).to_bytes()


@pytest.mark.parametrize("seed",
                         [BASE_SEED, BASE_SEED + 1, BASE_SEED + 2])
def test_batched_is_bit_identical_to_eager(seed):
    eager, batched = build_world("eager"), build_world("batched")
    for op in op_script(seed):
        a = apply_op(eager, op)
        b = apply_op(batched, op)
        if op[0] == "query":
            assert a == b, (seed, op)

    batched.hacfs.maintenance.barrier()
    assert engine_state(eager.hacfs) == engine_state(batched.hacfs), seed
    for query in QUERIES:
        assert raw_answer(eager.hacfs, query) == \
            raw_answer(batched.hacfs, query), (seed, query)
    # the semantic directory converged to the same membership too
    assert set(eager.hacfs.links("/fp")) == set(batched.hacfs.links("/fp"))

    # and batching actually batched: updates coalesced, fewer drains and
    # fewer tokenisation passes than one-per-event
    e, b = eager.hacfs.counters, batched.hacfs.counters
    assert b.get("sched.coalesced") > 0, seed
    assert b.get("sched.drains") < e.get("sched.drains"), seed
    assert b.get("engine.tokenisations") <= e.get("engine.tokenisations")


def test_mode_change_strands_nothing():
    """Leaving batched mode drains the queue — no update may be lost."""
    shell = build_world("batched")
    shell.write("/mail/m0.txt", "solitary fingerprint clue\n")
    assert shell.hacfs.maintenance.pending > 0
    shell.hacfs.maintenance.set_mode("eager")
    assert shell.hacfs.maintenance.pending == 0
    assert "m0.txt" in {p.rsplit("/", 1)[-1]
                        for p in shell.glimpse("clue")}
