"""Property tests: the dependency DAG cross-checked against networkx.

Random edge-insertion histories must (a) accept exactly the edges networkx
says keep the graph acyclic, and (b) produce orders networkx validates as
topological.
"""

import networkx as nx

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DependencyCycle
from repro.core.depgraph import ROOT_UID, DependencyGraph

N_NODES = 8

edge_ops = st.lists(
    st.tuples(st.integers(min_value=1, max_value=N_NODES),     # dependent
              st.integers(min_value=1, max_value=N_NODES)),    # provider
    max_size=25)


def build(ops):
    """Apply reference-edge insertions to both graphs in lockstep."""
    graph = DependencyGraph()
    model = nx.DiGraph()
    model.add_node(ROOT_UID)
    for uid in range(1, N_NODES + 1):
        graph.add_node(uid)
        graph.set_hierarchy_edge(uid, ROOT_UID)
        model.add_edge(ROOT_UID, uid)
    refs = {uid: set() for uid in range(1, N_NODES + 1)}
    for dependent, provider in ops:
        wanted = refs[dependent] | {provider}
        candidate = model.copy()
        candidate.add_edges_from((p, dependent) for p in wanted)
        should_succeed = nx.is_directed_acyclic_graph(candidate)
        try:
            graph.set_reference_edges(dependent, wanted)
            accepted = True
        except DependencyCycle:
            accepted = False
        assert accepted == should_succeed, (dependent, provider)
        if accepted:
            refs[dependent] = wanted
            model.remove_edges_from([(p, dependent) for p in list(model.predecessors(dependent))
                                     if p != ROOT_UID])
            model.add_edges_from((p, dependent) for p in wanted)
    return graph, model


@settings(max_examples=50, deadline=None)
@given(edge_ops)
def test_cycle_rejection_matches_networkx(ops):
    build(ops)


@settings(max_examples=50, deadline=None)
@given(edge_ops)
def test_full_order_is_topological(ops):
    graph, model = build(ops)
    order = graph.full_order()
    assert sorted(order) == sorted(model.nodes)
    position = {uid: i for i, uid in enumerate(order)}
    for provider, dependent in model.edges:
        assert position[provider] < position[dependent], (provider, dependent)


@settings(max_examples=50, deadline=None)
@given(edge_ops, st.integers(min_value=0, max_value=N_NODES))
def test_affected_set_matches_descendants(ops, start):
    graph, model = build(ops)
    affected = graph.affected_order(start)
    expected = nx.descendants(model, start) if start in model else set()
    assert set(affected) == expected
    position = {uid: i for i, uid in enumerate(affected)}
    for provider, dependent in model.edges:
        if provider in position and dependent in position:
            assert position[provider] < position[dependent]
