"""Property tests: codec round-trips and path algebra laws."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util import pathutil
from repro.util.serialization import dumps, loads

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)


@given(values)
def test_codec_roundtrip(value):
    assert loads(dumps(value)) == value


# --- path algebra ------------------------------------------------------------

components = st.lists(
    st.text(alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
            min_size=1, max_size=8),
    max_size=6)


def to_path(comps):
    return "/" + "/".join(comps)


@given(components)
def test_normalize_idempotent(comps):
    p = to_path(comps)
    assert pathutil.normalize(pathutil.normalize(p)) == pathutil.normalize(p)


@given(components)
def test_split_join_inverse(comps):
    p = pathutil.normalize(to_path(comps))
    parent, name = pathutil.split(p)
    if name:
        assert pathutil.join(parent, name) == p


@given(components, components)
def test_rebase_moves_subtree(base, rel):
    src = pathutil.normalize(to_path(base))
    if src == "/":
        return
    inner = pathutil.join(src, *rel) if rel else src
    moved = pathutil.rebase(inner, src, "/dst")
    assert pathutil.is_ancestor("/dst", moved, strict=False)
    assert pathutil.relative_to(moved, "/dst") == pathutil.relative_to(inner, src)


@given(components)
def test_ancestors_are_ancestors(comps):
    p = pathutil.normalize(to_path(comps))
    for anc in pathutil.ancestors(p):
        assert pathutil.is_ancestor(anc, p)


@given(components, components)
def test_is_ancestor_antisymmetric(a, b):
    pa, pb = to_path(a), to_path(b)
    if pathutil.is_ancestor(pa, pb) and pathutil.is_ancestor(pb, pa):
        raise AssertionError("strict ancestry cannot be mutual")
