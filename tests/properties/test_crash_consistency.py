"""Exhaustive crash-point sweep over every journaled operation.

For each journaled mutation we first run it once with no faults to learn
how many record writes it performs, then replay it on a fresh, identical
world once per write index, crashing the device exactly there.  After every
crash, ``HacFileSystem.restore()`` must produce a tree whose ``hacfsck``
report has **zero error-severity findings**, and the mutation must be
atomically present or absent — never half-applied.

A crash during commit is the one case where the caller sees an exception
but the operation still lands (the commit point is the deletion of the
``begin`` record), so a raised exception admits either final state; what is
never admitted is a partial one.

``CRASH_SWEEP_SEED`` (CI matrix) varies the world layout so the sweep does
not overfit one record-write schedule.

The sweep also pins the journal↔trace correlation contract: the crashed
run captures spans, and every intent the subsequent recovery rolls back
must match (by journal sequence = span op id) both the root span of the
operation that wrote it and a ``journal.rollback`` span emitted during
recovery.
"""

import os

import pytest

from repro.errors import DeviceCrashed
from repro.core.hacfs import HacFileSystem
from repro.obs import Observability
from repro.vfs.blockdev import FaultPlan

SEED = int(os.environ.get("CRASH_SWEEP_SEED", "0"))


def build_world(trace: bool = False) -> HacFileSystem:
    """A small deterministic world: local corpus, one semantic dir, one
    empty victim dir.  Layout varies slightly with the sweep seed."""
    hac = HacFileSystem()
    if trace:
        hac.obs.enable()
    hac.makedirs("/docs")
    hac.write_file("/docs/a.txt", b"fingerprint ridge analysis notes\n")
    hac.write_file("/docs/b.txt", b"banana bread recipe\n")
    for i in range(SEED % 3):
        hac.write_file(f"/docs/extra{i}.txt",
                       b"fingerprint extras %d\n" % i)
    if SEED % 2:
        hac.mkdir("/spare")
    hac.clock.tick()
    hac.ssync("/")
    hac.smkdir("/fp", "fingerprint")
    hac.mkdir("/victim")
    return hac


def fp_link_names(hac, path="/fp"):
    return set(hac.links(path))


# each op: (mutate, state_of) where state_of returns
# "applied" | "absent" | "partial"

def _state_mkdir(hac):
    exists = hac.isdir("/newdir")
    uid = hac.dirmap.uid_of("/newdir")
    if exists and uid is not None and hac.meta.get(uid) is not None \
            and uid in hac.depgraph:
        return "applied"
    if not hac.exists("/newdir") and uid is None:
        return "absent"
    return "partial"


def _state_smkdir(hac):
    uid = hac.dirmap.uid_of("/new")
    if hac.isdir("/new") and uid is not None and hac.is_semantic("/new") \
            and "a.txt" in fp_link_names(hac, "/new"):
        return "applied"
    if not hac.exists("/new") and uid is None:
        return "absent"
    return "partial"


def _state_rmdir(hac):
    uid = hac.dirmap.uid_of("/victim")
    if not hac.exists("/victim") and uid is None:
        return "applied"
    if hac.isdir("/victim") and uid is not None \
            and hac.meta.get(uid) is not None:
        return "absent"
    return "partial"


def _state_set_query(hac):
    q = hac.get_query("/fp")
    names = fp_link_names(hac)
    if q == "banana" and "b.txt" in names and "a.txt" not in names:
        return "applied"
    if q == "fingerprint" and "a.txt" in names and "b.txt" not in names:
        return "absent"
    return "partial"


def _state_detach_query(hac):
    if not hac.is_semantic("/fp") and fp_link_names(hac) == set():
        return "applied"
    if hac.get_query("/fp") == "fingerprint" and "a.txt" in fp_link_names(hac):
        return "absent"
    return "partial"


def _state_rename_dir(hac):
    old_uid, new_uid = hac.dirmap.uid_of("/fp"), hac.dirmap.uid_of("/fp2")
    if new_uid is not None and old_uid is None and hac.isdir("/fp2") \
            and not hac.exists("/fp") and "a.txt" in fp_link_names(hac, "/fp2"):
        return "applied"
    if old_uid is not None and new_uid is None and hac.isdir("/fp") \
            and not hac.exists("/fp2") and "a.txt" in fp_link_names(hac):
        return "absent"
    return "partial"


def _state_rename_file(hac):
    at_new = hac.isfile("/docs/a2.txt")
    at_old = hac.isfile("/docs/a.txt")
    if at_new and not at_old:
        return "applied"
    if at_old and not at_new:
        return "absent"
    return "partial"


def _state_always_applied(hac):
    # ssync/save_index have no user-visible half state: restore() re-syncs,
    # so the world is simply current — the fsck gate is the real assertion
    return "applied"


OPERATIONS = {
    "mkdir": (lambda h: h.mkdir("/newdir"), _state_mkdir),
    "smkdir": (lambda h: h.smkdir("/new", "fingerprint"), _state_smkdir),
    "rmdir": (lambda h: h.rmdir("/victim"), _state_rmdir),
    "set_query": (lambda h: h.set_query("/fp", "banana"), _state_set_query),
    "detach_query": (lambda h: h.set_query("/fp", None), _state_detach_query),
    "rename_dir": (lambda h: h.rename("/fp", "/fp2"), _state_rename_dir),
    "rename_file": (lambda h: h.rename("/docs/a.txt", "/docs/a2.txt"),
                    _state_rename_file),
    "ssync": (lambda h: (h.write_file("/docs/c.txt", b"late fingerprint\n"),
                         h.clock.tick(), h.ssync("/")),
              _state_always_applied),
    "save_index": (lambda h: h.save_index(), _state_always_applied),
}


def _writes_used(op_name) -> int:
    """Dry run: how many record writes the operation performs."""
    mutate, _state = OPERATIONS[op_name]
    hac = build_world()
    start = hac.fs.device.record_write_index
    mutate(hac)
    return hac.fs.device.record_write_index - start


def _assert_rollbacks_correlate(op_name, offset, crashed, recovery_obs,
                                report):
    """Journal seq ↔ span op id, both ways: each rolled-back intent must
    match the crashed run's root span (stamped at ``begin``) and a
    ``journal.rollback`` span emitted during recovery."""
    trace = crashed.obs.trace
    begin_seqs = {s.op_id for s in trace.spans(name="journal.begin")}
    for seq, op in report.rolled_back:
        where = (op_name, offset, seq, op)
        assert seq in begin_seqs, where
        roots = [s for s in trace.spans(op_id=seq) if s.parent_id is None]
        assert len(roots) == 1, where
        assert roots[0].name == f"hac.{op}", (where, roots[0].name)
        rollbacks = recovery_obs.trace.spans(name="journal.rollback",
                                             op_id=seq)
        assert len(rollbacks) == 1, where
    # and no rollback span without a recovered intent behind it
    rolled_seqs = {seq for seq, _op in report.rolled_back}
    for span in recovery_obs.trace.spans(name="journal.rollback"):
        assert span.op_id in rolled_seqs, (op_name, offset, span.op_id)


@pytest.mark.parametrize("op_name", sorted(OPERATIONS))
def test_crash_sweep(op_name):
    mutate, state_of = OPERATIONS[op_name]
    n_writes = _writes_used(op_name)
    assert n_writes > 0, f"{op_name} is not journaled (no record writes)"
    rollbacks_seen = 0
    for offset in range(n_writes):
        hac = build_world(trace=True)
        dev = hac.fs.device
        dev.set_fault_plan(
            FaultPlan(crash_at=dev.record_write_index + offset))
        raised = False
        try:
            mutate(hac)
        except DeviceCrashed:
            raised = True
        assert raised, (op_name, offset)  # the sweep covers every write
        recovery_obs = Observability(enabled=True)
        restored = HacFileSystem.restore(hac.fs, obs=recovery_obs)
        errors = [f for f in restored.fsck() if f.severity == "error"]
        assert errors == [], (op_name, offset, [str(f) for f in errors])
        state = state_of(restored)
        assert state != "partial", (op_name, offset)
        _assert_rollbacks_correlate(op_name, offset, hac, recovery_obs,
                                    restored.last_recovery)
        rollbacks_seen += len(restored.last_recovery.rolled_back)
    # a sweep that never rolled anything back would vacuously pass the
    # correlation contract; every journaled op crashes mid-intent somewhere
    assert rollbacks_seen > 0, op_name


@pytest.mark.parametrize("op_name", ["smkdir", "set_query"])
def test_tear_sweep(op_name):
    """Torn-write variant: the crashing write persists garbage; recovery
    must detect it (checksums) and heal it from the journal."""
    mutate, state_of = OPERATIONS[op_name]
    n_writes = _writes_used(op_name)
    for offset in range(n_writes):
        hac = build_world()
        dev = hac.fs.device
        dev.set_fault_plan(
            FaultPlan(tear_at=dev.record_write_index + offset))
        try:
            mutate(hac)
        except DeviceCrashed:
            pass
        restored = HacFileSystem.restore(hac.fs)
        errors = [f for f in restored.fsck() if f.severity == "error"]
        assert errors == [], (op_name, offset, [str(f) for f in errors])
        assert all(dev.verify_record(k) for k in dev.record_keys())
        assert state_of(restored) != "partial", (op_name, offset)


def build_sched_world(trace: bool = False) -> HacFileSystem:
    """The sweep world with /docs watched and the maintenance scheduler in
    batched mode, so a drain group-commits several updates at once."""
    hac = build_world(trace=trace)
    hac.watch("/docs")
    hac.maintenance.set_mode("batched")
    return hac


def _mutate_sched(hac):
    # in batched mode nothing touches the device until the drain, so every
    # crash offset lands inside the single sched_batch intent
    hac.clock.tick()
    hac.write_file("/docs/new1.txt", b"fresh fingerprint evidence\n")
    hac.write_file("/docs/new2.txt", b"banana pancakes\n")
    hac.write_file("/docs/new1.txt", b"rewritten fingerprint evidence\n")
    hac.unlink("/docs/b.txt")
    hac.maintenance.drain()


def test_crash_sweep_sched_batch():
    """The group-commit intent rolls the *whole* batch back atomically; a
    reopen then brings the index current, so no update is ever lost."""
    dry = build_sched_world()
    start = dry.fs.device.record_write_index
    _mutate_sched(dry)
    n_writes = dry.fs.device.record_write_index - start
    assert n_writes > 0, "the batch drain is not journaled"
    rollbacks_seen = 0
    for offset in range(n_writes):
        hac = build_sched_world(trace=True)
        dev = hac.fs.device
        dev.set_fault_plan(
            FaultPlan(crash_at=dev.record_write_index + offset))
        with pytest.raises(DeviceCrashed):
            _mutate_sched(hac)
        recovery_obs = Observability(enabled=True)
        restored = HacFileSystem.restore(hac.fs, obs=recovery_obs)
        errors = [f for f in restored.fsck() if f.severity == "error"]
        assert errors == [], (offset, [str(f) for f in errors])
        # every rolled-back intent is a batch group commit, stamped onto
        # the root span of whatever forced the drain: the explicit drain
        # itself, or the cascade whose pre-query barrier drained early
        # (the unlink's scope cascade does exactly that)
        for seq, op in restored.last_recovery.rolled_back:
            assert op == "sched_batch", (offset, op)
            roots = [s for s in hac.obs.trace.spans(op_id=seq)
                     if s.parent_id is None]
            assert len(roots) == 1, (offset, seq)
            assert roots[0].name in ("sched.drain", "hac.cascade"), \
                (offset, roots[0].name)
            assert len(recovery_obs.trace.spans(
                name="journal.rollback", op_id=seq)) == 1, (offset, seq)
        rollbacks_seen += len(restored.last_recovery.rolled_back)
        # the reopen re-syncs: the batched writes land regardless of where
        # the crash fell, and the withdrawn document stays gone
        names = fp_link_names(restored)
        assert "new1.txt" in names, offset
        assert "b.txt" not in names, offset
    assert rollbacks_seen > 0


def test_crash_during_recovery_is_recoverable(populated):
    """A second crash while recovery itself is rolling back records must
    still be recoverable by the next restore().  (restore() clears fault
    plans as its reboot step, so the mid-recovery crash is injected by
    driving the record pass directly.)"""
    from repro.core.journal import Journal
    from repro.core.recovery import RecoveryReport, recover_records
    from repro.util.stats import Counters

    dev = populated.fs.device
    dev.set_fault_plan(FaultPlan(crash_at=dev.record_write_index + 3))
    try:
        populated.smkdir("/fp", "fingerprint")
    except DeviceCrashed:
        pass
    dev.clear_faults()
    dev.set_fault_plan(FaultPlan(crash_at=dev.record_write_index + 1))
    with pytest.raises(DeviceCrashed):
        recover_records(Journal(dev, Counters()), RecoveryReport())
    restored = HacFileSystem.restore(populated.fs)
    assert [f for f in restored.fsck() if f.severity == "error"] == []
    assert not restored.exists("/fp")


# ----------------------------------------------------------------------
# segment plane: seal and compaction ride the same intents
# ----------------------------------------------------------------------

def _seg_keys(dev):
    return {k for k in dev.record_keys() if k.startswith("seg:")}


def _manifest_names(hac):
    try:
        manifest = hac.meta.load_aux("segmanifest") or {}
    except Exception:
        return set()
    return {f"seg:{sid}" for sid in manifest.get("segments", ())}


def _assert_segment_list_consistent(hac, where):
    """The crash-atomicity contract for the segment store: whatever the
    offset, the device's ``seg:`` records and the manifest agree."""
    assert _seg_keys(hac.fs.device) == _manifest_names(hac), where


def build_seal_world(trace: bool = False) -> HacFileSystem:
    """The batched world with the seal threshold floored, so every drain
    cuts a segment and persists it inside the ``sched_batch`` intent."""
    hac = build_sched_world(trace=trace)
    hac.engine.segments.seal_threshold = 1
    return hac


def test_crash_sweep_seal_intent():
    """Crash at every record write inside a drain that seals: the seal's
    segment records and manifest must roll back with the batch — fsck
    clean, segment list consistent, and the reopen re-lands the batch."""
    dry = build_seal_world()
    before_keys = _seg_keys(dry.fs.device)
    start = dry.fs.device.record_write_index
    _mutate_sched(dry)
    n_writes = dry.fs.device.record_write_index - start
    # the sweep is only meaningful if the drain actually persisted a
    # sealed segment (new seg: records appeared)
    assert _seg_keys(dry.fs.device) - before_keys, "drain sealed nothing"
    for offset in range(n_writes):
        hac = build_seal_world()
        dev = hac.fs.device
        dev.set_fault_plan(
            FaultPlan(crash_at=dev.record_write_index + offset))
        with pytest.raises(DeviceCrashed):
            _mutate_sched(hac)
        restored = HacFileSystem.restore(hac.fs)
        errors = [f for f in restored.fsck() if f.severity == "error"]
        assert errors == [], (offset, [str(f) for f in errors])
        _assert_segment_list_consistent(restored, offset)
        names = fp_link_names(restored)
        assert "new1.txt" in names, offset
        assert "b.txt" not in names, offset


def build_compact_world(trace: bool = False) -> HacFileSystem:
    """A world with several persisted frozen segments, so the next
    reindex compacts (merges and deletes old records) inside its intent."""
    hac = build_seal_world(trace=trace)
    for i in range(3):
        hac.clock.tick()
        hac.write_file(f"/docs/seg{i}.txt", b"fingerprint round %d\n" % i)
        hac.maintenance.drain()
    assert len(_seg_keys(hac.fs.device)) >= 2, "no segments to compact"
    return hac


def _mutate_compact(hac):
    hac.clock.tick()
    hac.write_file("/docs/zeta.txt", b"fingerprint zeta\n")
    hac.reindex()


def test_crash_sweep_compact_intent():
    """Crash at every device write (and delete — deletions consume write
    indexes too) inside the reindex that compacts: old segment records
    must survive or the merge must land, never half of each."""
    dry = build_compact_world()
    start = dry.fs.device.record_write_index
    _mutate_compact(dry)
    n_writes = dry.fs.device.record_write_index - start
    # compaction folded the frozen list down to one record
    assert len(_seg_keys(dry.fs.device)) == 1
    rollbacks_seen = 0
    for offset in range(n_writes):
        hac = build_compact_world()
        dev = hac.fs.device
        dev.set_fault_plan(
            FaultPlan(crash_at=dev.record_write_index + offset))
        with pytest.raises(DeviceCrashed):
            _mutate_compact(hac)
        restored = HacFileSystem.restore(hac.fs)
        errors = [f for f in restored.fsck() if f.severity == "error"]
        assert errors == [], (offset, [str(f) for f in errors])
        _assert_segment_list_consistent(restored, offset)
        rollbacks_seen += len(restored.last_recovery.rolled_back)
        # whatever the crash point, the reopened world answers current
        assert "zeta.txt" in fp_link_names(restored), offset
    assert rollbacks_seen > 0


def test_orphan_segment_record_is_an_fsck_error_and_repairable(populated):
    """A ``seg:`` record the manifest does not name (what an un-healed
    crashed seal would leave) is flagged, and ``repair`` drops it."""
    from repro.util import serialization

    dev = populated.fs.device
    dev.write_record("seg:zz9999", serialization.dumps(["bogus"]))
    findings = [f for f in populated.fsck()
                if f.kind == "orphan-segment" and f.severity == "error"]
    assert findings and findings[0].path == "seg:zz9999"
    populated.fsck(repair=True)
    assert "seg:zz9999" not in dev.record_keys()
    assert not [f for f in populated.fsck()
                if f.kind == "orphan-segment"]


def test_missing_segment_record_is_an_fsck_error(populated):
    """A manifest entry whose record vanished is unrecoverable state —
    an error finding, not a silent rebuild."""
    populated.reindex()  # guarantees a manifest + at least one segment
    dev = populated.fs.device
    key = sorted(_seg_keys(dev))[0]
    dev.delete_record(key)
    findings = [f for f in populated.fsck()
                if f.kind == "missing-segment" and f.severity == "error"]
    assert findings and findings[0].path == key
