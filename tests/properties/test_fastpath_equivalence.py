"""Property tests for the query fast path.

The fast path (planner normalisation + selectivity ordering, doc-level
postings answering, verification memoisation, block-exact cache
invalidation) is pure optimisation: for any corpus, any mutation history,
and any query, an engine with ``fast_path=True`` must return exactly what
the seed scan-everything engine — and the exhaustive ``naive_search`` —
return.  These tests sample all of that, including the stopword corner
where the postings path must refuse to answer (a stopword never reaches
the index, but the scanner can still see it on candidate documents).

Also here: the big-int :class:`Bitmap` kernels must serialise byte-for-byte
identically to the bytearray implementation they replaced, since bitmaps
are persisted (semantic-directory records, saved indexes).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cba import evaluator
from repro.cba.engine import CBAEngine
from repro.cba.queryast import And, Approx, Not, Or, Phrase, Term
from repro.util.bitmap import Bitmap

WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"]

words = st.sampled_from(WORDS)

documents = st.lists(st.lists(words, max_size=12).map(" ".join),
                     min_size=0, max_size=12)

leaves = st.one_of(
    words.map(Term),
    st.lists(words, min_size=2, max_size=2).map(Phrase),
    words.map(lambda w: Approx(w, 1)),
)

queries = st.recursive(
    leaves,
    lambda kids: st.one_of(
        st.lists(kids, min_size=2, max_size=3).map(And),
        st.lists(kids, min_size=2, max_size=3).map(Or),
        kids.map(Not),
    ),
    max_leaves=6)


def build_engine(texts, num_blocks=4, fast_path=True, **kwargs):
    store = dict(enumerate(texts))
    engine = CBAEngine(loader=lambda k: store.get(k, ""),
                       num_blocks=num_blocks, min_term_length=1,
                       stopwords=set(), fast_path=fast_path, **kwargs)
    engine.store = store
    for key, text in store.items():
        engine.index_document(key, path=f"/{key}", mtime=0.0)
    return engine


@settings(max_examples=80, deadline=None)
@given(documents, queries, st.sampled_from([1, 3, 16]))
def test_fast_path_search_equals_naive_scan(texts, query, num_blocks):
    engine = build_engine(texts, num_blocks)
    assert engine.search(query) == engine.naive_search(query)
    # and again, through the warm cache/memo
    assert engine.search(query) == engine.naive_search(query)


@settings(max_examples=60, deadline=None)
@given(documents, queries, st.data())
def test_fast_path_survives_mutations(texts, query, data):
    """Interleave searches with index mutations: memoised verdicts and
    surviving cache entries must never leak stale answers."""
    engine = build_engine(texts)
    assert engine.search(query) == engine.naive_search(query)
    keys = sorted(engine.store)
    if keys:
        victim = data.draw(st.sampled_from(keys))
        action = data.draw(st.sampled_from(["update", "remove", "add"]))
        if action == "update":
            engine.store[victim] = data.draw(
                st.lists(words, max_size=8).map(" ".join))
            engine.update_document(victim, path=f"/{victim}", mtime=1.0)
        elif action == "remove":
            del engine.store[victim]
            engine.remove_document(victim)
        else:
            new_key = max(keys) + 1
            engine.store[new_key] = data.draw(
                st.lists(words, max_size=8).map(" ".join))
            engine.index_document(new_key, path=f"/{new_key}", mtime=1.0)
    assert engine.search(query) == engine.naive_search(query)


@settings(max_examples=60, deadline=None)
@given(documents, queries, st.data())
def test_fast_path_evaluate_equals_naive_scan(texts, query, data):
    """The boolean evaluator (content-only queries, arbitrary scope) with
    the planner on must agree with the exhaustive scan."""
    engine = build_engine(texts)
    universe = sorted(engine.all_docs())
    scope = Bitmap(data.draw(st.sets(st.sampled_from(universe))
                             if universe else st.just(set())))
    got = evaluator.evaluate(query, engine,
                             resolve_dirref=lambda uid: Bitmap(),
                             scope=scope)
    assert got == engine.naive_search(query, scope)


@settings(max_examples=60, deadline=None)
@given(documents, queries, st.sampled_from([1, 3, 16]))
def test_fast_path_matches_scan_path_with_stopwords(texts, query, num_blocks):
    """With real stopwords/min-length the index cannot see every token and
    ``naive_search`` is no longer the oracle — the seed scan-path engine is.
    The fast path must reproduce it exactly (the answerability gate)."""
    def build(fast_path):
        store = dict(enumerate(texts))
        engine = CBAEngine(loader=lambda k: store.get(k, ""),
                           num_blocks=num_blocks, min_term_length=2,
                           stopwords={"alpha", "eta"}, fast_path=fast_path)
        for key in store:
            engine.index_document(key, path=f"/{key}", mtime=0.0)
        return engine

    fast, slow = build(True), build(False)
    assert fast.search(query) == slow.search(query)


# ----------------------------------------------------------------------
# Answerability-gate regressions: a non-indexable leaf is only postings-
# safe on the pure-And spine from the root, where its empty block
# nomination empties the whole candidate set.  Under Not the divergence
# inverts into all-docs; under Or, block collocation lets the scanner
# match through the branch the postings path evaluated as empty.
# ----------------------------------------------------------------------

def _stopword_engine(texts, fast_path, num_blocks=1):
    store = dict(enumerate(texts))
    engine = CBAEngine(loader=lambda k: store.get(k, ""),
                       num_blocks=num_blocks, min_term_length=2,
                       stopwords={"the"}, fast_path=fast_path)
    for key in store:
        engine.index_document(key, path=f"/{key}", mtime=0.0)
    return engine


def test_stopword_in_and_under_not_forces_scan():
    # the postings path would see the stopword as an empty doc set, the
    # And as empty and the Not as all docs — but the scanner sees
    # stopwords in raw tokens and excludes docs holding both terms
    texts = ["the quick apple", "banana orange", "apple banana"]
    query = Not(And([Term("the"), Term("apple")]))
    fast, slow = (_stopword_engine(texts, fp) for fp in (True, False))
    got = fast.search(query)
    assert got == slow.search(query) == slow.naive_search(query)
    assert sorted(got) == [1, 2]
    assert fast.counters.get("engine.postings_answers") == 0


def test_stopword_and_branch_under_or_forces_scan():
    # doc 0 shares a block with doc 1 (num_blocks=1), so the scanner
    # reaches it through the "banana" branch's candidates and matches it
    # through the stopword And branch
    texts = ["the apple", "banana"]
    query = Or([And([Term("the"), Term("apple")]), Term("banana")])
    fast, slow = (_stopword_engine(texts, fp) for fp in (True, False))
    got = fast.search(query)
    assert got == slow.search(query)
    assert sorted(got) == [0, 1]
    assert fast.counters.get("engine.postings_answers") == 0


def test_stopword_and_branch_under_or_under_not_forces_scan():
    texts = ["the apple", "banana", "apple pear"]
    query = Not(Or([And([Term("the"), Term("apple")]), Term("banana")]))
    fast, slow = (_stopword_engine(texts, fp) for fp in (True, False))
    got = fast.search(query)
    assert got == slow.search(query) == slow.naive_search(query)
    assert sorted(got) == [2]
    assert fast.counters.get("engine.postings_answers") == 0


def test_stopword_on_pure_and_spine_still_postings_answered():
    # the sound exemption survives the fix: at top level the stopword's
    # empty block nomination forces both paths to the empty result, so
    # the postings path may (and does) answer without scanning
    texts = ["the quick apple", "apple banana"]
    query = And([Term("the"), Term("apple")])
    fast, slow = (_stopword_engine(texts, fp) for fp in (True, False))
    got = fast.search(query)
    assert got == slow.search(query)
    assert not got
    assert fast.counters.get("engine.postings_answers") == 1
    assert fast.counters.get("engine.docs_scanned") == 0


# ----------------------------------------------------------------------
# Bitmap serialization: byte-identical to the seed bytearray kernels
# ----------------------------------------------------------------------

def _reference_to_bytes(ids):
    """The seed implementation's serialised form: little-endian bit order
    (bit ``i % 8`` of byte ``i // 8``), trailing zero bytes trimmed."""
    buf = bytearray()
    for i in ids:
        byte, bit = divmod(i, 8)
        if byte >= len(buf):
            buf.extend(b"\x00" * (byte - len(buf) + 1))
        buf[byte] |= 1 << bit
    while buf and buf[-1] == 0:
        del buf[-1]
    return bytes(buf)


@settings(max_examples=200, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=4096)))
def test_to_bytes_matches_seed_bytearray_form(ids):
    assert Bitmap(ids).to_bytes() == _reference_to_bytes(ids)


@settings(max_examples=100, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=4096)))
def test_from_bytes_round_trip(ids):
    bm = Bitmap(ids)
    assert Bitmap.from_bytes(bm.to_bytes()) == bm
    assert sorted(Bitmap.from_bytes(bm.to_bytes())) == sorted(ids)
