"""Property: the CAS index is observationally identical to scan-and-filter.

The Content-and-Structure index (DESIGN.md §3j) interleaves the path
dimension with the term dimension so that ``scope:<prefix> AND <terms>``
queries prune on *where* and *what* in one probe.  Its contract is the
same bit-identity every other accelerator in this repo signs up to: for
any corpus shape, any fuzzed query mixing scope predicates with the full
content grammar, and any interleaving of writes, removals, single-doc
renames, and whole-directory rebases, a CAS-backed engine's answers must
serialise byte-for-byte equal (``Bitmap.to_bytes``) to a CAS-less twin
that evaluates scopes by scanning the document registry — and both must
agree with the exhaustive naive scan whenever the naive scan is a sound
oracle (everything indexable).

``CAS_SEED`` shifts the fuzz seeds and ``CAS_K`` (>0) runs the same
equivalence against a sharded search cluster (CI matrix runs monolith
and K=3).  Structural invariants of the partition scheme (containment,
split behaviour, one-pass rebase) are checked directly on
:class:`CASIndex`, and a crash test arms a device fault inside the
seal/compact drain to prove ``hacfsck`` finds no ``cas-divergence``
after restore.
"""

import os
import random

import pytest

from repro.cba import planner
from repro.cba.cas import CASIndex, SPLIT_THRESHOLD
from repro.cba.engine import CBAEngine
from repro.cba.queryast import And, Not, ScopeTerm, Term
from repro.cba.queryparser import parse_query
from repro.cluster import ShardedSearchCluster
from repro.core.hacfs import HacFileSystem
from repro.errors import DeviceCrashed
from repro.shell.session import HacShell
from repro.util import pathutil
from repro.util.bitmap import Bitmap
from repro.vfs.blockdev import FaultPlan

from tests.properties.test_query_fuzz import (CONTENT_KINDS, WORDS,
                                              QueryFuzzer)

SEED = int(os.environ.get("CAS_SEED", "0"))
K = int(os.environ.get("CAS_K", "0"))

DIRS = ["/", "/projects", "/projects/mail", "/projects/mail/drafts",
        "/projects/fbi", "/projects/fbi/cases", "/archive",
        "/archive/2026", "/scratch"]
#: probe prefixes deliberately include dirs with no documents and a
#: prefix that is a *string* prefix but not a *path* prefix of others
PREFIXES = DIRS + ["/projects/ma", "/archive/2026/q3", "/nowhere"]


class ScopedFuzzer(QueryFuzzer):
    """The content grammar plus ``scope:`` leaves over a fixed dir pool."""

    def __init__(self, rng, prefixes=PREFIXES):
        super().__init__(rng, kinds=CONTENT_KINDS)
        self.prefixes = tuple(prefixes)

    def leaf(self):
        if self.rng.random() < 0.35:
            return ScopeTerm(self.rng.choice(self.prefixes))
        return super().leaf()


def random_docs(rng, n_docs):
    """(path, text) pairs spread over the shared directory pool."""
    docs = []
    for i in range(n_docs):
        d = rng.choice(DIRS)
        path = pathutil.join(d, f"doc{i}.txt")
        text = " ".join(rng.choice(WORDS) for _ in range(rng.randint(0, 12)))
        docs.append((path, text))
    return docs


def build_twins(docs, **kwargs):
    """One CAS-backed backend and one scan-and-filter backend over the
    same keys, paths, and ids — plus the store for later mutation."""
    store = {i: text for i, (_p, text) in enumerate(docs)}
    out = []
    for cas in (True, False):
        if K:
            backend = ShardedSearchCluster(
                lambda key: store.get(key, ""),
                [f"s{i}" for i in range(K)], latency=0.0, cas=cas, **kwargs)
        else:
            backend = CBAEngine(loader=lambda key: store.get(key, ""),
                                cas=cas, **kwargs)
        for i, (path, _text) in enumerate(docs):
            backend.index_document(i, path=path, mtime=0.0)
        out.append(backend)
    return out[0], out[1], store


# ----------------------------------------------------------------------
# the scope: grammar
# ----------------------------------------------------------------------

def test_scope_term_parses_and_roundtrips():
    ast = parse_query("scope:/projects/mail AND fingerprint")
    assert ast == And([ScopeTerm("/projects/mail"), Term("fingerprint")])
    assert parse_query(ast.to_text()) == ast
    # prefixes normalise at construction, exactly like the path map keys
    assert ScopeTerm("/projects//mail/").prefix == "/projects/mail"


def test_fuzz_scope_roundtrip():
    fuzz = ScopedFuzzer(random.Random(0xCA5 + SEED))
    for _ in range(300):
        ast = fuzz.node()
        text = ast.to_text()
        again = parse_query(text)
        assert again == ast, f"{text!r} reparsed to {again!r}"
        assert again.to_text() == text


# ----------------------------------------------------------------------
# CAS vs scan-and-filter bit-identity
# ----------------------------------------------------------------------

def test_fuzz_cas_bit_identical_to_scan_and_filter():
    """Indexable-only config: the naive scan referees both twins."""
    rng = random.Random(0x1D0 + SEED)
    fuzz = ScopedFuzzer(rng)
    probes = 0.0
    for _ in range(20):
        docs = random_docs(rng, rng.randint(0, 40))
        with_cas, without, _store = build_twins(
            docs, min_term_length=1, stopwords=set())
        for _ in range(4):
            ast = fuzz.node()
            want = without.search(ast).to_bytes()
            assert with_cas.search(ast).to_bytes() == want, ast
            if not K:  # clusters have no naive scan; the twin is oracle
                assert without.naive_search(ast).to_bytes() == want, ast
        probes += with_cas.counters.get("cas.probes")
    assert probes > 0, "the fuzz never exercised a CAS probe"


def test_fuzz_cas_equivalence_under_renames():
    """Single-doc renames and whole-directory rebases interleave with
    queries; the one-pass prefix rebase must never desynchronise the CAS
    answer from the registry scan."""
    rng = random.Random(0x2E5 + SEED)
    rebases = [("/projects/mail", "/archive/mail"),
               ("/archive/mail", "/projects/mail"),
               ("/projects/fbi/cases", "/scratch/cases"),
               ("/scratch/cases", "/projects/fbi/cases")]
    for round_no in range(12):
        docs = random_docs(rng, rng.randint(5, 40))
        with_cas, without, store = build_twins(
            docs, min_term_length=1, stopwords=set())
        live = list(range(len(docs)))
        fuzz = ScopedFuzzer(rng, prefixes=PREFIXES +
                            ["/archive/mail", "/scratch/cases"])
        for _ in range(6):
            r = rng.random()
            if r < 0.30:
                old, new = rng.choice(rebases)
                for backend in (with_cas, without):
                    backend.rebase_paths(old, new)
            elif r < 0.45 and live:
                key = rng.choice(live)
                new_path = pathutil.join(rng.choice(DIRS),
                                         f"moved{round_no}_{key}.txt")
                for backend in (with_cas, without):
                    backend.rename_document(key, new_path)
            elif r < 0.55 and live:
                key = rng.choice(live)
                live.remove(key)
                for backend in (with_cas, without):
                    backend.remove_document(key)
            elif r < 0.65:
                key = len(store)
                store[key] = " ".join(rng.choices(WORDS, k=6))
                live.append(key)
                path = pathutil.join(rng.choice(DIRS), f"new{key}.txt")
                for backend in (with_cas, without):
                    backend.index_document(key, path=path, mtime=1.0)
            ast = fuzz.node()
            assert with_cas.search(ast).to_bytes() == \
                without.search(ast).to_bytes(), (round_no, ast)
            for prefix in PREFIXES:
                assert with_cas.scope_docs(prefix).to_bytes() == \
                    without.scope_docs(prefix).to_bytes(), (round_no, prefix)


def test_zero_selectivity_conjunction_short_circuits():
    """A conjunction with a provably-empty leaf (zero-df term or
    zero-count scope) returns empty without nominating candidates or
    falling back to the scanner — and says so in its counters."""
    docs = [("/projects/mail/a.txt", "alpha beta"),
            ("/projects/mail/b.txt", "beta gamma")]
    with_cas, without, _store = build_twins(
        docs, min_term_length=1, stopwords=set())
    for backend in (with_cas, without):
        before = backend.counters.get("engine.planner_empty_shortcircuit") \
            + backend.counters.get("cluster.planner_empty_shortcircuit")
        for text in ("scope:/nowhere AND alpha",
                     "alpha AND zzznever",
                     "scope:/archive AND (alpha OR beta)"):
            scanned0 = backend.counters.get("engine.docs_scanned")
            assert backend.search(parse_query(text)).to_bytes() == b"", text
            assert backend.counters.get("engine.docs_scanned") == scanned0, \
                f"{text}: short-circuit still scanned documents"
        after = backend.counters.get("engine.planner_empty_shortcircuit") \
            + backend.counters.get("cluster.planner_empty_shortcircuit")
        assert after == before + 3
    # NOT over an empty branch proves nothing — must not short-circuit
    ast = Not(Term("zzznever"))
    assert with_cas.search(ast).to_bytes() == \
        without.search(ast).to_bytes()


# ----------------------------------------------------------------------
# partition structure: splits, containment, one-pass rebase
# ----------------------------------------------------------------------

def _assert_containment(cas):
    for doc_id in cas.doc_ids():
        root = cas.root_of(doc_id)
        assert pathutil.is_ancestor(root, cas.path_of(doc_id),
                                    strict=False), (doc_id, root)


def _brute_under(cas, prefix):
    want = Bitmap(d for d in cas.doc_ids()
                  if pathutil.is_ancestor(prefix, cas.path_of(d),
                                          strict=False))
    return want.to_bytes()


def test_partitions_split_and_preserve_containment():
    rng = random.Random(0x5117 + SEED)
    cas = CASIndex()
    paths = {}
    for doc_id in range(6 * SPLIT_THRESHOLD):
        comps = [f"d{rng.randint(0, 2)}" for _ in range(rng.randint(0, 4))]
        path = pathutil.join("/", *(comps + [f"f{doc_id}.txt"]))
        cas.upsert(doc_id, path, [rng.choice(WORDS) for _ in range(4)])
        paths[doc_id] = path
    # skew forces splits: the tree refined beyond the root partition
    assert len(cas.roots()) > 1
    _assert_containment(cas)
    for prefix in ["/", "/d0", "/d0/d1", "/d1/d1/d2", "/d9"]:
        assert cas.docs_under(prefix).to_bytes() == \
            _brute_under(cas, prefix), prefix
    # the interleaved probe agrees with filter-after-postings
    for term in WORDS:
        for prefix in ["/", "/d0", "/d2/d2"]:
            want = Bitmap(d for d in cas.docs_under(prefix)
                          if d in cas.probe("/", term))
            assert cas.probe(prefix, term).to_bytes() == want.to_bytes()


def test_flat_directory_never_degenerates():
    """A directory with no subdirectories cannot split; the deferral
    keeps it from re-attempting on every insert."""
    cas = CASIndex()
    for doc_id in range(4 * SPLIT_THRESHOLD):
        cas.upsert(doc_id, f"/flat/f{doc_id}.txt", ["alpha"])
    assert cas.roots() == ["/", "/flat"]
    assert len(cas.docs_under("/flat")) == 4 * SPLIT_THRESHOLD
    _assert_containment(cas)


def test_rebase_prefix_is_one_pass_and_exact():
    rng = random.Random(0xBA5E + SEED)
    cas = CASIndex()
    for doc_id in range(3 * SPLIT_THRESHOLD):
        d = rng.choice(["/a", "/a/deep", "/a/deep/er", "/b"])
        cas.upsert(doc_id, f"{d}/f{doc_id}.txt", ["alpha", "beta"])
    gen0 = cas.generation
    moved = cas.rebase_prefix("/a", "/b/a")  # onto an occupied sibling
    assert moved == sum(1 for d in cas.doc_ids()
                        if pathutil.is_ancestor("/b/a", cas.path_of(d)))
    assert cas.generation == gen0 + 1
    _assert_containment(cas)
    assert cas.docs_under("/a").to_bytes() == b""
    for prefix in ["/b", "/b/a", "/b/a/deep", "/"]:
        assert cas.docs_under(prefix).to_bytes() == \
            _brute_under(cas, prefix), prefix
        assert cas.probe(prefix, "alpha").to_bytes() == \
            _brute_under(cas, prefix), prefix


# ----------------------------------------------------------------------
# the segment plane's path-dimension view
# ----------------------------------------------------------------------

def test_segment_cas_runs_group_by_prefix():
    hac = HacFileSystem(segmented=True)
    hac.makedirs("/projects/mail")
    hac.makedirs("/archive")
    hac.write_file("/projects/mail/a.txt", b"fingerprint ridge\n")
    hac.write_file("/projects/mail/b.txt", b"banana recipe\n")
    hac.write_file("/archive/c.txt", b"budget lunch\n")
    hac.clock.tick()
    hac.ssync("/")
    hac.reindex()  # seals the memtable into frozen segments
    runs = {}
    for seg in hac.engine.segments.frozen:
        for prefix, rows in seg.cas_runs().items():
            runs.setdefault(prefix, []).extend(rows)
    assert set(runs) == {"/projects/mail", "/archive"}
    assert [r.path for r in runs["/projects/mail"]] == \
        ["/projects/mail/a.txt", "/projects/mail/b.txt"]
    for prefix, rows in runs.items():
        for row in rows:
            assert pathutil.dirname(row.path) == prefix
            # the run is exactly what the live CAS index holds
            assert hac.engine.cas.path_of(row.doc_id) == row.path


# ----------------------------------------------------------------------
# crash sweep: seal/compact intents leave no cas-divergence behind
# ----------------------------------------------------------------------

def _deep_world():
    hac = HacFileSystem(segmented=True)
    hac.makedirs("/projects/mail/drafts")
    hac.makedirs("/archive")
    for i in range(10):
        hac.write_file(f"/projects/mail/m{i}.txt",
                       b"fingerprint ridge %d\n" % i)
        hac.write_file(f"/projects/mail/drafts/d{i}.txt",
                       b"banana recipe %d\n" % i)
    hac.clock.tick()
    hac.ssync("/")
    return hac


@pytest.mark.skipif(K > 0, reason="segment-merge restore is the monolith "
                                  "engine's path; clusters restore via "
                                  "their persisted cbaindex")
@pytest.mark.parametrize("seed", [SEED, SEED + 1, SEED + 2])
def test_crash_in_seal_drain_leaves_no_cas_divergence(seed):
    """Crash the device mid-drain — inside the journaled seal/compact
    intents — restore, and require the rebuilt CAS index to agree with
    the registry doc-for-doc (no ``cas-divergence``/``cas-containment``
    findings) and with a scan twin bit-for-bit."""
    hac = _deep_world()
    hac.maintenance.set_mode("batched")
    hac.rename("/projects/mail/drafts", "/archive/drafts")
    for i in range(6):
        hac.write_file(f"/archive/n{i}.txt", b"minutiae bread\n")
    hac.clock.tick()
    dev = hac.fs.device
    dev.set_fault_plan(FaultPlan(crash_at=dev.record_write_index + seed % 4))
    with pytest.raises(DeviceCrashed):
        hac.maintenance.drain()
        hac.ssync("/")
        hac.reindex()
    revived = HacFileSystem.restore(hac.fs)
    findings = revived.fsck()
    assert [f for f in findings
            if f.kind in ("cas-divergence", "cas-containment")] == [], seed
    assert [f for f in findings if f.severity == "error"] == [], seed
    for query in ("scope:/archive AND fingerprint",
                  "scope:/archive/drafts AND banana",
                  "scope:/projects/mail AND NOT banana"):
        ast = parse_query(query)
        scan = revived.engine.naive_search(ast)
        assert revived.engine.search(ast).to_bytes() == scan.to_bytes(), \
            (seed, query)


def test_fsck_catches_and_repairs_missed_rebase():
    """Forcing the exact failure the check exists for — a prefix key the
    rename sweep missed — must surface as ``cas-divergence`` and heal
    under ``repair=True`` by rebuilding from the registry."""
    hac = _deep_world()
    shell = HacShell(hac)
    engine = hac.engine
    doc_id = next(iter(engine.cas.doc_ids()))
    engine.cas.set_path(doc_id, "/projects/stale/ghost.txt")
    kinds = [f.kind for f in hac.fsck()]
    assert "cas-divergence" in kinds
    hac.fsck(repair=True)
    assert [f for f in hac.fsck()
            if f.kind.startswith("cas-")] == []
    assert shell.glimpse("scope:/projects/mail AND fingerprint")
